"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs cannot build; this classic setup.py enables
``pip install -e . --no-use-pep517`` (legacy ``setup.py develop``).
"""

from setuptools import setup

setup()
