"""Continuous-time Q-learning for semi-Markov decision processes.

Implements the paper's Eqn. (2) value update (after Bradtke & Duff):

    Q(s_k, a_k) <- Q(s_k, a_k) + alpha * (
        (1 - e^{-beta tau_k}) / beta * r(s_k, a_k)
        + e^{-beta tau_k} * max_a' Q(s_{k+1}, a')
        - Q(s_k, a_k)
    )

where ``tau_k`` is the sojourn time in state ``s_k``, ``beta`` the
continuous-time discount rate, and ``r`` the (average) reward *rate* over
the sojourn. Decision epochs are event-driven, so no periodic updates are
needed — the property the paper leans on in both tiers.
"""

from __future__ import annotations

import math
from typing import Hashable

import numpy as np

from repro.rl.policies import epsilon_greedy_choice


def smdp_discounted_reward(reward_rate: float, tau: float, beta: float) -> float:
    """Sojourn-discounted reward ``(1 - e^{-beta tau}) / beta * r``.

    For ``beta -> 0`` this degenerates to ``r * tau`` (undiscounted
    accumulation); that limit is handled explicitly for numerical safety.
    """
    if tau < 0:
        raise ValueError(f"tau must be non-negative, got {tau}")
    if beta < 0:
        raise ValueError(f"beta must be non-negative, got {beta}")
    if beta == 0.0:
        return reward_rate * tau
    return (1.0 - math.exp(-beta * tau)) / beta * reward_rate


def smdp_target(
    reward_rate: float,
    tau: float,
    beta: float,
    next_max_q: float,
) -> float:
    """Full SMDP bootstrap target: discounted reward + discounted tail."""
    discount = math.exp(-beta * tau) if beta > 0.0 else 1.0
    return smdp_discounted_reward(reward_rate, tau, beta) + discount * next_max_q


class SMDPQLearner:
    """Tabular continuous-time Q-learning agent.

    States are arbitrary hashable keys; each state owns a Q-vector over a
    *per-state* action set (the local tier's idle states choose among
    timeout values while its busy states have a single no-op action).

    Parameters
    ----------
    beta:
        Continuous-time discount rate (paper: 0.5 for the global tier).
    alpha:
        Learning rate (<= 1).
    epsilon:
        Exploration probability for :meth:`select_action`.
    epsilon_decay, epsilon_floor:
        Optional multiplicative annealing of ε per action selection.
    initial_q:
        Optimistic/neutral initial Q value for unseen state-actions.
    """

    def __init__(
        self,
        beta: float = 0.5,
        alpha: float = 0.1,
        epsilon: float = 0.1,
        epsilon_decay: float = 1.0,
        epsilon_floor: float = 0.01,
        initial_q: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if beta < 0:
            raise ValueError(f"beta must be non-negative, got {beta}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        if not 0.0 < epsilon_decay <= 1.0:
            raise ValueError(f"epsilon_decay must be in (0, 1], got {epsilon_decay}")
        self.beta = float(beta)
        self.alpha = float(alpha)
        self.epsilon = float(epsilon)
        self.epsilon_decay = float(epsilon_decay)
        self.epsilon_floor = float(epsilon_floor)
        self.initial_q = float(initial_q)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._q: dict[Hashable, np.ndarray] = {}
        self._n_actions: dict[Hashable, int] = {}
        self.updates = 0

    def q_values(self, state: Hashable, n_actions: int) -> np.ndarray:
        """Q-vector for ``state``, creating it on first touch.

        Raises
        ------
        ValueError
            If the state was previously seen with a different action count.
        """
        if n_actions < 1:
            raise ValueError(f"n_actions must be positive, got {n_actions}")
        known = self._n_actions.get(state)
        if known is None:
            self._q[state] = np.full(n_actions, self.initial_q, dtype=np.float64)
            self._n_actions[state] = n_actions
        elif known != n_actions:
            raise ValueError(
                f"state {state!r} previously had {known} actions, now {n_actions}"
            )
        return self._q[state]

    def select_action(self, state: Hashable, n_actions: int) -> int:
        """ε-greedy action selection, annealing ε if configured."""
        q = self.q_values(state, n_actions)
        choice = epsilon_greedy_choice(q, self.epsilon, self.rng)
        if self.epsilon_decay < 1.0:
            self.epsilon = max(self.epsilon_floor, self.epsilon * self.epsilon_decay)
        return choice

    def greedy_action(self, state: Hashable, n_actions: int) -> int:
        """Exploitation-only action (used after training)."""
        q = self.q_values(state, n_actions)
        best = np.flatnonzero(q == q.max())
        return int(best[0])

    def max_q(self, state: Hashable, n_actions: int) -> float:
        return float(self.q_values(state, n_actions).max())

    def update(
        self,
        state: Hashable,
        action: int,
        reward_rate: float,
        tau: float,
        next_state: Hashable,
        n_actions: int,
        next_n_actions: int,
    ) -> float:
        """Apply the Eqn. (2) update; returns the new Q(s, a).

        ``reward_rate`` is the average reward *rate* over the sojourn
        ``tau``; the sojourn discounting is applied internally.
        """
        q = self.q_values(state, n_actions)
        if not 0 <= action < n_actions:
            raise ValueError(f"action {action} outside [0, {n_actions})")
        target = smdp_target(
            reward_rate, tau, self.beta, self.max_q(next_state, next_n_actions)
        )
        q[action] += self.alpha * (target - q[action])
        self.updates += 1
        return float(q[action])

    @property
    def n_states(self) -> int:
        return len(self._q)

    def table(self) -> dict[Hashable, np.ndarray]:
        """Copy of the full Q table (for inspection/tests)."""
        return {state: q.copy() for state, q in self._q.items()}
