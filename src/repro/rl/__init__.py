"""Reinforcement-learning substrate.

Model-free, continuous-time Q-learning for semi-Markov decision processes
(Bradtke & Duff), the value-update rule the paper uses in *both* tiers
(Eqn. 2), plus ε-greedy exploration schedules and the experience replay
memory the global tier's offline/online DRL phases store transitions in.
"""

from repro.rl.policies import (
    DecayingEpsilonGreedy,
    EpsilonGreedy,
    epsilon_greedy_choice,
)
from repro.rl.replay import ReplayMemory, Transition
from repro.rl.smdp import SMDPQLearner, smdp_discounted_reward, smdp_target

__all__ = [
    "DecayingEpsilonGreedy",
    "EpsilonGreedy",
    "epsilon_greedy_choice",
    "ReplayMemory",
    "Transition",
    "SMDPQLearner",
    "smdp_discounted_reward",
    "smdp_target",
]
