"""Experience replay memory.

The paper stores state-transition profiles ``(s_k, a_k, r_k, s_{k+1})`` in
an experience memory ``D`` with capacity ``N_D`` and samples minibatches
from it to train the DNN, "to smooth out learning and avoid oscillations
or divergence in the parameters". Transitions here additionally carry the
sojourn time ``tau`` needed by the continuous-time (SMDP) target.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

import numpy as np


@dataclass(frozen=True)
class Transition:
    """One SMDP transition.

    ``reward`` is the *already sojourn-discounted* reward accumulated over
    ``[t_k, t_{k+1})`` — i.e. the ``(1 - e^{-beta tau}) / beta * r`` term
    of Eqn. (2) — and ``tau`` the sojourn time used to discount the
    bootstrapped tail.
    """

    state: Any
    action: int
    reward: float
    next_state: Any
    tau: float

    def __post_init__(self) -> None:
        if self.tau < 0:
            raise ValueError(f"tau must be non-negative, got {self.tau}")


class ReplayMemory:
    """Bounded FIFO transition store with uniform minibatch sampling."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._buffer: deque[Transition] = deque(maxlen=self.capacity)

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def full(self) -> bool:
        return len(self._buffer) == self.capacity

    def push(self, transition: Transition) -> None:
        """Append a transition, evicting the oldest when at capacity."""
        self._buffer.append(transition)

    def sample(self, batch_size: int, rng: np.random.Generator) -> list[Transition]:
        """Uniform sample without replacement (with, if batch > size).

        Raises
        ------
        ValueError
            If the memory is empty.
        """
        if not self._buffer:
            raise ValueError("cannot sample from an empty replay memory")
        n = len(self._buffer)
        replace = batch_size > n
        idx = rng.choice(n, size=batch_size, replace=replace)
        return [self._buffer[i] for i in idx]

    def clear(self) -> None:
        self._buffer.clear()

    def __iter__(self):
        return iter(self._buffer)
