"""Experience replay memory.

The paper stores state-transition profiles ``(s_k, a_k, r_k, s_{k+1})`` in
an experience memory ``D`` with capacity ``N_D`` and samples minibatches
from it to train the DNN, "to smooth out learning and avoid oscillations
or divergence in the parameters". Transitions here additionally carry the
sojourn time ``tau`` needed by the continuous-time (SMDP) target.

Storage is a set of preallocated ring-buffer arrays rather than a deque
of dataclasses: ``push`` writes one row per field, and
:meth:`ReplayMemory.sample_arrays` gathers a minibatch with a single
fancy index per field — no per-sample Python objects are touched on the
training hot path. :class:`Transition` remains the one-record interface
(``push`` accepts it, ``sample``/iteration return it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np


@dataclass(frozen=True)
class Transition:
    """One SMDP transition.

    ``reward`` is the *already sojourn-discounted* reward accumulated over
    ``[t_k, t_{k+1})`` — i.e. the ``(1 - e^{-beta tau}) / beta * r`` term
    of Eqn. (2) — and ``tau`` the sojourn time used to discount the
    bootstrapped tail.
    """

    state: Any
    action: int
    reward: float
    next_state: Any
    tau: float

    def __post_init__(self) -> None:
        if self.tau < 0:
            raise ValueError(f"tau must be non-negative, got {self.tau}")


class ReplayMemory:
    """Bounded FIFO transition store with uniform minibatch sampling.

    Backed by ring-buffer arrays allocated lazily at the first ``push``
    (the state width is not known earlier). States of any hashable or
    array-like kind are accepted; non-numeric states fall back to an
    object-dtype column so the public behaviour is unchanged.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._size = 0
        self._head = 0  # next physical write slot
        self._states: np.ndarray | None = None
        self._next_states: np.ndarray | None = None
        self._actions: np.ndarray | None = None
        self._rewards: np.ndarray | None = None
        self._taus: np.ndarray | None = None

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size == self.capacity

    def _allocate(self, state: Any) -> None:
        arr = np.asarray(state)
        if arr.dtype.kind in "fiub" and arr.ndim == 1:
            self._states = np.empty((self.capacity, arr.shape[0]), dtype=np.float64)
            self._next_states = np.empty_like(self._states)
        else:
            # Arbitrary state payloads (tabular keys in tests, etc.).
            self._states = np.empty(self.capacity, dtype=object)
            self._next_states = np.empty(self.capacity, dtype=object)
        self._actions = np.empty(self.capacity, dtype=np.int64)
        self._rewards = np.empty(self.capacity, dtype=np.float64)
        self._taus = np.empty(self.capacity, dtype=np.float64)

    def push(self, transition: Transition) -> None:
        """Append a transition, evicting the oldest when at capacity."""
        if self._states is None:
            self._allocate(transition.state)
        i = self._head
        self._states[i] = transition.state
        self._next_states[i] = transition.next_state
        self._actions[i] = transition.action
        self._rewards[i] = transition.reward
        self._taus[i] = transition.tau
        self._head = (i + 1) % self.capacity
        if self._size < self.capacity:
            self._size += 1

    def _physical(self, logical: np.ndarray | int) -> np.ndarray | int:
        """Map logical index (0 = oldest) to a ring-buffer slot."""
        start = (self._head - self._size) % self.capacity
        return (start + logical) % self.capacity

    def _draw(self, batch_size: int, rng: np.random.Generator) -> np.ndarray:
        if self._size == 0:
            raise ValueError("cannot sample from an empty replay memory")
        replace = batch_size > self._size
        logical = rng.choice(self._size, size=batch_size, replace=replace)
        return self._physical(logical)

    def sample_arrays(
        self, batch_size: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Uniform minibatch as ``(states, actions, rewards, next_states,
        taus)`` arrays, gathered straight from the ring buffers without
        constructing per-sample objects.

        Sampling is without replacement when the batch fits (with,
        otherwise), drawing the same indices as :meth:`sample` would for
        the same ``rng`` state.

        Raises
        ------
        ValueError
            If the memory is empty.
        """
        idx = self._draw(batch_size, rng)
        return (
            self._states[idx],
            self._actions[idx],
            self._rewards[idx],
            self._next_states[idx],
            self._taus[idx],
        )

    def sample(self, batch_size: int, rng: np.random.Generator) -> list[Transition]:
        """Uniform sample without replacement (with, if batch > size).

        Raises
        ------
        ValueError
            If the memory is empty.
        """
        idx = np.atleast_1d(self._draw(batch_size, rng))
        return [self._transition_at(i) for i in idx]

    def _transition_at(self, phys: int) -> Transition:
        # Copy vector states: a returned Transition must stay stable even
        # after later pushes overwrite this ring slot (the deque storage
        # this replaced never mutated returned transitions).
        state = self._states[phys]
        next_state = self._next_states[phys]
        if self._states.dtype != object:
            state = state.copy()
            next_state = next_state.copy()
        return Transition(
            state=state,
            action=int(self._actions[phys]),
            reward=float(self._rewards[phys]),
            next_state=next_state,
            tau=float(self._taus[phys]),
        )

    def clear(self) -> None:
        self._size = 0
        self._head = 0
        # Drop the allocation too: a cleared memory accepts states of a
        # different width/kind, exactly like a fresh one.
        self._states = None
        self._next_states = None
        self._actions = None
        self._rewards = None
        self._taus = None

    def __iter__(self) -> Iterator[Transition]:
        for logical in range(self._size):
            yield self._transition_at(int(self._physical(logical)))
