"""Exploration policies.

Both tiers of the paper select actions ε-greedily: with probability ε a
uniformly random action, otherwise the argmax of the current Q estimates.
A decaying schedule anneals exploration as learning progresses.
"""

from __future__ import annotations

import numpy as np


def epsilon_greedy_choice(
    q_values: np.ndarray,
    epsilon: float,
    rng: np.random.Generator,
) -> int:
    """Pick an action index ε-greedily from a vector of Q estimates.

    Ties at the maximum are broken uniformly at random so that identical
    initial Q-values do not bias toward low indices.

    Raises
    ------
    ValueError
        If ``q_values`` is empty or ``epsilon`` outside [0, 1].
    """
    q_values = np.asarray(q_values, dtype=np.float64)
    if q_values.ndim != 1 or q_values.size == 0:
        raise ValueError(
            f"q_values must be a non-empty vector, got shape {q_values.shape}"
        )
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
    if rng.uniform() < epsilon:
        return int(rng.integers(q_values.size))
    best = np.flatnonzero(q_values == q_values.max())
    return int(rng.choice(best))


class EpsilonGreedy:
    """Constant-ε policy."""

    def __init__(self, epsilon: float, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.epsilon = float(epsilon)
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def select(self, q_values: np.ndarray) -> int:
        return epsilon_greedy_choice(q_values, self.epsilon, self.rng)


class DecayingEpsilonGreedy:
    """ε-greedy with multiplicative decay toward a floor.

    ``epsilon`` starts at ``start`` and is multiplied by ``decay`` after
    every :meth:`select`, never dropping below ``floor``.
    """

    def __init__(
        self,
        start: float = 1.0,
        floor: float = 0.05,
        decay: float = 0.999,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= floor <= start <= 1.0:
            raise ValueError(f"need 0 <= floor <= start <= 1, got {floor}, {start}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.epsilon = float(start)
        self.floor = float(floor)
        self.decay = float(decay)
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def select(self, q_values: np.ndarray) -> int:
        choice = epsilon_greedy_choice(q_values, self.epsilon, self.rng)
        self.epsilon = max(self.floor, self.epsilon * self.decay)
        return choice
