"""Federated scenario cells: build, train, warm-start, and run fleets.

The counterpart of :func:`repro.harness.runner.make_scenario_system` /
:func:`repro.scenarios.orchestrator.run_cell` for scenarios carrying a
``sites`` tuple. One federated cell:

1. derives its seeds exactly like a single-cluster cell
   (:func:`~repro.harness.runner.derive_cell_seeds`), then — only when
   there are several sites — spawns one independent system seed per site
   plus one for the federation tier, so a federation of one remains the
   *identical* experiment (bit-identical metrics) to the single-cluster
   path;
2. builds per-site home streams and training segments from the spec
   (:meth:`~repro.scenarios.specs.ScenarioSpec.build_site_traces` —
   correlated across sites);
3. builds one named cluster-tier system per site (each trained on its
   own segments, or warm-started from a
   :class:`~repro.scenarios.checkpoints.FederationPolicyCheckpoint`);
4. builds the federation-tier dispatcher named by ``spec.federation``
   (training the DRL dispatcher over the training streams when cold);
5. simulates all sites on one event clock and flattens the result into
   the sweep-cell dict shape, with per-site breakdowns under
   ``"sites"``.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.federation import DRLFederationBroker, make_federation_broker
from repro.core.hierarchical import HierarchicalSystem
from repro.harness.runner import (
    derive_cell_seeds,
    make_system,
    needs_global_tier,
)
from repro.scenarios.specs import ScenarioSpec
from repro.sim.churn import schedule_capacity_events
from repro.sim.cluster import Cluster
from repro.sim.events import EventQueue
from repro.sim.federation import FederationEngine, FederationResult, Site
from repro.sim.interfaces import FederationBroker
from repro.sim.job import Job
from repro.sim.metrics import MetricsCollector, SeriesPoint

if TYPE_CHECKING:  # pragma: no cover - type-only, avoids an import cycle
    from repro.scenarios.checkpoints import FederationPolicyCheckpoint

logger = logging.getLogger(__name__)


def derive_site_seeds(system_seed: int, n_sites: int) -> tuple[list[int], int]:
    """Per-site system seeds plus the federation-tier seed.

    A federation of one reuses ``system_seed`` itself for its only site
    — that is what makes a single-site federated cell the bit-identical
    twin of the single-cluster cell; multi-site federations spawn one
    independent child stream per site (adding a site never perturbs the
    others' controllers).
    """
    ss = np.random.SeedSequence(system_seed)
    if n_sites == 1:
        (fed_child,) = ss.spawn(1)
        return [system_seed], int(fed_child.generate_state(1)[0])
    *site_children, fed_child = ss.spawn(n_sites + 1)
    return (
        [int(child.generate_state(1)[0]) for child in site_children],
        int(fed_child.generate_state(1)[0]),
    )


def build_federation_engine(
    spec: ScenarioSpec,
    systems: Sequence[HierarchicalSystem],
    broker: FederationBroker | None,
    record_every: int = 200,
    keep_jobs: bool = False,
    with_tariffs: bool = True,
    faults=None,
) -> FederationEngine:
    """Fresh per-site clusters on one shared clock, wired to ``systems``.

    The federated analogue of
    :meth:`~repro.core.hierarchical.HierarchicalSystem.build_engine`:
    every call builds new clusters (simulations are single-use) around
    the systems' live controllers, so training passes and the evaluation
    run reuse the same learned state. ``with_tariffs=False`` builds the
    tariff-blind engines training uses. ``faults`` is an optional
    per-site plan list (:func:`repro.faults.plan.scenario_fault_plans`)
    installing the fault runtime; training engines never carry one.
    """
    events = EventQueue()
    sites = []
    for site_spec, system in zip(spec.sites, systems):
        config = system.config
        cluster = Cluster(
            num_servers=config.num_servers,
            power_model=config.fleet_power_models,
            events=events,
            policies=system.policies,
            num_resources=config.num_resources,
            overload_threshold=config.overload_threshold,
            initially_on=system.initially_on,
        )
        tariff = site_spec.tariff if with_tariffs else None
        sites.append(
            Site(
                name=site_spec.name,
                cluster=cluster,
                broker=system.broker,
                metrics=MetricsCollector(
                    record_every=record_every, keep_jobs=keep_jobs, tariff=tariff
                ),
                tariff=tariff,
            )
        )
    engine = FederationEngine(sites, broker)
    if faults is not None:
        from repro.faults.inject import install_faults

        install_faults(engine, faults)
    return engine


def train_federation_broker(
    spec: ScenarioSpec,
    systems: Sequence[HierarchicalSystem],
    broker: FederationBroker | None,
    train_streams: Sequence[Sequence[list[Job]]],
    online_epochs: int = 1,
) -> None:
    """Online-train a learning federation dispatcher over the fleet.

    Runs the whole federation (the given per-site systems, tariff-blind)
    over every training segment ``online_epochs`` times; the DRL
    dispatcher accumulates fleet-level SMDP transitions and trains its
    Sub-Q network along the way, exactly like the cluster tier's online
    phase. Non-learning dispatchers make this a no-op.
    """
    if not isinstance(broker, DRLFederationBroker):
        return
    for _ in range(online_epochs):
        for segment_streams in train_streams:
            engine = build_federation_engine(
                spec, systems, broker, with_tariffs=False
            )
            engine.run([[job.copy() for job in s] for s in segment_streams])


def build_federated_cell(
    system: str,
    spec: ScenarioSpec,
    n_jobs: int,
    seed: int = 0,
    pretrain: bool = True,
    online_epochs: int = 1,
    local_epochs: int = 1,
    checkpoint: "FederationPolicyCheckpoint | None" = None,
) -> tuple[list[HierarchicalSystem], FederationBroker | None, list[list[Job]]]:
    """Build (and train or warm-start) everything one federated cell needs.

    Returns ``(site_systems, federation_broker, eval_streams)`` ready
    for :func:`build_federation_engine` + run. With a ``checkpoint``,
    per-site DRL prototypes/predictors and the DRL federation dispatcher
    are restored from the stored weights instead of trained in-cell.
    """
    from repro.scenarios.checkpoints import restore_predictor, restore_prototype

    trace_ss, system_seed = derive_cell_seeds(seed)
    eval_streams, train_streams = spec.build_site_traces(n_jobs, trace_ss)
    n_sites = len(spec.sites)
    site_seeds, fed_seed = derive_site_seeds(system_seed, n_sites)

    systems: list[HierarchicalSystem] = []
    for i in range(n_sites):
        config = spec.site_experiment_config(i, seed=seed)
        site_train = [segment[i] for segment in train_streams]
        make_kwargs: dict = {}
        if checkpoint is not None and needs_global_tier(system):
            site_ckpt = checkpoint.site_checkpoints[i]
            make_kwargs["global_prototype"] = restore_prototype(
                site_ckpt, config, site_seeds[i]
            )
            if system == "hierarchical":
                make_kwargs["predictor"] = restore_predictor(
                    site_ckpt, config, site_seeds[i]
                )
        systems.append(
            make_system(
                system,
                config,
                site_train,
                seed=site_seeds[i],
                pretrain=pretrain,
                online_epochs=online_epochs,
                local_epochs=local_epochs,
                **make_kwargs,
            )
        )

    broker = make_federation_broker(
        spec.federation, n_sites, rng=np.random.default_rng(fed_seed)
    )
    if isinstance(broker, DRLFederationBroker):
        if checkpoint is not None and checkpoint.fed_qnet_state is not None:
            fed_arch = checkpoint.meta.get("fed_arch")
            if fed_arch is not None and fed_arch != broker.qnet.describe():
                raise ValueError(
                    "federation checkpoint geometry does not match the "
                    f"scenario: blob carries {fed_arch}, scenario needs "
                    f"{broker.qnet.describe()}"
                )
            broker.qnet.load_state_dict(checkpoint.fed_qnet_state)
            broker.epsilon = checkpoint.fed_epsilon
        else:
            train_federation_broker(
                spec, systems, broker, train_streams, online_epochs=online_epochs
            )
    return systems, broker, eval_streams


def _series_payload(series: Sequence[SeriesPoint]) -> dict[str, list]:
    return {
        "latency_series": [[int(p.n_completed), float(p.acc_latency)] for p in series],
        "energy_series": [[int(p.n_completed), float(p.energy_kwh)] for p in series],
        "cost_series": [[int(p.n_completed), float(p.cost_usd)] for p in series],
        "co2_series": [[int(p.n_completed), float(p.co2_kg)] for p in series],
    }


def _site_payload(
    result: FederationResult,
    eval_streams: Sequence[list[Job]],
    runtime=None,
) -> list[dict]:
    payload = []
    for index, (site, stream) in enumerate(zip(result.sites, eval_streams)):
        metrics = site.metrics
        payload.append(
            {
                "site": site.name,
                "num_servers": site.num_servers,
                "n_jobs_home": len(stream),
                "n_jobs_completed": metrics.n_completed,
                "energy_kwh": metrics.total_energy_kwh(),
                "acc_latency_s": metrics.acc_latency,
                "mean_latency_s": metrics.mean_latency,
                "average_power_w": metrics.average_power_watts(),
                "cost_usd": metrics.total_cost_usd(),
                "co2_kg": metrics.total_co2_kg(),
                "failed_jobs": metrics.n_failed,
                "retries": metrics.n_retries,
                "goodput": metrics.goodput,
                "availability": (
                    runtime.site_availability(index, result.final_time)
                    if runtime is not None
                    else 1.0
                ),
                **_series_payload(metrics.series),
            }
        )
    return payload


def run_federated_cell(
    spec: ScenarioSpec,
    system: str,
    n_jobs: int = 600,
    seed: int = 0,
    record_every: int = 200,
    pretrain: bool = True,
    online_epochs: int = 1,
    local_epochs: int = 1,
    checkpoint: "FederationPolicyCheckpoint | None" = None,
) -> dict:
    """Run one federated (scenario, system, seed) cell.

    The federated counterpart of
    :func:`repro.scenarios.orchestrator.run_cell` (which dispatches
    here): same protocol knobs, same deterministic seed derivation, and
    a result dict carrying the same fleet-level keys — aggregations and
    sweep tables work unchanged — plus ``"federation"`` (the dispatch
    policy) and ``"sites"`` (per-site totals and series, the schema-v4
    breakdown).
    """
    systems, broker, eval_streams = build_federated_cell(
        system,
        spec,
        n_jobs,
        seed=seed,
        pretrain=pretrain,
        online_epochs=online_epochs,
        local_epochs=local_epochs,
        checkpoint=checkpoint,
    )
    from repro.faults.plan import scenario_fault_plans

    plans = scenario_fault_plans(spec, n_jobs, seed)
    engine = build_federation_engine(
        spec, systems, broker, record_every=record_every, faults=plans
    )
    events = spec.capacity_events(spec.horizon_for(n_jobs))
    if events:
        # Only single-site federations can carry churn today (validated
        # by the spec), and it targets the lone site's cluster.
        schedule_capacity_events(engine.sites[0].cluster, events)
    logger.debug(
        "federated cell %s x %s seed %d: %d sites, %s dispatch",
        spec.name,
        system,
        seed,
        len(engine.sites),
        spec.federation,
    )
    result = engine.run([[job.copy() for job in stream] for stream in eval_streams])
    runtime = engine.faults
    n_completed = result.n_completed
    energy_kwh = result.total_energy_kwh
    n_failed = sum(site.metrics.n_failed for site in result.sites)
    n_retries = sum(site.metrics.n_retries for site in result.sites)
    return {
        "scenario": spec.name,
        "system": system,
        "seed": seed,
        "n_jobs_offered": sum(len(stream) for stream in eval_streams),
        "n_jobs_completed": n_completed,
        "num_servers": spec.num_servers_total,
        "energy_kwh": energy_kwh,
        "acc_latency_s": result.accumulated_latency,
        "mean_latency_s": result.mean_latency,
        "average_power_w": result.average_power_watts,
        "energy_per_job_wh": (
            energy_kwh * 1000.0 / n_completed if n_completed else 0.0
        ),
        "final_time_s": result.final_time,
        "capacity_events": len(events),
        "cost_usd": result.total_cost_usd,
        "co2_kg": result.total_co2_kg,
        "failed_jobs": n_failed,
        "retries": n_retries,
        "goodput": (
            n_completed / (n_completed + n_failed)
            if (n_completed + n_failed)
            else 1.0
        ),
        "availability": (
            runtime.fleet_availability(result.final_time)
            if runtime is not None
            else 1.0
        ),
        "broker_fallbacks": (runtime.broker_fallbacks if runtime is not None else 0),
        **_series_payload(result.fleet_series),
        "federation": spec.federation,
        "sites": _site_payload(result, eval_streams, runtime=runtime),
    }
