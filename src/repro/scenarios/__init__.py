"""Scenario suite and parallel experiment orchestration.

The paper evaluates one workload on one homogeneous cluster; this
package turns the reproduction into a *scenario machine*:

* :mod:`repro.scenarios.specs` — declarative, JSON-serializable
  descriptions of a full experiment: workload recipe
  (:class:`WorkloadSpec`), fleet composition (:class:`FleetSpec`), and
  scheduled capacity churn (:class:`CapacityWindowSpec`), bundled into a
  :class:`ScenarioSpec`.
* :mod:`repro.scenarios.registry` — named scenario lookup; import-safe
  registration of user scenarios alongside the builtins.
* :mod:`repro.scenarios.builtin` — the twelve stock scenarios, from
  ``paper-default`` to Google-trace replay (``google-replay``),
  electricity-aware runs (``carbon-aware-diurnal``, ``tou-price-shift``),
  a coincident-peak tenant fleet (``correlated-fleet``), and two
  multi-site federations (``federated-correlated``, ``follow-the-sun``).
* :mod:`repro.scenarios.store` — content-keyed JSON result cache under
  ``.repro-cache/`` so repeated sweeps return instantly.
* :mod:`repro.scenarios.orchestrator` — fans a (scenario × system ×
  seed) grid out over ``multiprocessing`` and aggregates the results
  into :mod:`repro.harness.report` tables/CSVs.
* :mod:`repro.scenarios.sharding` — splits one cell's evaluation trace
  into warm-handoff segments fanned over the same pool, so a single
  large cell parallelizes too.
* :mod:`repro.scenarios.checkpoints` — content-keyed policy weight
  blobs (train-once / evaluate-many): DRL cells sharing a training key
  warm-start from one stored ``HierarchicalQNetwork`` + LSTM snapshot;
  federated keys map to per-site snapshots plus the DRL federation
  dispatcher's weights.
* :mod:`repro.scenarios.federation` — federated cells: per-site
  systems, the federation-tier dispatcher, and fleet simulations on one
  event clock (``ScenarioSpec.sites``).
"""

from repro.scenarios.checkpoints import (
    CheckpointStore,
    FederationPolicyCheckpoint,
    PolicyCheckpoint,
    ensure_checkpoint,
    needs_policy,
    train_policy,
    training_request,
    warm_scenario_system,
)
from repro.scenarios.federation import run_federated_cell
from repro.scenarios.orchestrator import (
    SweepCell,
    SweepReport,
    aggregate_rows,
    aggregate_series_rows,
    detected_cpus,
    render_sweep_csv,
    render_sweep_series_csv,
    render_sweep_table,
    run_cell,
    sweep,
)
from repro.scenarios.registry import get, names, register, scenario_catalog
from repro.scenarios.sharding import (
    SHARD_TOLERANCE,
    combine_shard_metrics,
    run_cell_sharded,
    shard_trace,
)
from repro.scenarios.specs import (
    FEDERATION_POLICIES,
    CapacityWindowSpec,
    FlashCrowdSpec,
    FleetSpec,
    JobClassSpec,
    ScenarioSpec,
    ServerClassSpec,
    SiteSpec,
    TraceReplaySpec,
    WorkloadSpec,
)
from repro.scenarios.store import ResultStore

__all__ = [
    "SweepCell",
    "SweepReport",
    "aggregate_rows",
    "aggregate_series_rows",
    "detected_cpus",
    "render_sweep_csv",
    "render_sweep_series_csv",
    "render_sweep_table",
    "run_cell",
    "run_cell_sharded",
    "shard_trace",
    "combine_shard_metrics",
    "SHARD_TOLERANCE",
    "sweep",
    "get",
    "names",
    "register",
    "scenario_catalog",
    "CapacityWindowSpec",
    "CheckpointStore",
    "FEDERATION_POLICIES",
    "FederationPolicyCheckpoint",
    "FleetSpec",
    "FlashCrowdSpec",
    "JobClassSpec",
    "PolicyCheckpoint",
    "ScenarioSpec",
    "ServerClassSpec",
    "SiteSpec",
    "TraceReplaySpec",
    "WorkloadSpec",
    "ResultStore",
    "ensure_checkpoint",
    "needs_policy",
    "run_federated_cell",
    "train_policy",
    "training_request",
    "warm_scenario_system",
]
