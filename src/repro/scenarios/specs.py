"""Declarative experiment scenarios: workload × fleet × churn.

A :class:`ScenarioSpec` is a complete, parameter-only description of one
experiment family — everything needed to build traces, an
:class:`~repro.core.config.ExperimentConfig`, and a churn schedule from
just ``(n_jobs, seed)``. Specs are frozen dataclasses of plain numbers
and strings, so they pickle across ``multiprocessing`` workers and
serialize to canonical JSON for content-keyed result caching
(:meth:`ScenarioSpec.content_key`).

Sizing follows the harness convention: the base synthetic intensity
(100 k jobs/week) targets the paper's 30-machine cluster, larger fleets
reuse it (Table I evaluates M = 30 and 40 on the same segments), and
smaller test fleets are fed proportionally lighter load.
"""

from __future__ import annotations

import glob as globlib
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.core.config import ExperimentConfig, GlobalTierConfig
from repro.faults.spec import FaultSpec, SiteOutageSpec
from repro.scenarios.store import content_key
from repro.sim.churn import CapacityEvent
from repro.sim.job import Job
from repro.sim.power import PowerModel, TariffModel
from repro.workload.mixtures import (
    correlated_traces,
    generate_correlated_mixture,
    generate_mixture,
)
from repro.workload.segments import rebase
from repro.workload.synthetic import SyntheticTraceConfig, reference_rate
from repro.workload.trace import (
    read_google_machine_events,
    read_google_task_events,
    read_trace_csv,
)

#: Federation-tier dispatch policies a scenario may name. Kept as the
#: scenario-layer vocabulary so importing specs stays light; the
#: implementations (and the matching tuple) live in
#: :mod:`repro.core.federation`.
FEDERATION_POLICIES = (
    "home",
    "least-loaded",
    "price-greedy",
    "carbon-greedy",
    "drl",
)


def groups_for(num_servers: int) -> int:
    """K between 2 and 4 dividing M (paper: K in [2, 4])."""
    for k in (4, 3, 2):
        if num_servers % k == 0:
            return k
    return 1


@dataclass(frozen=True)
class JobClassSpec:
    """One tenant / job class inside a workload mix."""

    name: str
    weight: float
    trace: SyntheticTraceConfig = field(default_factory=SyntheticTraceConfig)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job class name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class FlashCrowdSpec:
    """A flash-crowd window, positioned as fractions of the trace span."""

    start_fraction: float
    duration_fraction: float
    rate_multiplier: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_fraction < 1.0:
            raise ValueError(
                f"start_fraction must be in [0, 1), got {self.start_fraction}"
            )
        if not 0.0 < self.duration_fraction <= 1.0:
            raise ValueError(
                f"duration_fraction must be in (0, 1], got {self.duration_fraction}"
            )
        if self.rate_multiplier <= 1.0:
            raise ValueError(
                f"rate_multiplier must exceed 1, got {self.rate_multiplier}"
            )


def _resolve_trace_paths(paths: tuple[str, ...]) -> list[Path]:
    """Expand files/globs (matches sorted lexically, so shards stay ordered).

    Raises
    ------
    ValueError
        If a glob pattern matches nothing.
    FileNotFoundError
        If a literal path does not exist.
    """
    resolved: list[Path] = []
    for pattern in paths:
        matches = sorted(globlib.glob(pattern))
        if matches:
            resolved.extend(Path(m) for m in matches)
        elif globlib.has_magic(pattern):
            raise ValueError(f"trace glob {pattern!r} matched no files")
        elif Path(pattern).exists():
            resolved.append(Path(pattern))
        else:
            raise FileNotFoundError(f"trace file {pattern!r} does not exist")
    return resolved


def _trace_fingerprints(
    paths: tuple[str, ...],
) -> tuple[tuple[str, int | None, int | None], ...]:
    """``(path, size, mtime_ns)`` per resolved file — the data's identity.

    Folded into replay content keys (and the parse cache key) so editing
    or replacing a trace file invalidates exactly the results computed
    from the old contents, keeping the store's never-serve-stale
    invariant. Unresolvable patterns fingerprint as ``(pattern, None,
    None)`` — key construction must stay usable for specs whose files
    only exist on the machine that runs them.
    """
    fingerprints: list[tuple[str, int | None, int | None]] = []
    try:
        resolved = _resolve_trace_paths(paths)
    except (OSError, ValueError):
        return tuple((pattern, None, None) for pattern in paths)
    for path in resolved:
        try:
            stat = path.stat()
            fingerprints.append((str(path), stat.st_size, stat.st_mtime_ns))
        except OSError:  # pragma: no cover - raced deletion
            fingerprints.append((str(path), None, None))
    return tuple(fingerprints)


#: Parse cache: (paths, format, window) -> (file fingerprints, records).
#: Keyed *without* the fingerprint so an edited file replaces its stale
#: parse in place instead of pinning it; bounded so a long-lived process
#: replaying many distinct file sets cannot hoard dead multi-hundred-MB
#: parses.
_REPLAY_CACHE: dict[tuple, tuple[tuple, tuple]] = {}
_REPLAY_CACHE_MAX = 8


def _load_replay_records(
    paths: tuple[str, ...],
    fmt: str,
    min_duration: float,
    max_duration: float,
    fingerprints: tuple = (),
) -> tuple[tuple[float, float, tuple[float, ...]], ...]:
    """Parsed ``(arrival, duration, resources)`` rows, arrival-sorted,
    cached per (file set, window).

    Every worker process pays the parse once; the cache holds raw rows,
    not :class:`Job` objects, so callers always get fresh jobs with no
    shared runtime state. A hit is only served while ``fingerprints``
    (size/mtime per file) still matches — a file edited while the
    process lives is re-parsed, and its stale parse is dropped rather
    than retained.
    """
    cache_key = (paths, fmt, min_duration, max_duration)
    hit = _REPLAY_CACHE.get(cache_key)
    if hit is not None and hit[0] == fingerprints:
        return hit[1]
    resolved = _resolve_trace_paths(paths)
    if fmt == "google":
        jobs = read_google_task_events(
            resolved, min_duration=min_duration, max_duration=max_duration
        )
    else:
        jobs = [
            job
            for path in resolved
            for job in read_trace_csv(path)
            if min_duration <= job.duration <= max_duration
        ]
        jobs.sort(key=lambda job: job.arrival_time)
    records = tuple(
        (job.arrival_time, job.duration, job.resources) for job in jobs
    )
    if cache_key not in _REPLAY_CACHE:  # refreshes replace in place
        while len(_REPLAY_CACHE) >= _REPLAY_CACHE_MAX:
            _REPLAY_CACHE.pop(next(iter(_REPLAY_CACHE)))  # oldest insertion
    _REPLAY_CACHE[cache_key] = (fingerprints, records)
    return records


@dataclass(frozen=True)
class TraceReplaySpec:
    """Replay recorded trace files instead of generating synthetic load.

    Parameters
    ----------
    paths:
        Trace files or glob patterns (matches sorted lexically, so
        ``part-*.csv`` shards replay in order).
    format:
        ``"google"`` — headerless Google cluster-usage *task events*
        tables (SUBMIT/FINISH pairs, see
        :func:`~repro.workload.trace.read_google_task_events`) — or
        ``"canonical"`` — this library's
        ``job_id,arrival_time,duration,cpu,mem,disk`` CSV.
    min_duration, max_duration:
        Keep jobs whose duration falls in this window (the paper keeps
        1 min – 2 h).
    time_compression:
        Divide arrival times by this factor (> 1 packs a long recorded
        span into a shorter, proportionally hotter experiment; durations
        keep their physical length).
    split:
        Train/eval split policy. ``"head"``: training segments take the
        oldest jobs, evaluation the window right after — train on the
        past, evaluate on the future. ``"strided"``: jobs are dealt
        across evaluation and training streams at a stride sized so the
        evaluation picks thin the whole recording uniformly (training
        segments thin at the same rate, covering roughly the leading
        ``train_fraction`` of it).
    machine_events:
        Optional Google *machine events* files/globs. When set, the
        scenario additionally replays the recording's capacity churn:
        REMOVE/ADD pairs become
        :class:`~repro.sim.churn.CapacityEvent` drains (see
        :func:`~repro.workload.trace.read_google_machine_events`), with
        the same ``time_compression`` applied.
    """

    paths: tuple[str, ...]
    format: str = "google"
    min_duration: float = 60.0
    max_duration: float = 7_200.0
    time_compression: float = 1.0
    split: str = "head"
    machine_events: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.paths, (str, Path)):  # a lone path is a common slip
            object.__setattr__(self, "paths", (str(self.paths),))
        else:
            object.__setattr__(self, "paths", tuple(str(p) for p in self.paths))
        if isinstance(self.machine_events, (str, Path)):
            object.__setattr__(self, "machine_events", (str(self.machine_events),))
        else:
            object.__setattr__(
                self, "machine_events", tuple(str(p) for p in self.machine_events)
            )
        if not self.paths:
            raise ValueError("trace replay needs at least one path or glob")
        if self.format not in ("google", "canonical"):
            raise ValueError(
                f"format must be 'google' or 'canonical', got {self.format!r}"
            )
        if self.min_duration <= 0 or self.max_duration < self.min_duration:
            raise ValueError("need 0 < min_duration <= max_duration")
        if self.time_compression <= 0:
            raise ValueError(
                f"time_compression must be positive, got {self.time_compression}"
            )
        if self.split not in ("head", "strided"):
            raise ValueError(f"split must be 'head' or 'strided', got {self.split!r}")

    def file_fingerprints(self) -> tuple[tuple[str, int | None, int | None], ...]:
        """``(path, size, mtime_ns)`` of each resolved trace file.

        The replayed *data's* identity: content keys embed it (see
        :meth:`ScenarioSpec.content_dict`), so cached results can never
        outlive the file contents they were computed from.
        """
        return _trace_fingerprints(self.paths)

    def machine_event_fingerprints(
        self,
    ) -> tuple[tuple[str, int | None, int | None], ...]:
        """``(path, size, mtime_ns)`` of each resolved machine-events file."""
        return _trace_fingerprints(self.machine_events)

    def load_capacity_events(
        self, num_servers: int, horizon: float
    ) -> tuple[CapacityEvent, ...]:
        """The recording's churn schedule, compressed and horizon-clipped.

        Machine REMOVE/ADD cycles map onto the simulated fleet (machines
        assigned to server slots round-robin in first-seen order), times
        divide by ``time_compression`` like job arrivals, drains still
        open at the end of the recording close at ``horizon``, and
        events starting past ``horizon`` are dropped — they would only
        stretch the drain phase of a run whose jobs have all arrived.
        """
        if not self.machine_events:
            return ()
        events = read_google_machine_events(
            _resolve_trace_paths(self.machine_events),
            num_servers=num_servers,
            open_duration=horizon * self.time_compression,
        )
        clipped = []
        for event in events:
            time = event.time / self.time_compression
            if time >= horizon:
                continue
            clipped.append(
                CapacityEvent(
                    time=time,
                    server_id=event.server_id,
                    duration=event.duration / self.time_compression,
                    fraction=event.fraction,
                )
            )
        return tuple(clipped)

    def _records(self) -> tuple[tuple[float, float, tuple[float, ...]], ...]:
        """Cached parsed rows; raises if the files hold no usable jobs."""
        records = _load_replay_records(
            self.paths,
            self.format,
            self.min_duration,
            self.max_duration,
            fingerprints=self.file_fingerprints(),
        )
        if not records:
            raise ValueError(
                f"trace replay: no usable jobs in {', '.join(self.paths)} "
                f"(format={self.format!r}, duration window "
                f"[{self.min_duration}, {self.max_duration}] s)"
            )
        return records

    def load_jobs(self) -> list[Job]:
        """All usable jobs, arrival-sorted, re-based, compression applied.

        Raises
        ------
        ValueError
            If the files parse to zero usable jobs (wrong format, all
            durations outside the window, or a corrupt fixture).
        """
        records = self._records()
        jobs = [
            Job(
                job_id=i,
                arrival_time=arrival / self.time_compression,
                duration=duration,
                resources=res,
            )
            for i, (arrival, duration, res) in enumerate(records)
        ]
        return rebase(jobs)

    def _split_ranges(
        self, total: int, n_jobs: int, n_train_segments: int, train_fraction: float
    ) -> tuple[range, list[range]]:
        """Index ranges (over the arrival-sorted job list) per split policy.

        The single source of the split arithmetic, shared by
        :meth:`build` (which materializes jobs) and :meth:`eval_span`
        (which only needs two arrival times), so the two can never
        drift.
        """
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be positive, got {n_jobs}")
        eval_target = min(n_jobs, total)
        if n_train_segments < 1:
            return range(eval_target), []
        if self.split == "strided":
            # Stride so the evaluation picks thin the *whole* recording
            # (never finer than one slot per stream), instead of biting
            # off the head of a long trace.
            stride = max(n_train_segments + 1, total // eval_target)
            stream0 = range(0, total, stride)
            eval_n = min(n_jobs, len(stream0))
            per_segment = max(1, int(eval_n * train_fraction))
            segments = [
                range(j, total, stride)[:per_segment]
                for j in range(1, n_train_segments + 1)
            ]
            return stream0[:eval_n], segments
        # "head": train on the oldest jobs, evaluate right after.
        per_segment = max(1, int(eval_target * train_fraction))
        reserve = min(n_train_segments * per_segment, total // 2)
        eval_n = min(n_jobs, total - reserve)
        base, extra = divmod(reserve, n_train_segments)
        segments, lo = [], 0
        for i in range(n_train_segments):
            hi = lo + base + (1 if i < extra else 0)
            segments.append(range(lo, hi))
            lo = hi
        return range(reserve, reserve + eval_n), segments

    def build(
        self, n_jobs: int, n_train_segments: int, train_fraction: float
    ) -> tuple[list[Job], list[list[Job]]]:
        """Evaluation trace and training segments per the split policy.

        ``n_jobs`` is an upper bound: a recording shorter than the
        request replays in full (minus the training reservation) rather
        than failing, so the same scenario drives smoke fixtures and
        real multi-gigabyte traces. Training reserves at most half the
        usable jobs; empty segments are dropped. Every returned stream
        is re-based to t = 0 and renumbered.
        """
        jobs = self.load_jobs()
        eval_range, segment_ranges = self._split_ranges(
            len(jobs), n_jobs, n_train_segments, train_fraction
        )
        return (
            rebase([jobs[i] for i in eval_range]),
            [
                rebase([jobs[i] for i in segment])
                for segment in segment_ranges
                if segment
            ],
        )

    def eval_span(
        self, n_jobs: int, n_train_segments: int, train_fraction: float
    ) -> float:
        """Arrival span (seconds) of the evaluation trace ``build`` yields.

        Reads just two arrivals off the cached (already arrival-sorted)
        parse — no :class:`Job` construction or re-sort — so callers can
        ask for the horizon without paying a second full trace build.
        """
        records = self._records()
        eval_range, _ = self._split_ranges(
            len(records), n_jobs, n_train_segments, train_fraction
        )
        if not eval_range:
            return 0.0
        return (records[eval_range[-1]][0] - records[eval_range[0]][0]) / (
            self.time_compression
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """Recipe for the evaluation trace and its training segments.

    Parameters
    ----------
    classes:
        Weighted job classes; one class reproduces the paper's
        single-stream setup, several build a multi-tenant mix.
    flash_crowds:
        Extra arrival bursts layered on top (drawn from the first
        class's per-job marginals).
    rate_scale:
        Load multiplier on the reference intensity (1.0 = the intensity
        the paper offers a 30-machine cluster).
    train_fraction:
        Training-segment length relative to ``n_jobs`` (min 200 jobs for
        synthetic workloads; replay is bounded by the recording).
    n_train_segments:
        Number of independent training segments.
    burst_coupling:
        When set (in [0, 1]), classes are generated *correlated*: one
        shared diurnal phase and, to this degree, one shared burst
        timeline (see
        :func:`~repro.workload.mixtures.generate_correlated_mixture`).
        None (the default) keeps classes fully independent.
    replay:
        Replay recorded trace files instead of synthesizing: the
        :class:`TraceReplaySpec` supplies the evaluation trace and
        training segments, and every generator knob above except
        ``train_fraction`` / ``n_train_segments`` is ignored (and must
        stay at its default — mixing replay with synthetic layers is
        rejected).
    """

    classes: tuple[JobClassSpec, ...] = (JobClassSpec("default", 1.0),)
    flash_crowds: tuple[FlashCrowdSpec, ...] = ()
    rate_scale: float = 1.0
    train_fraction: float = 0.5
    n_train_segments: int = 2
    burst_coupling: float | None = None
    replay: TraceReplaySpec | None = None

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("need at least one job class")
        if self.rate_scale <= 0:
            raise ValueError(f"rate_scale must be positive, got {self.rate_scale}")
        if self.n_train_segments < 0:
            raise ValueError("n_train_segments must be non-negative")
        if self.burst_coupling is not None:
            if not 0.0 <= self.burst_coupling <= 1.0:
                raise ValueError(
                    f"burst_coupling must be in [0, 1], got {self.burst_coupling}"
                )
            if self.flash_crowds:
                raise ValueError(
                    "burst_coupling and flash_crowds do not compose; model the "
                    "surge as a coupled bursty class instead"
                )
        if self.replay is not None:
            if self.flash_crowds:
                raise ValueError("trace replay cannot carry flash crowds")
            if self.burst_coupling is not None:
                raise ValueError("trace replay cannot carry burst coupling")
            if self.rate_scale != 1.0:
                raise ValueError(
                    "trace replay ignores rate_scale; use the replay spec's "
                    "time_compression to raise intensity"
                )
            if self.classes != WorkloadSpec.__dataclass_fields__["classes"].default:
                raise ValueError(
                    "trace replay cannot carry synthetic job classes; the "
                    "recording is the workload"
                )

    def horizon_for(self, n_jobs: int, num_servers: int) -> float:
        """Trace span implied by the workload recipe.

        Synthetic workloads derive it from the reference intensity and
        fleet size; replay reads the actual evaluation span off the
        recording (fractional churn windows then land on real times).
        """
        if self.replay is not None:
            return self.replay.eval_span(
                n_jobs, self.n_train_segments, self.train_fraction
            )
        return n_jobs / reference_rate(num_servers, self.rate_scale)

    def build(
        self, n_jobs: int, num_servers: int, seed: int | np.random.SeedSequence
    ) -> tuple[list[Job], list[list[Job]]]:
        """Generate the evaluation trace and training segments.

        Every synthetic trace gets an independently spawned
        :class:`~numpy.random.SeedSequence` child, so training segments
        never share a stream with the evaluation trace (or each other),
        even when built in parallel workers. Trace replay is
        deterministic: the seed does not perturb the recorded jobs (it
        still seeds controller construction elsewhere).
        """
        if self.replay is not None:
            return self.replay.build(
                n_jobs, self.n_train_segments, self.train_fraction
            )
        ss = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        eval_ss, *train_ss = ss.spawn(1 + self.n_train_segments)
        class_configs = [(c.trace, c.weight) for c in self.classes]
        crowds = [
            (f.start_fraction, f.duration_fraction, f.rate_multiplier)
            for f in self.flash_crowds
        ]
        eval_jobs = self._generate(
            class_configs,
            n_jobs=n_jobs,
            horizon=self.horizon_for(n_jobs, num_servers),
            seed=eval_ss,
            flash_crowds=crowds,
        )
        train_jobs = max(int(n_jobs * self.train_fraction), 200)
        train_horizon = self.horizon_for(train_jobs, num_servers)
        train_traces = [
            self._generate(
                class_configs,
                n_jobs=train_jobs,
                horizon=train_horizon,
                seed=child,
                flash_crowds=crowds,
            )
            for child in train_ss
        ]
        return eval_jobs, train_traces

    def _generate(
        self,
        class_configs: list[tuple[SyntheticTraceConfig, float]],
        n_jobs: int,
        horizon: float,
        seed: np.random.SeedSequence,
        flash_crowds: list[tuple[float, float, float]],
    ) -> list[Job]:
        if self.burst_coupling is not None:
            return generate_correlated_mixture(
                class_configs,
                n_jobs=n_jobs,
                horizon=horizon,
                seed=seed,
                coupling=self.burst_coupling,
            )
        return generate_mixture(
            class_configs,
            n_jobs=n_jobs,
            horizon=horizon,
            seed=seed,
            flash_crowds=flash_crowds,
        )


@dataclass(frozen=True)
class ServerClassSpec:
    """A block of identical servers inside a fleet."""

    name: str
    count: int
    power: PowerModel = field(default_factory=PowerModel)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("server class name must be non-empty")
        if self.count < 1:
            raise ValueError(f"count must be positive, got {self.count}")


@dataclass(frozen=True)
class FleetSpec:
    """Cluster composition: one or more server classes plus grouping."""

    classes: tuple[ServerClassSpec, ...] = (ServerClassSpec("standard", 30),)
    num_groups: int | None = None

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("need at least one server class")
        if self.num_groups is not None and self.num_servers % self.num_groups != 0:
            raise ValueError(
                f"num_servers ({self.num_servers}) must be divisible by "
                f"num_groups ({self.num_groups})"
            )

    @property
    def num_servers(self) -> int:
        return sum(c.count for c in self.classes)

    @property
    def is_heterogeneous(self) -> bool:
        return len(self.classes) > 1

    def power_models(self) -> tuple[PowerModel, ...] | None:
        """Per-server models for mixed fleets, None when homogeneous."""
        if not self.is_heterogeneous:
            return None
        models: list[PowerModel] = []
        for cls in self.classes:
            models.extend([cls.power] * cls.count)
        return tuple(models)

    def groups(self) -> int:
        return (
            self.num_groups
            if self.num_groups is not None
            else groups_for(self.num_servers)
        )


@dataclass(frozen=True)
class SiteSpec:
    """One member site of a federated scenario.

    Sites may differ in fleet composition (and therefore power models),
    electricity tariff (market and time zone — see
    :meth:`~repro.sim.power.TariffModel.shifted`), and workload share.

    Parameters
    ----------
    name:
        Site label (cosmetic; excluded from content keys like all other
        labels).
    fleet:
        The site's cluster composition.
    tariff:
        The site's price/carbon signal; per-site cost and CO₂ accounts
        are integrated against it.
    weight:
        The site's share of the fleet-wide job stream (normalized over
        sites); the *home* stream — the federation tier may still move
        jobs elsewhere.
    faults:
        Site-local unplanned-failure model, overriding the scenario's
        ``faults`` for this site. Site-wide outage windows live on the
        scenario-level spec (which sees every site index), not here.
    """

    name: str
    fleet: FleetSpec = field(default_factory=FleetSpec)
    tariff: TariffModel | None = None
    weight: float = 1.0
    faults: FaultSpec | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("site name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"site weight must be positive, got {self.weight}")
        if self.faults is not None and self.faults.site_outages:
            raise ValueError(
                f"site {self.name!r}: site_outages belong on the scenario's "
                "FaultSpec (which can see every site index), not a SiteSpec's"
            )


@dataclass(frozen=True)
class CapacityWindowSpec:
    """A churn window (maintenance drain / failure) on a set of servers.

    Times are fractions of the evaluation span so the same scenario
    scales from smoke tests to full-size runs.
    """

    start_fraction: float
    duration_fraction: float
    servers: tuple[int, ...]
    capacity_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_fraction < 1.0:
            raise ValueError(
                f"start_fraction must be in [0, 1), got {self.start_fraction}"
            )
        if not 0.0 < self.duration_fraction <= 1.0:
            raise ValueError(
                f"duration_fraction must be in (0, 1], got {self.duration_fraction}"
            )
        if not self.servers:
            raise ValueError("a capacity window must name at least one server")
        if not 0.0 <= self.capacity_fraction < 1.0:
            raise ValueError(
                f"capacity_fraction must be in [0, 1), got {self.capacity_fraction}"
            )

    def to_events(self, horizon: float) -> tuple[CapacityEvent, ...]:
        return tuple(
            CapacityEvent(
                time=self.start_fraction * horizon,
                server_id=server,
                duration=self.duration_fraction * horizon,
                fraction=self.capacity_fraction,
            )
            for server in self.servers
        )


def rolling_maintenance(
    num_servers: int,
    group_size: int,
    n_waves: int,
    first_start: float = 0.1,
    spacing: float = 0.15,
    duration_fraction: float = 0.08,
    capacity_fraction: float = 0.0,
) -> tuple[CapacityWindowSpec, ...]:
    """Staggered drain waves over consecutive server blocks.

    Wave ``i`` drains servers ``[i * group_size, (i + 1) * group_size)``
    (mod the fleet size) starting at ``first_start + i * spacing`` of
    the span — the classic rolling-maintenance pattern.
    """
    if group_size < 1 or n_waves < 1:
        raise ValueError("group_size and n_waves must be positive")
    windows = []
    for wave in range(n_waves):
        start = first_start + wave * spacing
        if start + duration_fraction > 1.0:
            raise ValueError(
                f"wave {wave} at start fraction {start} overruns the span; "
                "reduce n_waves, spacing, or duration_fraction"
            )
        servers = tuple(
            (wave * group_size + i) % num_servers for i in range(group_size)
        )
        windows.append(
            CapacityWindowSpec(
                start_fraction=start,
                duration_fraction=duration_fraction,
                servers=servers,
                capacity_fraction=capacity_fraction,
            )
        )
    return tuple(windows)


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, fully parameterized experiment scenario.

    ``tariff`` attaches a time-varying electricity price / carbon
    intensity signal (:class:`~repro.sim.power.TariffModel`): evaluation
    results then carry cost ($) and CO₂ (kg) series alongside energy.
    The tariff never enters training — it is an accounting lens over the
    same joules, so it shapes result content keys but not training keys.

    ``sites`` turns the scenario *federated*: instead of one cluster,
    the simulation runs a fleet of sites (each with its own fleet,
    tariff, and home workload share) on one event clock, with the
    ``federation`` policy dispatching arrivals across sites before each
    site's own broker places them on servers. A single-entry ``sites``
    tuple is exactly the single-cluster experiment (bit-identical
    metrics); an empty one (the default) keeps the classic
    single-cluster path.
    """

    name: str
    description: str
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    fleet: FleetSpec = field(default_factory=FleetSpec)
    capacity_windows: tuple[CapacityWindowSpec, ...] = ()
    overload_threshold: float = 0.9
    tariff: TariffModel | None = None
    sites: tuple[SiteSpec, ...] = ()
    federation: str = "home"
    #: Unplanned-failure model (crashes, job failures, stragglers, site
    #: outages); seeded per cell and content-keyed like everything else.
    faults: FaultSpec | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.federation not in FEDERATION_POLICIES:
            raise ValueError(
                f"unknown federation policy {self.federation!r}; "
                f"known: {FEDERATION_POLICIES}"
            )
        if not self.sites and self.federation != "home":
            raise ValueError(
                f"scenario {self.name!r}: federation policy "
                f"{self.federation!r} needs a non-empty sites tuple"
            )
        if self.sites:
            if self.capacity_windows:
                raise ValueError(
                    f"scenario {self.name!r}: capacity windows are not "
                    "supported on federated scenarios yet"
                )
            if len(self.sites) > 1:
                if self.workload.replay is not None:
                    raise ValueError(
                        f"scenario {self.name!r}: trace replay supports a "
                        "single site; multi-site replay needs a per-site "
                        "recording split"
                    )
                if len(self.workload.classes) != 1 or self.workload.flash_crowds:
                    raise ValueError(
                        f"scenario {self.name!r}: multi-site workloads are "
                        "generated per site from one job class (coupled via "
                        "burst_coupling); use a single class without flash "
                        "crowds"
                    )
        for window in self.capacity_windows:
            bad = [s for s in window.servers if s >= self.fleet.num_servers]
            if bad:
                raise ValueError(
                    f"scenario {self.name!r}: capacity window targets servers "
                    f"{bad} outside the {self.fleet.num_servers}-server fleet"
                )
        if self.faults is not None and self.faults.site_outages:
            if not self.sites:
                raise ValueError(
                    f"scenario {self.name!r}: site_outages need a federated "
                    "scenario (non-empty sites tuple)"
                )
            bad_sites = [
                o.site for o in self.faults.site_outages if o.site >= len(self.sites)
            ]
            if bad_sites:
                raise ValueError(
                    f"scenario {self.name!r}: site outages target sites "
                    f"{bad_sites} outside the {len(self.sites)}-site federation"
                )

    @property
    def is_federated(self) -> bool:
        return bool(self.sites)

    @property
    def num_servers_total(self) -> int:
        """Servers fleet-wide: across all sites, or the single cluster."""
        if self.sites:
            return sum(site.fleet.num_servers for site in self.sites)
        return self.fleet.num_servers

    def _fleet_config(self, fleet: FleetSpec, seed: int) -> ExperimentConfig:
        return ExperimentConfig(
            num_servers=fleet.num_servers,
            power_model=fleet.classes[0].power,
            power_models=fleet.power_models(),
            overload_threshold=self.overload_threshold,
            global_tier=GlobalTierConfig(num_groups=fleet.groups()),
            seed=seed,
        )

    def experiment_config(self, seed: int = 0) -> ExperimentConfig:
        """The simulation/controller configuration this scenario implies."""
        return self._fleet_config(self.fleet, seed)

    def site_experiment_config(self, index: int, seed: int = 0) -> ExperimentConfig:
        """Configuration for one member site of a federated scenario."""
        return self._fleet_config(self.sites[index].fleet, seed)

    def build_traces(
        self, n_jobs: int, seed: int | np.random.SeedSequence
    ) -> tuple[list[Job], list[list[Job]]]:
        """Evaluation trace plus training segments for this scenario.

        Raises
        ------
        ValueError
            On a multi-site scenario — its per-site streams come from
            :meth:`build_site_traces` instead.
        """
        if len(self.sites) > 1:
            raise ValueError(
                f"scenario {self.name!r} is federated; use build_site_traces"
            )
        return self.workload.build(n_jobs, self.num_servers_total, seed)

    def build_site_traces(
        self, n_jobs: int, seed: int | np.random.SeedSequence
    ) -> tuple[list[list[Job]], list[list[list[Job]]]]:
        """Per-site home streams plus per-site training segments.

        Returns ``(eval_streams, train_streams)`` with
        ``eval_streams[i]`` site *i*'s home evaluation stream and
        ``train_streams[k][i]`` site *i*'s slice of training segment
        *k*. Sites draw their shares of ``n_jobs`` from their weights
        over one shared horizon, generated *correlated* — one shared
        diurnal phase and, to ``workload.burst_coupling`` (default 0),
        one shared burst timeline — so cross-site load peaks coincide
        the way real fleets' do. A federation of one delegates to the
        single-cluster :meth:`WorkloadSpec.build` and is therefore the
        identical experiment.
        """
        if not self.sites:
            raise ValueError(
                f"scenario {self.name!r} has no sites; use build_traces"
            )
        workload = self.workload
        if len(self.sites) == 1:
            eval_jobs, segments = workload.build(
                n_jobs, self.num_servers_total, seed
            )
            return [eval_jobs], [[segment] for segment in segments]
        ss = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        eval_ss, *train_ss = ss.spawn(1 + workload.n_train_segments)
        total_weight = sum(site.weight for site in self.sites)
        config = workload.classes[0].trace
        coupling = (
            workload.burst_coupling if workload.burst_coupling is not None else 0.0
        )

        def site_jobs(total: int) -> list[int]:
            return [
                max(1, round(total * site.weight / total_weight))
                for site in self.sites
            ]

        def renumber(streams: list[list[Job]]) -> list[list[Job]]:
            # Per-site traces each start numbering at 0; a federation
            # mixes them on shared clusters, so IDs must be unique
            # fleet-wide (they key per-server queue/running maps).
            offset = 0
            for stream in streams:
                for job in stream:
                    job.job_id += offset
                offset += len(stream)
            return streams

        horizon = workload.horizon_for(n_jobs, self.num_servers_total)
        eval_streams = renumber(
            correlated_traces(
                [(config, n) for n in site_jobs(n_jobs)],
                horizon=horizon,
                seed=eval_ss,
                coupling=coupling,
            )
        )
        train_total = max(int(n_jobs * workload.train_fraction), 200)
        train_horizon = workload.horizon_for(train_total, self.num_servers_total)
        train_streams = [
            renumber(
                correlated_traces(
                    [(config, n) for n in site_jobs(train_total)],
                    horizon=train_horizon,
                    seed=child,
                    coupling=coupling,
                )
            )
            for child in train_ss
        ]
        return eval_streams, train_streams

    def capacity_events(self, horizon: float) -> tuple[CapacityEvent, ...]:
        """Concrete churn schedule for a trace spanning ``horizon`` seconds.

        Fraction-of-span windows come first; a replay workload carrying
        Google machine-events files appends the recording's own
        REMOVE/ADD churn, mapped onto this scenario's fleet.
        """
        events: list[CapacityEvent] = []
        for window in self.capacity_windows:
            events.extend(window.to_events(horizon))
        replay = self.workload.replay
        if replay is not None and replay.machine_events:
            events.extend(
                replay.load_capacity_events(self.num_servers_total, horizon)
            )
        return tuple(events)

    def horizon_for(self, n_jobs: int) -> float:
        """Evaluation span (seconds) this scenario implies for ``n_jobs``."""
        return self.workload.horizon_for(n_jobs, self.num_servers_total)

    # ------------------------------------------------------------------
    # Content identity (for the result cache)
    # ------------------------------------------------------------------

    def content_dict(self) -> dict:
        """Plain-data view of every parameter that affects results.

        Labels are cosmetic — scenarios that differ only in naming
        simulate identically — so the scenario ``name``/``description``
        and the job/server class names are excluded, keeping cached
        results stable across renames. A null :class:`FaultSpec` (one
        whose :meth:`~repro.faults.spec.FaultSpec.is_null` is true)
        injects nothing, so it is normalized to ``None``: fault-free
        specs stay keyless however they were spelled, and adding
        ``faults=FaultSpec()`` never invalidates a fault-free cache. A
        replay workload additionally keys the trace *files* (path, size,
        mtime per resolved file): editing or replacing a trace file must
        invalidate the results computed from its old contents, not
        silently serve them.
        """
        payload = asdict(self)
        payload.pop("name")
        payload.pop("description")
        if self.faults is not None and self.faults.is_null():
            payload["faults"] = None
        for cls in payload["workload"]["classes"]:
            cls.pop("name")
        for cls in payload["fleet"]["classes"]:
            cls.pop("name")
        for spec, site in zip(self.sites, payload["sites"]):
            site.pop("name")
            if spec.faults is not None and spec.faults.is_null():
                site["faults"] = None
            for cls in site["fleet"]["classes"]:
                cls.pop("name")
        if self.workload.replay is not None:
            payload["workload"]["replay"]["files"] = [
                list(fp) for fp in self.workload.replay.file_fingerprints()
            ]
            if self.workload.replay.machine_events:
                payload["workload"]["replay"]["machine_files"] = [
                    list(fp)
                    for fp in self.workload.replay.machine_event_fingerprints()
                ]
        return payload

    def content_key(self) -> str:
        """Stable hex digest of the spec's behavioral parameters."""
        return content_key(self.content_dict())[:16]
