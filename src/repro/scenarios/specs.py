"""Declarative experiment scenarios: workload × fleet × churn.

A :class:`ScenarioSpec` is a complete, parameter-only description of one
experiment family — everything needed to build traces, an
:class:`~repro.core.config.ExperimentConfig`, and a churn schedule from
just ``(n_jobs, seed)``. Specs are frozen dataclasses of plain numbers
and strings, so they pickle across ``multiprocessing`` workers and
serialize to canonical JSON for content-keyed result caching
(:meth:`ScenarioSpec.content_key`).

Sizing follows the harness convention: the base synthetic intensity
(100 k jobs/week) targets the paper's 30-machine cluster, larger fleets
reuse it (Table I evaluates M = 30 and 40 on the same segments), and
smaller test fleets are fed proportionally lighter load.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.config import ExperimentConfig, GlobalTierConfig
from repro.scenarios.store import content_key
from repro.sim.churn import CapacityEvent
from repro.sim.job import Job
from repro.sim.power import PowerModel
from repro.workload.mixtures import generate_mixture
from repro.workload.synthetic import SyntheticTraceConfig, reference_rate


def groups_for(num_servers: int) -> int:
    """K between 2 and 4 dividing M (paper: K in [2, 4])."""
    for k in (4, 3, 2):
        if num_servers % k == 0:
            return k
    return 1


@dataclass(frozen=True)
class JobClassSpec:
    """One tenant / job class inside a workload mix."""

    name: str
    weight: float
    trace: SyntheticTraceConfig = field(default_factory=SyntheticTraceConfig)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job class name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class FlashCrowdSpec:
    """A flash-crowd window, positioned as fractions of the trace span."""

    start_fraction: float
    duration_fraction: float
    rate_multiplier: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_fraction < 1.0:
            raise ValueError(f"start_fraction must be in [0, 1), got {self.start_fraction}")
        if not 0.0 < self.duration_fraction <= 1.0:
            raise ValueError(
                f"duration_fraction must be in (0, 1], got {self.duration_fraction}"
            )
        if self.rate_multiplier <= 1.0:
            raise ValueError(
                f"rate_multiplier must exceed 1, got {self.rate_multiplier}"
            )


@dataclass(frozen=True)
class WorkloadSpec:
    """Recipe for the evaluation trace and its training segments.

    Parameters
    ----------
    classes:
        Weighted job classes; one class reproduces the paper's
        single-stream setup, several build a multi-tenant mix.
    flash_crowds:
        Extra arrival bursts layered on top (drawn from the first
        class's per-job marginals).
    rate_scale:
        Load multiplier on the reference intensity (1.0 = the intensity
        the paper offers a 30-machine cluster).
    train_fraction:
        Training-segment length relative to ``n_jobs`` (min 200 jobs).
    n_train_segments:
        Number of independent training segments.
    """

    classes: tuple[JobClassSpec, ...] = (JobClassSpec("default", 1.0),)
    flash_crowds: tuple[FlashCrowdSpec, ...] = ()
    rate_scale: float = 1.0
    train_fraction: float = 0.5
    n_train_segments: int = 2

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("need at least one job class")
        if self.rate_scale <= 0:
            raise ValueError(f"rate_scale must be positive, got {self.rate_scale}")
        if self.n_train_segments < 0:
            raise ValueError("n_train_segments must be non-negative")

    def horizon_for(self, n_jobs: int, num_servers: int) -> float:
        """Trace span implied by the reference intensity and fleet size."""
        return n_jobs / reference_rate(num_servers, self.rate_scale)

    def build(
        self, n_jobs: int, num_servers: int, seed: int | np.random.SeedSequence
    ) -> tuple[list[Job], list[list[Job]]]:
        """Generate the evaluation trace and training segments.

        Every trace gets an independently spawned
        :class:`~numpy.random.SeedSequence` child, so training segments
        never share a stream with the evaluation trace (or each other),
        even when built in parallel workers.
        """
        ss = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        eval_ss, *train_ss = ss.spawn(1 + self.n_train_segments)
        class_configs = [(c.trace, c.weight) for c in self.classes]
        crowds = [
            (f.start_fraction, f.duration_fraction, f.rate_multiplier)
            for f in self.flash_crowds
        ]
        eval_jobs = generate_mixture(
            class_configs,
            n_jobs=n_jobs,
            horizon=self.horizon_for(n_jobs, num_servers),
            seed=eval_ss,
            flash_crowds=crowds,
        )
        train_jobs = max(int(n_jobs * self.train_fraction), 200)
        train_horizon = self.horizon_for(train_jobs, num_servers)
        train_traces = [
            generate_mixture(
                class_configs,
                n_jobs=train_jobs,
                horizon=train_horizon,
                seed=child,
                flash_crowds=crowds,
            )
            for child in train_ss
        ]
        return eval_jobs, train_traces


@dataclass(frozen=True)
class ServerClassSpec:
    """A block of identical servers inside a fleet."""

    name: str
    count: int
    power: PowerModel = field(default_factory=PowerModel)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("server class name must be non-empty")
        if self.count < 1:
            raise ValueError(f"count must be positive, got {self.count}")


@dataclass(frozen=True)
class FleetSpec:
    """Cluster composition: one or more server classes plus grouping."""

    classes: tuple[ServerClassSpec, ...] = (ServerClassSpec("standard", 30),)
    num_groups: int | None = None

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("need at least one server class")
        if self.num_groups is not None and self.num_servers % self.num_groups != 0:
            raise ValueError(
                f"num_servers ({self.num_servers}) must be divisible by "
                f"num_groups ({self.num_groups})"
            )

    @property
    def num_servers(self) -> int:
        return sum(c.count for c in self.classes)

    @property
    def is_heterogeneous(self) -> bool:
        return len(self.classes) > 1

    def power_models(self) -> tuple[PowerModel, ...] | None:
        """Per-server models for mixed fleets, None when homogeneous."""
        if not self.is_heterogeneous:
            return None
        models: list[PowerModel] = []
        for cls in self.classes:
            models.extend([cls.power] * cls.count)
        return tuple(models)

    def groups(self) -> int:
        return self.num_groups if self.num_groups is not None else groups_for(self.num_servers)


@dataclass(frozen=True)
class CapacityWindowSpec:
    """A churn window (maintenance drain / failure) on a set of servers.

    Times are fractions of the evaluation span so the same scenario
    scales from smoke tests to full-size runs.
    """

    start_fraction: float
    duration_fraction: float
    servers: tuple[int, ...]
    capacity_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_fraction < 1.0:
            raise ValueError(f"start_fraction must be in [0, 1), got {self.start_fraction}")
        if not 0.0 < self.duration_fraction <= 1.0:
            raise ValueError(
                f"duration_fraction must be in (0, 1], got {self.duration_fraction}"
            )
        if not self.servers:
            raise ValueError("a capacity window must name at least one server")
        if not 0.0 <= self.capacity_fraction < 1.0:
            raise ValueError(
                f"capacity_fraction must be in [0, 1), got {self.capacity_fraction}"
            )

    def to_events(self, horizon: float) -> tuple[CapacityEvent, ...]:
        return tuple(
            CapacityEvent(
                time=self.start_fraction * horizon,
                server_id=server,
                duration=self.duration_fraction * horizon,
                fraction=self.capacity_fraction,
            )
            for server in self.servers
        )


def rolling_maintenance(
    num_servers: int,
    group_size: int,
    n_waves: int,
    first_start: float = 0.1,
    spacing: float = 0.15,
    duration_fraction: float = 0.08,
    capacity_fraction: float = 0.0,
) -> tuple[CapacityWindowSpec, ...]:
    """Staggered drain waves over consecutive server blocks.

    Wave ``i`` drains servers ``[i * group_size, (i + 1) * group_size)``
    (mod the fleet size) starting at ``first_start + i * spacing`` of
    the span — the classic rolling-maintenance pattern.
    """
    if group_size < 1 or n_waves < 1:
        raise ValueError("group_size and n_waves must be positive")
    windows = []
    for wave in range(n_waves):
        start = first_start + wave * spacing
        if start + duration_fraction > 1.0:
            raise ValueError(
                f"wave {wave} at start fraction {start} overruns the span; "
                "reduce n_waves, spacing, or duration_fraction"
            )
        servers = tuple(
            (wave * group_size + i) % num_servers for i in range(group_size)
        )
        windows.append(
            CapacityWindowSpec(
                start_fraction=start,
                duration_fraction=duration_fraction,
                servers=servers,
                capacity_fraction=capacity_fraction,
            )
        )
    return tuple(windows)


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, fully parameterized experiment scenario."""

    name: str
    description: str
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    fleet: FleetSpec = field(default_factory=FleetSpec)
    capacity_windows: tuple[CapacityWindowSpec, ...] = ()
    overload_threshold: float = 0.9

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        for window in self.capacity_windows:
            bad = [s for s in window.servers if s >= self.fleet.num_servers]
            if bad:
                raise ValueError(
                    f"scenario {self.name!r}: capacity window targets servers "
                    f"{bad} outside the {self.fleet.num_servers}-server fleet"
                )

    def experiment_config(self, seed: int = 0) -> ExperimentConfig:
        """The simulation/controller configuration this scenario implies."""
        models = self.fleet.power_models()
        return ExperimentConfig(
            num_servers=self.fleet.num_servers,
            power_model=self.fleet.classes[0].power,
            power_models=models,
            overload_threshold=self.overload_threshold,
            global_tier=GlobalTierConfig(num_groups=self.fleet.groups()),
            seed=seed,
        )

    def build_traces(
        self, n_jobs: int, seed: int | np.random.SeedSequence
    ) -> tuple[list[Job], list[list[Job]]]:
        """Evaluation trace plus training segments for this scenario."""
        return self.workload.build(n_jobs, self.fleet.num_servers, seed)

    def capacity_events(self, horizon: float) -> tuple[CapacityEvent, ...]:
        """Concrete churn schedule for a trace spanning ``horizon`` seconds."""
        events: list[CapacityEvent] = []
        for window in self.capacity_windows:
            events.extend(window.to_events(horizon))
        return tuple(events)

    def horizon_for(self, n_jobs: int) -> float:
        """Evaluation span (seconds) this scenario implies for ``n_jobs``."""
        return self.workload.horizon_for(n_jobs, self.fleet.num_servers)

    # ------------------------------------------------------------------
    # Content identity (for the result cache)
    # ------------------------------------------------------------------

    def content_dict(self) -> dict:
        """Plain-data view of every parameter that affects results.

        Labels are cosmetic — scenarios that differ only in naming
        simulate identically — so the scenario ``name``/``description``
        and the job/server class names are excluded, keeping cached
        results stable across renames.
        """
        payload = asdict(self)
        payload.pop("name")
        payload.pop("description")
        for cls in payload["workload"]["classes"]:
            cls.pop("name")
        for cls in payload["fleet"]["classes"]:
            cls.pop("name")
        return payload

    def content_key(self) -> str:
        """Stable hex digest of the spec's behavioral parameters."""
        return content_key(self.content_dict())[:16]
