"""The builtin scenario suite.

Fourteen scenarios spanning the axes the ROADMAP cares about: the
paper's own setup, stronger diurnal swings, flash crowds, a
mixed-efficiency fleet, rolling maintenance churn, a high-load
two-tenant mix, real Google-trace replay, carbon- and price-aware
electricity accounting, a correlated (coincident-peak) tenant fleet,
two *federated* multi-site scenarios (correlated regional streams under
least-loaded dispatch, and follow-the-sun price-greedy dispatch across
shifted time-of-use tariffs), and two *faulted* scenarios exercising
:mod:`repro.faults` (a single-cluster failure storm, and a federation
degraded by site outage windows). Each is a pure parameterization of
:class:`~repro.scenarios.specs.ScenarioSpec`; importing this module
registers all of them.

Workload parameters deliberately stay within the generator's calibrated
envelope (durations clipped to [1 min, 2 h], Beta resource demands) so
every scenario remains a plausible Google-like segment rather than a
synthetic stress toy — except where the scenario's entire point is
stress (``flash-crowd``, ``tenant-mix``, ``correlated-fleet``).
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from repro.faults.spec import FaultSpec, SiteOutageSpec
from repro.scenarios.registry import register
from repro.scenarios.specs import (
    FleetSpec,
    FlashCrowdSpec,
    JobClassSpec,
    ScenarioSpec,
    ServerClassSpec,
    SiteSpec,
    TraceReplaySpec,
    WorkloadSpec,
    rolling_maintenance,
)
from repro.sim.power import PowerModel, TariffModel
from repro.workload.synthetic import SyntheticTraceConfig

_BASE = SyntheticTraceConfig()

#: Mixed-generation fleet: newer machines idle lower and wake faster;
#: legacy machines pay more at every utilization.
EFFICIENT_POWER = PowerModel(idle_power=55.0, peak_power=118.0, t_on=20.0, t_off=20.0)
STANDARD_POWER = PowerModel()  # the paper's 87 W / 145 W server
LEGACY_POWER = PowerModel(idle_power=112.0, peak_power=188.0, t_on=45.0, t_off=45.0)


PAPER_DEFAULT = register(
    ScenarioSpec(
        name="paper-default",
        description="The paper's setup: one Google-like stream, 30 homogeneous servers",
    )
)

DIURNAL_HEAVY = register(
    ScenarioSpec(
        name="diurnal-heavy",
        description="Near-full day/night swing; rewards aggressive off-peak sleeping",
        workload=WorkloadSpec(
            classes=(
                JobClassSpec(
                    "diurnal",
                    1.0,
                    replace(
                        _BASE,
                        diurnal_amplitude=0.85,
                        burst_rate_multiplier=1.5,
                    ),
                ),
            ),
        ),
    )
)

FLASH_CROWD = register(
    ScenarioSpec(
        name="flash-crowd",
        description="Two uncorrelated arrival spikes (6x and 4x) over a calm baseline",
        workload=WorkloadSpec(
            classes=(
                JobClassSpec(
                    "baseline",
                    1.0,
                    replace(_BASE, diurnal_amplitude=0.3, burst_rate_multiplier=1.5),
                ),
            ),
            flash_crowds=(
                FlashCrowdSpec(
                    start_fraction=0.2, duration_fraction=0.05, rate_multiplier=6.0
                ),
                FlashCrowdSpec(
                    start_fraction=0.6, duration_fraction=0.08, rate_multiplier=4.0
                ),
            ),
        ),
    )
)

HETERO_FLEET = register(
    ScenarioSpec(
        name="hetero-fleet",
        description="Mixed fleet: 10 efficient, 10 standard, 10 legacy power profiles",
        fleet=FleetSpec(
            classes=(
                ServerClassSpec("efficient", 10, EFFICIENT_POWER),
                ServerClassSpec("standard", 10, STANDARD_POWER),
                ServerClassSpec("legacy", 10, LEGACY_POWER),
            ),
        ),
    )
)

MAINTENANCE_CHURN = register(
    ScenarioSpec(
        name="maintenance-churn",
        description="Rolling maintenance: 5 staggered waves each draining 3 servers",
        capacity_windows=rolling_maintenance(
            num_servers=30, group_size=3, n_waves=5
        ),
    )
)

TENANT_MIX = register(
    ScenarioSpec(
        name="tenant-mix",
        description=(
            "High-load mix: diurnal interactive tenant over a bursty "
            "batch tenant"
        ),
        workload=WorkloadSpec(
            classes=(
                JobClassSpec(
                    "interactive",
                    0.65,
                    replace(
                        _BASE,
                        diurnal_amplitude=0.6,
                        burst_rate_multiplier=1.5,
                        duration_median=120.0,
                        duration_sigma=0.8,
                        cpu_scale=0.3,
                        mem_scale=0.25,
                        disk_scale=0.15,
                    ),
                ),
                JobClassSpec(
                    "batch",
                    0.35,
                    replace(
                        _BASE,
                        diurnal_amplitude=0.15,
                        burst_rate_multiplier=4.0,
                        burst_on_mean=1_800.0,
                        duration_median=1_500.0,
                        duration_sigma=0.7,
                        cpu_scale=0.7,
                        mem_scale=0.6,
                        disk_scale=0.5,
                        correlation=0.8,
                    ),
                ),
            ),
            rate_scale=1.2,
        ),
    )
)

#: Bundled Google-format fixture. Anchored to the repository this module
#: lives in (not the cwd) so the default ``google-replay`` scenario — and
#: therefore a default ``scenario sweep`` over every registered scenario —
#: works from any working directory; the cwd-relative spelling is kept as
#: a fallback for installed copies run from a source checkout.
#: ``scenario run --trace`` points the same scenario at real
#: cluster-usage part files.
_FIXTURE_RELATIVE = "tests/fixtures/google_task_events_small.csv"
_FIXTURE_IN_REPO = Path(__file__).resolve().parents[3] / _FIXTURE_RELATIVE
FIXTURE_TRACE = (
    str(_FIXTURE_IN_REPO) if _FIXTURE_IN_REPO.exists() else _FIXTURE_RELATIVE
)

GOOGLE_REPLAY = register(
    ScenarioSpec(
        name="google-replay",
        description=(
            "Replay Google task-events CSVs (bundled fixture; --trace "
            "swaps in real files)"
        ),
        workload=WorkloadSpec(
            replay=TraceReplaySpec(paths=(FIXTURE_TRACE,)),
            train_fraction=0.5,
            n_train_segments=1,
        ),
        tariff=TariffModel(),  # flat tariff: cost/CO₂ series track energy
    )
)

#: A stylized grid-intensity day: clean overnight wind, a midday solar
#: dip, and a dirty evening ramp (values bracket typical gCO₂/kWh mixes).
CARBON_CURVE = (
    (0.0, 6 * 3600.0, 180.0),
    (11 * 3600.0, 15 * 3600.0, 240.0),
    (17 * 3600.0, 22 * 3600.0, 540.0),
)

CARBON_AWARE_DIURNAL = register(
    ScenarioSpec(
        name="carbon-aware-diurnal",
        description=(
            "Diurnal swing against a daily grid carbon curve (clean "
            "nights, dirty evening ramp)"
        ),
        workload=WorkloadSpec(
            classes=(
                JobClassSpec(
                    "diurnal",
                    1.0,
                    replace(_BASE, diurnal_amplitude=0.7, burst_rate_multiplier=2.0),
                ),
            ),
        ),
        tariff=TariffModel(carbon=420.0, carbon_windows=CARBON_CURVE),
    )
)

TOU_PRICE_SHIFT = register(
    ScenarioSpec(
        name="tou-price-shift",
        description=(
            "Time-of-use pricing: 4x peak tariff 16-21h over the "
            "paper's workload"
        ),
        tariff=TariffModel.time_of_use(
            peak_start_hour=16.0,
            peak_end_hour=21.0,
            peak_price=0.32,
            offpeak_price=0.08,
        ),
    )
)

CORRELATED_FLEET = register(
    ScenarioSpec(
        name="correlated-fleet",
        description=(
            "Two bursty tenants fully burst-coupled: every peak lands "
            "on the same minutes"
        ),
        workload=WorkloadSpec(
            classes=(
                JobClassSpec(
                    "region-a",
                    0.5,
                    replace(
                        _BASE,
                        diurnal_amplitude=0.5,
                        burst_rate_multiplier=4.0,
                        burst_on_mean=900.0,
                    ),
                ),
                JobClassSpec(
                    "region-b",
                    0.5,
                    replace(
                        _BASE,
                        diurnal_amplitude=0.5,
                        burst_rate_multiplier=4.0,
                        burst_on_mean=900.0,
                        duration_median=450.0,
                        cpu_scale=0.6,
                    ),
                ),
            ),
            burst_coupling=1.0,
            rate_scale=1.1,
        ),
    )
)

#: A compact 10-server site fleet (groups_for(10) = 2) reused by the
#: federated scenarios; three of them match the paper's 30 servers.
_SITE_FLEET = FleetSpec(classes=(ServerClassSpec("standard", 10),))

FEDERATED_CORRELATED = register(
    ScenarioSpec(
        name="federated-correlated",
        description=(
            "Three-site federation under fully burst-coupled regional "
            "streams; least-loaded cross-site dispatch"
        ),
        workload=WorkloadSpec(
            classes=(
                JobClassSpec(
                    "regional",
                    1.0,
                    replace(
                        _BASE,
                        diurnal_amplitude=0.5,
                        burst_rate_multiplier=3.0,
                        burst_on_mean=900.0,
                    ),
                ),
            ),
            burst_coupling=1.0,
        ),
        sites=(
            # One grid per site: hydro-heavy, mixed-fossil, coal-heavy —
            # identical fleets, so differences are pure dispatch.
            SiteSpec("hydro", _SITE_FLEET, tariff=TariffModel(carbon=120.0)),
            SiteSpec("mixed", _SITE_FLEET, tariff=TariffModel(carbon=420.0)),
            SiteSpec("coal", _SITE_FLEET, tariff=TariffModel(carbon=760.0)),
        ),
        federation="least-loaded",
    )
)

#: One time-of-use plan, read in three time zones (8 h apart): each
#: site's peak window lands at a different absolute simulation time, so
#: somewhere in the federation it is always off-peak.
_TOU = TariffModel.time_of_use(
    peak_start_hour=16.0,
    peak_end_hour=21.0,
    peak_price=0.32,
    offpeak_price=0.08,
)

FOLLOW_THE_SUN = register(
    ScenarioSpec(
        name="follow-the-sun",
        description=(
            "Three time zones, shifted time-of-use tariffs; "
            "price-greedy dispatch chases the off-peak site"
        ),
        workload=WorkloadSpec(
            classes=(
                JobClassSpec(
                    "diurnal",
                    1.0,
                    replace(_BASE, diurnal_amplitude=0.6, burst_rate_multiplier=2.0),
                ),
            ),
        ),
        sites=(
            SiteSpec("apac", _SITE_FLEET, tariff=_TOU.shifted(-8 * 3600.0)),
            SiteSpec("emea", _SITE_FLEET, tariff=_TOU),
            SiteSpec("amer", _SITE_FLEET, tariff=_TOU.shifted(8 * 3600.0)),
        ),
        federation="price-greedy",
    )
)

FAILURE_STORM = register(
    ScenarioSpec(
        name="failure-storm",
        description=(
            "The paper's cluster under unplanned fire: crashes, flaky "
            "jobs, and stragglers"
        ),
        faults=FaultSpec(
            crashes_per_server=1.5,
            crash_recovery_fraction=0.04,
            job_failure_prob=0.05,
            straggler_prob=0.05,
            straggler_factor=3.0,
            max_retries=3,
            retry_backoff_s=60.0,
        ),
    )
)

DEGRADED_FEDERATION = register(
    ScenarioSpec(
        name="degraded-federation",
        description=(
            "Three-site federation losing whole sites to staggered "
            "outage windows; flaky jobs throughout"
        ),
        sites=(
            # Same grid spread as federated-correlated so dashboards can
            # compare the healthy and degraded fleets like-for-like.
            SiteSpec("hydro", _SITE_FLEET, tariff=TariffModel(carbon=120.0)),
            SiteSpec("mixed", _SITE_FLEET, tariff=TariffModel(carbon=420.0)),
            SiteSpec("coal", _SITE_FLEET, tariff=TariffModel(carbon=760.0)),
        ),
        federation="least-loaded",
        faults=FaultSpec(
            job_failure_prob=0.02,
            max_retries=3,
            retry_backoff_s=60.0,
            site_outages=(
                SiteOutageSpec(site=0, start_fraction=0.25, duration_fraction=0.12),
                SiteOutageSpec(site=1, start_fraction=0.55, duration_fraction=0.12),
            ),
        ),
    )
)

#: The fourteen stock scenarios, in catalog order.
BUILTIN_SCENARIOS = (
    PAPER_DEFAULT,
    DIURNAL_HEAVY,
    FLASH_CROWD,
    HETERO_FLEET,
    MAINTENANCE_CHURN,
    TENANT_MIX,
    GOOGLE_REPLAY,
    CARBON_AWARE_DIURNAL,
    TOU_PRICE_SHIFT,
    CORRELATED_FLEET,
    FEDERATED_CORRELATED,
    FOLLOW_THE_SUN,
    FAILURE_STORM,
    DEGRADED_FEDERATION,
)
