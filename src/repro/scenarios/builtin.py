"""The builtin scenario suite.

Six scenarios spanning the axes the ROADMAP cares about: the paper's
own setup, stronger diurnal swings, flash crowds, a mixed-efficiency
fleet, rolling maintenance churn, and a high-load two-tenant mix. Each
is a pure parameterization of :class:`~repro.scenarios.specs.ScenarioSpec`;
importing this module registers all of them.

Workload parameters deliberately stay within the generator's calibrated
envelope (durations clipped to [1 min, 2 h], Beta resource demands) so
every scenario remains a plausible Google-like segment rather than a
synthetic stress toy — except where the scenario's entire point is
stress (``flash-crowd``, ``tenant-mix``).
"""

from __future__ import annotations

from dataclasses import replace

from repro.scenarios.registry import register
from repro.scenarios.specs import (
    FleetSpec,
    FlashCrowdSpec,
    JobClassSpec,
    ScenarioSpec,
    ServerClassSpec,
    WorkloadSpec,
    rolling_maintenance,
)
from repro.sim.power import PowerModel
from repro.workload.synthetic import SyntheticTraceConfig

_BASE = SyntheticTraceConfig()

#: Mixed-generation fleet: newer machines idle lower and wake faster;
#: legacy machines pay more at every utilization.
EFFICIENT_POWER = PowerModel(idle_power=55.0, peak_power=118.0, t_on=20.0, t_off=20.0)
STANDARD_POWER = PowerModel()  # the paper's 87 W / 145 W server
LEGACY_POWER = PowerModel(idle_power=112.0, peak_power=188.0, t_on=45.0, t_off=45.0)


PAPER_DEFAULT = register(
    ScenarioSpec(
        name="paper-default",
        description="The paper's setup: one Google-like stream, 30 homogeneous servers",
    )
)

DIURNAL_HEAVY = register(
    ScenarioSpec(
        name="diurnal-heavy",
        description="Near-full day/night swing; rewards aggressive off-peak sleeping",
        workload=WorkloadSpec(
            classes=(
                JobClassSpec(
                    "diurnal",
                    1.0,
                    replace(
                        _BASE,
                        diurnal_amplitude=0.85,
                        burst_rate_multiplier=1.5,
                    ),
                ),
            ),
        ),
    )
)

FLASH_CROWD = register(
    ScenarioSpec(
        name="flash-crowd",
        description="Two uncorrelated arrival spikes (6x and 4x) over a calm baseline",
        workload=WorkloadSpec(
            classes=(
                JobClassSpec(
                    "baseline",
                    1.0,
                    replace(_BASE, diurnal_amplitude=0.3, burst_rate_multiplier=1.5),
                ),
            ),
            flash_crowds=(
                FlashCrowdSpec(start_fraction=0.2, duration_fraction=0.05, rate_multiplier=6.0),
                FlashCrowdSpec(start_fraction=0.6, duration_fraction=0.08, rate_multiplier=4.0),
            ),
        ),
    )
)

HETERO_FLEET = register(
    ScenarioSpec(
        name="hetero-fleet",
        description="Mixed fleet: 10 efficient, 10 standard, 10 legacy power profiles",
        fleet=FleetSpec(
            classes=(
                ServerClassSpec("efficient", 10, EFFICIENT_POWER),
                ServerClassSpec("standard", 10, STANDARD_POWER),
                ServerClassSpec("legacy", 10, LEGACY_POWER),
            ),
        ),
    )
)

MAINTENANCE_CHURN = register(
    ScenarioSpec(
        name="maintenance-churn",
        description="Rolling maintenance: 5 staggered waves each draining 3 servers",
        capacity_windows=rolling_maintenance(
            num_servers=30, group_size=3, n_waves=5
        ),
    )
)

TENANT_MIX = register(
    ScenarioSpec(
        name="tenant-mix",
        description="High-load mix: diurnal interactive tenant over a bursty batch tenant",
        workload=WorkloadSpec(
            classes=(
                JobClassSpec(
                    "interactive",
                    0.65,
                    replace(
                        _BASE,
                        diurnal_amplitude=0.6,
                        burst_rate_multiplier=1.5,
                        duration_median=120.0,
                        duration_sigma=0.8,
                        cpu_scale=0.3,
                        mem_scale=0.25,
                        disk_scale=0.15,
                    ),
                ),
                JobClassSpec(
                    "batch",
                    0.35,
                    replace(
                        _BASE,
                        diurnal_amplitude=0.15,
                        burst_rate_multiplier=4.0,
                        burst_on_mean=1_800.0,
                        duration_median=1_500.0,
                        duration_sigma=0.7,
                        cpu_scale=0.7,
                        mem_scale=0.6,
                        disk_scale=0.5,
                        correlation=0.8,
                    ),
                ),
            ),
            rate_scale=1.2,
        ),
    )
)

#: The six stock scenarios, in catalog order.
BUILTIN_SCENARIOS = (
    PAPER_DEFAULT,
    DIURNAL_HEAVY,
    FLASH_CROWD,
    HETERO_FLEET,
    MAINTENANCE_CHURN,
    TENANT_MIX,
)
