"""Parallel (scenario × system × seed) experiment orchestration.

One sweep cell = one scenario, one named system, one seed: the cell
builds its own traces and simulates its own cluster, so cells are fully
independent. That independence buys three things at once:

* **Parallelism** — cells fan out over a process pool and the grid runs
  at the machine's core count instead of serially; results are
  bit-identical to a serial run because every random stream inside a
  cell derives from the cell's own :class:`~numpy.random.SeedSequence`.
* **Caching** — each cell is content-keyed by its full request (the
  scenario's parameters, system, seed, protocol knobs) and stored as
  JSON under ``.repro-cache/``, so re-running a sweep recomputes only
  cells whose parameters actually changed.
* **Resumability** — results are journaled to the store *as cells
  complete* (not at the end), so a crashed or killed sweep re-run picks
  up exactly where it stopped: journaled cells come back as cache hits
  and only the missing ones recompute (``scenario sweep --resume``).

Training is factored out of the cells (train-once / evaluate-many):
DRL cells are grouped by their *training key* — the training-relevant
subset of the request, see :mod:`repro.scenarios.checkpoints` — each
group's policy is trained once in the pool (or loaded from a checkpoint
blob), and every cell in the group warm-starts from those weights. This
is the protocol of :mod:`repro.harness.table1` (one global prototype
shared across a cluster's DRL systems), now cacheable across sweeps.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.faults.plan import scenario_fault_plans
from repro.harness.report import format_csv, format_table
from repro.harness.runner import make_scenario_system, run_system
from repro.obs import render_report, write_snapshot
from repro.obs import telemetry as obs
from repro.scenarios import checkpoints as ckpt
from repro.scenarios import registry
from repro.scenarios.specs import ScenarioSpec
from repro.scenarios.store import (
    SCHEMA_VERSION,
    ResultStore,
    append_quarantine,
    content_key,
)

logger = logging.getLogger(__name__)

#: Default systems a sweep compares (Table I's comparison set).
DEFAULT_SWEEP_SYSTEMS = ("round-robin", "drl-only", "hierarchical")

#: Optional sink for live progress lines (one short string per event).
ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class SweepCell:
    """One point of the experiment grid."""

    spec: ScenarioSpec
    system: str
    seed: int


def _protocol_dict(
    n_jobs: int,
    record_every: int,
    pretrain: bool,
    online_epochs: int,
    local_epochs: int,
    profile: bool = False,
) -> dict:
    protocol = {
        "schema": SCHEMA_VERSION,
        "n_jobs": n_jobs,
        "record_every": record_every,
        "pretrain": pretrain,
        "online_epochs": online_epochs,
        "local_epochs": local_epochs,
    }
    # Present only when profiling (mirrors ``warm_start``): profiled
    # results carry a telemetry payload, so they get their own cache
    # slots while every unprofiled key stays exactly as before.
    if profile:
        protocol["profile"] = True
    return protocol


def cell_request(cell: SweepCell, protocol: dict, warm_start: bool = False) -> dict:
    """The content-keyed request payload identifying one cell's result.

    Warm-started policy-bearing cells (DRL cluster systems, and any
    system on a federated scenario with the DRL dispatcher) carry
    ``"warm_start": True`` in their protocol — they follow the
    shared-prototype training protocol, which is a different experiment
    than train-per-cell, so the two must never share cache slots.
    Policy-free cells are unaffected either way and keep identical keys
    under both modes.
    """
    payload = dict(protocol)
    if warm_start and ckpt.needs_policy(cell.spec, cell.system):
        payload["warm_start"] = True
    return {
        "scenario": cell.spec.content_dict(),
        "system": cell.system,
        "seed": cell.seed,
        "protocol": payload,
    }


def run_cell(
    scenario: str | ScenarioSpec,
    system: str,
    n_jobs: int = 600,
    seed: int = 0,
    record_every: int = 200,
    pretrain: bool = True,
    online_epochs: int = 1,
    local_epochs: int = 1,
    checkpoint: "ckpt.PolicyCheckpoint | ckpt.FederationPolicyCheckpoint | None" = None,
    profile: bool = False,
) -> dict:
    """Run one (scenario, system, seed) cell and return JSON-able metrics.

    Deterministic given its arguments: the cell's
    :class:`~numpy.random.SeedSequence` spawns independent children for
    trace generation and system construction, so no stream is shared
    with any other cell (or any other system at the same seed).

    With a ``checkpoint``, the cell's DRL controllers are warm-started
    from the stored weights instead of being trained in-cell
    (train-once / evaluate-many; see
    :func:`repro.scenarios.checkpoints.warm_scenario_system`).

    Federated scenarios (a non-empty ``sites`` tuple) dispatch to
    :func:`repro.scenarios.federation.run_federated_cell` — same
    protocol knobs, same result keys, plus per-site breakdowns.

    With ``profile=True`` the whole cell (training, trace parsing, and
    the evaluation run) executes under a captured
    :class:`~repro.obs.telemetry.Telemetry`, and the result carries its
    snapshot under ``"telemetry"``. Telemetry never touches simulation
    state, so all other result fields are bit-identical either way.
    """
    if profile:
        with obs.capture() as tel:
            result = run_cell(
                scenario,
                system,
                n_jobs=n_jobs,
                seed=seed,
                record_every=record_every,
                pretrain=pretrain,
                online_epochs=online_epochs,
                local_epochs=local_epochs,
                checkpoint=checkpoint,
            )
        result["telemetry"] = tel.snapshot()
        return result
    spec = registry.get(scenario) if isinstance(scenario, str) else scenario
    if spec.is_federated:
        from repro.scenarios.federation import run_federated_cell

        return run_federated_cell(
            spec,
            system,
            n_jobs=n_jobs,
            seed=seed,
            record_every=record_every,
            pretrain=pretrain,
            online_epochs=online_epochs,
            local_epochs=local_epochs,
            checkpoint=checkpoint,
        )
    if checkpoint is not None:
        built, eval_jobs, events = ckpt.warm_scenario_system(
            system,
            spec,
            n_jobs,
            checkpoint,
            seed=seed,
            local_epochs=local_epochs,
        )
    else:
        built, eval_jobs, events = make_scenario_system(
            system,
            spec,
            n_jobs,
            seed=seed,
            pretrain=pretrain,
            online_epochs=online_epochs,
            local_epochs=local_epochs,
        )
    plans = scenario_fault_plans(spec, n_jobs, seed)
    result = run_system(
        built,
        eval_jobs,
        record_every=record_every,
        capacity_events=events,
        tariff=spec.tariff,
        faults=plans[0] if plans else None,
    )
    return {
        "scenario": spec.name,
        "system": system,
        "seed": seed,
        "n_jobs_offered": len(eval_jobs),
        "n_jobs_completed": result.n_jobs,
        "num_servers": result.num_servers,
        "energy_kwh": result.energy_kwh,
        "acc_latency_s": result.acc_latency,
        "mean_latency_s": result.mean_latency,
        "average_power_w": result.average_power,
        "energy_per_job_wh": result.energy_per_job_wh,
        "final_time_s": result.final_time,
        "capacity_events": len(events),
        # Electricity account (zero without a scenario tariff).
        "cost_usd": result.cost_usd,
        "co2_kg": result.co2_kg,
        # Fault account (defaults without a scenario FaultSpec).
        "failed_jobs": result.failed_jobs,
        "retries": result.retries,
        "goodput": result.goodput,
        "availability": result.availability,
        "broker_fallbacks": result.broker_fallbacks,
        # Fig-8-style panels: accumulated latency / energy / cost / CO₂
        # vs completed jobs. Lists (not tuples) so computed and
        # JSON-reloaded results compare equal.
        "latency_series": [[int(n), float(v)] for n, v in result.latency_series],
        "energy_series": [[int(n), float(v)] for n, v in result.energy_series],
        "cost_series": [[int(n), float(v)] for n, v in result.cost_series],
        "co2_series": [[int(n), float(v)] for n, v in result.co2_series],
    }


def journal_cell_result(
    store: ResultStore,
    cell: SweepCell,
    result: dict,
    n_jobs: int,
    record_every: int = 200,
    pretrain: bool = True,
    online_epochs: int = 1,
    local_epochs: int = 1,
    warm_start: bool = False,
    profile: bool = False,
):
    """Journal one computed cell under the key a sweep would use.

    The single entry point for out-of-sweep journaling (``scenario
    run``): it builds the request from the same :func:`_protocol_dict`
    and :func:`cell_request` primitives the sweep keys with — protocol
    defaults mirror :func:`run_cell`'s — so a journaled one-off cell is
    always a cache hit for the sweep covering the same point. Returns
    the record's path.
    """
    protocol = _protocol_dict(
        n_jobs, record_every, pretrain, online_epochs, local_epochs, profile
    )
    request = cell_request(cell, protocol, warm_start)
    return store.put(content_key(request), request, result)


class CellTimeout(RuntimeError):
    """A sweep cell overran its ``cell_timeout`` budget."""


#: Env hook for chaos tests and CI: a comma-separated list of
#: ``scenario:system:seed`` triples that poison-fail in the worker.
CHAOS_POISON_ENV = "REPRO_CHAOS_POISON"


def _poisoned(scenario: str, system: str, seed: int) -> bool:
    poison = os.environ.get(CHAOS_POISON_ENV)
    if not poison:
        return False
    tokens = {token.strip() for token in poison.split(",") if token.strip()}
    return f"{scenario}:{system}:{seed}" in tokens


def _execute_cell(args: tuple) -> dict:
    """Process-pool entry point (must be module-level picklable).

    The optional sixth element is a per-cell wall-clock timeout in
    seconds, enforced in-worker via ``SIGALRM`` (skipped silently on
    platforms without it) so a wedged cell fails like any other cell
    error — retried, then quarantined — instead of hanging the sweep.
    """
    spec, system, seed, protocol, checkpoint, *rest = args
    timeout = rest[0] if rest else None
    name = spec.name if isinstance(spec, ScenarioSpec) else str(spec)
    if _poisoned(name, system, seed):
        raise RuntimeError(
            f"poison cell {name}:{system}:{seed} ({CHAOS_POISON_ENV})"
        )

    def execute() -> dict:
        return run_cell(
            spec,
            system,
            n_jobs=protocol["n_jobs"],
            seed=seed,
            record_every=protocol["record_every"],
            pretrain=protocol["pretrain"],
            online_epochs=protocol["online_epochs"],
            local_epochs=protocol["local_epochs"],
            checkpoint=checkpoint,
            profile=protocol.get("profile", False),
        )

    if not timeout or not hasattr(signal, "SIGALRM"):
        return execute()

    def on_alarm(signum, frame):
        raise CellTimeout(
            f"cell {name} × {system} seed {seed} exceeded {timeout}s"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(timeout))
    try:
        return execute()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _train_policy_task(args: tuple):
    """Process-pool entry point for one training group's policy."""
    spec, n_jobs, seed, pretrain, online_epochs, with_predictor = args
    return ckpt.train_policy_any(
        spec,
        n_jobs=n_jobs,
        seed=seed,
        pretrain=pretrain,
        online_epochs=online_epochs,
        with_predictor=with_predictor,
    )


@dataclass
class SweepReport:
    """Everything a sweep produced: per-cell results plus provenance.

    ``results`` holds ``None`` at quarantined cells' grid positions
    (``cached``/``keys`` stay index-aligned); ``quarantined`` carries
    their structured failure records — the same dicts journaled to
    ``quarantine.jsonl`` in the store.
    """

    results: list[dict]
    cached: list[bool]
    keys: list[str]
    quarantined: list[dict] = field(default_factory=list)

    @property
    def n_cached(self) -> int:
        return sum(self.cached)

    @property
    def n_computed(self) -> int:
        return len(self.cached) - self.n_cached

    @property
    def n_quarantined(self) -> int:
        return len(self.quarantined)

    def rows(self) -> list[dict]:
        return aggregate_rows([r for r in self.results if r is not None])

    def render_table(self) -> str:
        return render_sweep_table(self.rows())

    def render_csv(self) -> str:
        return render_sweep_csv(self.rows())

    def series_rows(self) -> list[dict]:
        return aggregate_series_rows(
            [r for r in self.results if r is not None]
        )

    def render_series_csv(self) -> str:
        return render_sweep_series_csv(self.series_rows())

    def telemetry(self) -> dict | None:
        """Sweep-level roll-up of the cells' telemetry snapshots.

        ``None`` unless at least one cell result carries a
        ``"telemetry"`` payload (i.e. the sweep ran with profiling).
        """
        merged = obs.merge_snapshots(
            r.get("telemetry") for r in self.results if r is not None
        )
        return merged if merged["n_runs"] else None

    def render_telemetry(self, top: int | None = None) -> str | None:
        merged = self.telemetry()
        return render_report(merged, top=top) if merged is not None else None


#: Documented floor on the pool size: never less than one worker, even
#: when CPU detection fails or reports zero (containers, exotic kernels).
MIN_WORKERS = 1


def detected_cpus() -> int:
    """CPUs usable by *this process*, floored at :data:`MIN_WORKERS`.

    Prefers :func:`os.process_cpu_count` (Python 3.13+, affinity-aware),
    then the scheduler affinity mask, then :func:`os.cpu_count`. This is
    the default worker count for sweeps and sharded cells; benches print
    it so "parallel speedup on N cores" lines are honest about N.
    """
    getter = getattr(os, "process_cpu_count", None)
    count = getter() if getter is not None else None
    if count is None and hasattr(os, "sched_getaffinity"):
        try:
            count = len(os.sched_getaffinity(0))
        except OSError:  # pragma: no cover - platform quirk
            count = None
    if count is None:
        count = os.cpu_count()
    return max(MIN_WORKERS, count or MIN_WORKERS)


def _pool_workers(workers: int | None, n_tasks: int) -> int:
    limit = workers if workers is not None else detected_cpus()
    return max(MIN_WORKERS, min(limit, n_tasks))


def _pool_context():
    """The multiprocessing context pools share (fork where available)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def sweep(
    scenarios: Sequence[str | ScenarioSpec] | None = None,
    systems: Sequence[str] = DEFAULT_SWEEP_SYSTEMS,
    seeds: Iterable[int] = (0,),
    n_jobs: int = 600,
    workers: int | None = None,
    store: ResultStore | None = None,
    use_cache: bool = True,
    force: bool = False,
    record_every: int = 200,
    pretrain: bool = True,
    online_epochs: int = 1,
    local_epochs: int = 1,
    warm_start: bool = True,
    checkpoints: "ckpt.CheckpointStore | None" = None,
    progress: ProgressFn | None = None,
    profile: bool = False,
    cell_retries: int = 1,
    cell_timeout: float | None = None,
    on_error: str = "quarantine",
) -> SweepReport:
    """Run the (scenario × system × seed) grid, in parallel, with caching.

    Parameters
    ----------
    scenarios:
        Names or specs; defaults to every registered scenario.
    systems:
        Named systems per :data:`repro.harness.runner.SYSTEM_NAMES`.
    seeds:
        One full grid per seed (results aggregate over seeds).
    workers:
        Process-pool size; default = CPU count. 1 forces serial
        execution in-process (useful for determinism checks).
    store:
        The result cache; defaults to ``.repro-cache/`` in the working
        directory. Completed cells are journaled to it immediately, so
        a killed sweep resumes from the last finished cell.
    use_cache:
        Disable to neither read nor write the store (training still
        happens once per group — the weights just travel in memory).
    force:
        Recompute every cell (and retrain every policy), overwriting
        cached records and checkpoint blobs.
    warm_start:
        Train-once / evaluate-many (the default): group DRL cells by
        training key, train each group's policy once, warm-start every
        cell from it. ``False`` restores per-cell training.
    checkpoints:
        The policy-blob store; defaults to ``<store.root>/checkpoints``
        when caching is enabled. Pass explicitly to persist blobs while
        recomputing results (benchmarks do this).
    progress:
        Callable receiving one live status line per event (cells done /
        cached / total); e.g. ``lambda line: print(line, file=sys.stderr)``.
        ``None`` routes the lines through this module's logger at INFO.
    profile:
        Run every computed cell under telemetry capture: results carry
        per-run snapshots, the report rolls them up
        (:meth:`SweepReport.telemetry`), and — when caching is on — the
        roll-up is written to ``<store.root>/telemetry.json``. Profiled
        cells occupy separate cache slots from unprofiled ones.
    cell_retries:
        Extra attempts per failing cell (and per failing training)
        before giving up on it, with exponential backoff between
        attempts. 0 disables retries.
    cell_timeout:
        Per-cell wall-clock budget in seconds, enforced in the worker
        via ``SIGALRM`` (no-op on platforms without it). A cell that
        overruns fails with :class:`CellTimeout` and is retried /
        quarantined like any other cell error. Trainings are exempt —
        they are legitimately long and shared by many cells. ``None``
        (the default) disables the budget. Execution knob only: it is
        *not* part of the cell's content key.
    on_error:
        ``"quarantine"`` (the default) records a failing cell in the
        store's ``quarantine.jsonl`` journal and the report's
        ``quarantined`` list, then keeps sweeping — its grid slot stays
        ``None``. ``"raise"`` restores fail-fast: the first exhausted
        cell re-raises (retries still apply first).

    Results come back in grid order (scenario-major, then system, then
    seed) regardless of which worker finished first. Quarantined cells
    leave ``None`` at their grid position; aggregation skips them.
    """
    if on_error not in ("quarantine", "raise"):
        raise ValueError(
            f"on_error must be 'quarantine' or 'raise', got {on_error!r}"
        )
    if scenarios is None:
        specs = list(registry.all_scenarios())
    else:
        specs = [
            registry.get(s) if isinstance(s, str) else s for s in scenarios
        ]
    if not specs or not systems:
        raise ValueError("sweep needs at least one scenario and one system")
    seeds = tuple(seeds)
    if not seeds:
        raise ValueError("sweep needs at least one seed")
    store = store if store is not None else ResultStore()
    ckpt_store = checkpoints
    if ckpt_store is None and use_cache and warm_start:
        ckpt_store = ckpt.CheckpointStore(store.root / "checkpoints")
    protocol = _protocol_dict(
        n_jobs, record_every, pretrain, online_epochs, local_epochs, profile
    )

    def emit(line: str) -> None:
        if progress is not None:
            progress(line)
        else:
            logger.info("%s", line.lstrip("# "))

    cells = [
        SweepCell(spec, system, seed)
        for spec in specs
        for system in systems
        for seed in seeds
    ]
    keys = [
        content_key(cell_request(cell, protocol, warm_start)) for cell in cells
    ]

    results: list[dict | None] = [None] * len(cells)
    cached = [False] * len(cells)
    quarantined: list[dict] = []
    pending: list[int] = []
    for i, key in enumerate(keys):
        record = store.get(key) if use_cache and not force else None
        if record is not None:
            # The key excludes the scenario's cosmetic name, so refresh
            # the labeling fields in case the scenario was renamed.
            results[i] = {**record["result"], "scenario": cells[i].spec.name}
            cached[i] = True
        else:
            pending.append(i)

    total = len(cells)
    emit(
        f"# sweep: {total} cells, {total - len(pending)} journaled, "
        f"{len(pending)} to compute"
    )

    if pending:
        # --- group DRL cells by training key (train-once / evaluate-many)
        group_keys: dict[int, str] = {}
        groups: dict[str, list[int]] = {}
        if warm_start:
            for i in pending:
                if not ckpt.needs_policy(cells[i].spec, cells[i].system):
                    continue
                tkey = content_key(
                    ckpt.training_request(
                        cells[i].spec,
                        n_jobs,
                        cells[i].seed,
                        pretrain=pretrain,
                        online_epochs=online_epochs,
                    )
                )
                group_keys[i] = tkey
                groups.setdefault(tkey, []).append(i)

        policies: dict = {}
        to_train: list[tuple[str, int, bool]] = []
        for tkey, members in groups.items():
            need_predictor = any(
                cells[i].system == "hierarchical" for i in members
            )
            blob = (
                ckpt.load_checkpoint(
                    ckpt_store,
                    tkey,
                    cells[members[0]].spec,
                    need_predictor=need_predictor,
                )
                if ckpt_store is not None and not force
                else None
            )
            if blob is not None:
                policies[tkey] = blob
            else:
                to_train.append((tkey, members[0], need_predictor))
        if groups:
            emit(
                f"# policies: {len(groups)} training groups for "
                f"{len(group_keys)} DRL cells ({len(policies)} checkpointed, "
                f"{len(to_train)} to train)"
            )

        train_tasks = [
            (cells[i].spec, n_jobs, cells[i].seed, pretrain, online_epochs, pred)
            for (_, i, pred) in to_train
        ]
        done = {"cells": total - len(pending), "trained": 0}

        failed_groups: set[str] = set()

        def cell_task(j: int) -> tuple:
            i = pending[j]
            return (
                cells[i].spec,
                cells[i].system,
                cells[i].seed,
                protocol,
                policies.get(group_keys.get(i)),
                cell_timeout,
            )

        def register_policy(j: int, policy) -> None:
            tkey, cell_index, _ = to_train[j]
            policies[tkey] = policy
            if ckpt_store is not None:
                ckpt.store_checkpoint(ckpt_store, tkey, policy)
            done["trained"] += 1
            cell = cells[cell_index]
            emit(
                f"# trained [{done['trained']}/{len(to_train)}] "
                f"{cell.spec.name} seed {cell.seed}"
            )

        def journal_cell(j: int, result: dict) -> None:
            i = pending[j]
            results[i] = result
            if use_cache:
                store.put(
                    keys[i], cell_request(cells[i], protocol, warm_start), result
                )
            done["cells"] += 1
            emit(
                f"# [{done['cells']}/{total}] {cells[i].spec.name} × "
                f"{cells[i].system} seed {cells[i].seed}: computed"
            )

        def quarantine_record(
            i: int, stage: str, exc: BaseException, attempts_n: int
        ) -> dict:
            record = {
                "key": keys[i],
                "scenario": cells[i].spec.name,
                "system": cells[i].system,
                "seed": cells[i].seed,
                "stage": stage,
                "error": f"{type(exc).__name__}: {exc}",
                "attempts": attempts_n,
            }
            quarantined.append(record)
            if use_cache:
                append_quarantine(store.root, record)
            return record

        def quarantine_cell(j: int, exc: BaseException, attempts_n: int) -> None:
            i = pending[j]
            quarantine_record(i, "evaluate", exc, attempts_n)
            done["cells"] += 1
            emit(
                f"# [{done['cells']}/{total}] {cells[i].spec.name} × "
                f"{cells[i].system} seed {cells[i].seed}: QUARANTINED "
                f"({type(exc).__name__}: {exc})"
            )

        def quarantine_train(j: int, exc: BaseException, attempts_n: int) -> None:
            tkey, cell_index, _ = to_train[j]
            failed_groups.add(tkey)
            quarantine_record(cell_index, "train", exc, attempts_n)
            cell = cells[cell_index]
            emit(
                f"# training {cell.spec.name} seed {cell.seed}: QUARANTINED "
                f"({type(exc).__name__}: {exc})"
            )

        n_workers = _pool_workers(workers, len(pending) + len(train_tasks))
        if n_workers == 1:
            # Serial: strict train-then-evaluate phases, in-process (so
            # tests can monkeypatch and results are trivially ordered).
            # Retry-then-quarantine matches the pool path; ``raise``
            # mode still honors retries before failing fast.
            for j, task in enumerate(train_tasks):
                for attempt in range(cell_retries + 1):
                    try:
                        register_policy(j, _train_policy_task(task))
                        break
                    except Exception as exc:
                        if attempt < cell_retries:
                            time.sleep(_RETRY_BACKOFF_S * 2**attempt)
                            continue
                        if on_error == "raise":
                            raise
                        quarantine_train(j, exc, attempt + 1)
            for j in range(len(pending)):
                tkey = group_keys.get(pending[j])
                if tkey in failed_groups:
                    quarantine_cell(
                        j,
                        RuntimeError("training for this cell's group failed"),
                        0,
                    )
                    continue
                for attempt in range(cell_retries + 1):
                    try:
                        journal_cell(j, _execute_cell(cell_task(j)))
                        break
                    except Exception as exc:
                        if attempt < cell_retries:
                            time.sleep(_RETRY_BACKOFF_S * 2**attempt)
                            continue
                        if on_error == "raise":
                            raise
                        quarantine_cell(j, exc, attempt + 1)
        else:
            _run_pipelined(
                n_workers,
                pending,
                group_keys,
                policies,
                to_train,
                train_tasks,
                cell_task,
                register_policy,
                journal_cell,
                quarantine_cell,
                quarantine_train,
                cell_retries,
                on_error,
            )
        if quarantined:
            emit(f"# quarantined: {len(quarantined)} cells")

    report = SweepReport(
        results=list(results),  # type: ignore[arg-type]
        cached=cached,
        keys=keys,
        quarantined=quarantined,
    )
    if profile and use_cache:
        merged = report.telemetry()
        if merged is not None:
            path = write_snapshot(merged, store.root / "telemetry.json")
            emit(f"# telemetry: roll-up of {merged['n_runs']} runs -> {path}")
    return report


#: Fresh pools spawned after :class:`BrokenProcessPool` before giving up.
_MAX_POOL_RESPAWNS = 3

#: Base backoff between retry attempts of a failing cell or training.
_RETRY_BACKOFF_S = 0.5


def _run_pipelined(
    n_workers: int,
    pending: list[int],
    group_keys: dict[int, str],
    policies: dict,
    to_train: list[tuple[str, int, bool]],
    train_tasks: list[tuple],
    cell_task,
    register_policy,
    journal_cell,
    quarantine_cell,
    quarantine_train,
    cell_retries: int,
    on_error: str,
) -> None:
    """Fan trainings and evaluations over one pool, without a barrier.

    Policy-free cells (baselines, blob-backed groups, cold DRL cells)
    are submitted immediately alongside the training tasks; each
    still-training group's cells are held back and dispatched the moment
    its policy lands, so the pool never idles behind the slowest
    training.

    Degradation discipline:

    * A failing task retries up to ``cell_retries`` times (exponential
      backoff), then is quarantined — or, under ``on_error="raise"``,
      re-raised after completed results are delivered. A quarantined
      training quarantines its whole waiting group.
    * :class:`BrokenProcessPool` (a worker SIGKILLed by the OOM killer,
      a segfaulting extension) condemns every in-flight future, so the
      pool is respawned and the interrupted tasks resubmitted *without*
      charging them an attempt — they are innocent victims, not
      failures. ``_MAX_POOL_RESPAWNS`` bounds the respawn loop.
    """
    waiting: dict[str, list[int]] = {}
    failure: BaseException | None = None
    attempts: dict[tuple[str, int], int] = {}
    ready: list[tuple[str, int]] = [("train", j) for j in range(len(train_tasks))]
    for j in range(len(pending)):
        tkey = group_keys.get(pending[j])
        if tkey is not None and tkey not in policies:
            waiting.setdefault(tkey, []).append(j)
        else:
            ready.append(("cell", j))
    respawns = 0
    while ready and failure is None:
        broke = False
        with ProcessPoolExecutor(
            max_workers=n_workers, mp_context=_pool_context()
        ) as pool:
            futures: dict = {}

            def submit(item: tuple[str, int]) -> None:
                nonlocal broke
                kind, j = item
                if broke:
                    ready.append(item)
                    return
                try:
                    if kind == "train":
                        future = pool.submit(_train_policy_task, train_tasks[j])
                    else:
                        future = pool.submit(_execute_cell, cell_task(j))
                except BrokenProcessPool:
                    broke = True
                    ready.append(item)
                    return
                futures[future] = item

            batch = list(ready)
            ready.clear()
            for item in batch:
                submit(item)
            while futures:
                finished, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                for future in finished:
                    kind, j = item = futures.pop(future)
                    try:
                        value = future.result()
                    except BrokenProcessPool:
                        # The break killed this task, it didn't fail it:
                        # resubmit to the respawned pool, attempt uncharged.
                        broke = True
                        if failure is None:
                            ready.append(item)
                        continue
                    except BaseException as exc:
                        if failure is not None:
                            continue
                        if not isinstance(exc, Exception):
                            failure = exc  # KeyboardInterrupt, SystemExit
                            continue
                        n = attempts[item] = attempts.get(item, 0) + 1
                        if n <= cell_retries:
                            time.sleep(_RETRY_BACKOFF_S * 2 ** (n - 1))
                            submit(item)
                        elif on_error == "raise":
                            failure = exc  # deliver the rest, then re-raise
                        elif kind == "train":
                            quarantine_train(j, exc, n)
                            for k in waiting.pop(to_train[j][0], ()):
                                quarantine_cell(
                                    k,
                                    RuntimeError(
                                        "training for this cell's group failed"
                                    ),
                                    0,
                                )
                        else:
                            quarantine_cell(j, exc, n)
                        continue
                    if kind == "train":
                        register_policy(j, value)
                        if failure is None:
                            for k in waiting.pop(to_train[j][0], ()):
                                submit(("cell", k))
                    else:
                        journal_cell(j, value)
        if broke and failure is None:
            respawns += 1
            if respawns > _MAX_POOL_RESPAWNS:
                raise RuntimeError(
                    f"process pool broke {respawns} times "
                    f"({len(ready)} tasks outstanding); giving up"
                )
            logger.warning(
                "process pool broke; respawning (%d/%d) and resubmitting "
                "%d interrupted task(s)",
                respawns,
                _MAX_POOL_RESPAWNS,
                len(ready),
            )
    if failure is not None:
        raise failure


# ----------------------------------------------------------------------
# Aggregation into harness.report renderings
# ----------------------------------------------------------------------


def aggregate_rows(results: Sequence[dict]) -> list[dict]:
    """Mean metrics per (scenario, system) across seeds, in first-seen order.

    Federated cells (results carrying a ``"sites"`` breakdown) yield one
    fleet-level row plus one row per site, labeled
    ``scenario[site-name]``, so sweep tables and CSVs show per-site
    cost/CO₂ without a schema change.
    """
    groups: dict[tuple[str, str], list[dict]] = {}
    for result in results:
        groups.setdefault((result["scenario"], result["system"]), []).append(result)
    rows = []

    def mean_row(label: str, system: str, bucket: list[dict]) -> dict:
        n = len(bucket)
        return {
            "scenario": label,
            "system": system,
            "num_servers": bucket[0]["num_servers"],
            "n_seeds": n,
            "energy_kwh": sum(r["energy_kwh"] for r in bucket) / n,
            "acc_latency_1e6_s": sum(r["acc_latency_s"] for r in bucket) / n / 1e6,
            "mean_latency_s": sum(r["mean_latency_s"] for r in bucket) / n,
            # .get(): per-site entries have no fleet average power, and
            # rows synthesized by tests (or pre-v3 records fed in
            # directly) may lack the electricity account.
            "average_power_w": sum(r.get("average_power_w", 0.0) for r in bucket) / n,
            "cost_usd": sum(r.get("cost_usd", 0.0) for r in bucket) / n,
            "co2_kg": sum(r.get("co2_kg", 0.0) for r in bucket) / n,
            # Fault account (.get(): pre-v6 records have no faults).
            "failed_jobs": sum(r.get("failed_jobs", 0) for r in bucket) / n,
            "goodput": sum(r.get("goodput", 1.0) for r in bucket) / n,
            "availability": sum(r.get("availability", 1.0) for r in bucket) / n,
        }

    for (scenario, system), bucket in groups.items():
        rows.append(mean_row(scenario, system, bucket))
        n_sites = min(len(r.get("sites") or []) for r in bucket)
        for s in range(n_sites):
            site_bucket = [r["sites"][s] for r in bucket]
            rows.append(
                mean_row(
                    f"{scenario}[{site_bucket[0].get('site', s)}]",
                    system,
                    site_bucket,
                )
            )
    return rows


def aggregate_series_rows(results: Sequence[dict]) -> list[dict]:
    """Fig-8-style series, averaged over seeds per (scenario, system).

    Each cell result carries accumulated-latency and energy series
    sampled every ``record_every`` completions; this aligns the seeds'
    series point-by-point (truncating to the shortest — churned cells
    can complete slightly fewer jobs) and averages the values, yielding
    one long-form row per (scenario, system, series, sample point).
    Federated cells additionally yield per-site series rows labeled
    ``scenario[site-name]``.
    """
    groups: dict[tuple[str, str], list[dict]] = {}
    for result in results:
        groups.setdefault((result["scenario"], result["system"]), []).append(result)
    rows: list[dict] = []

    def emit(label: str, system: str, bucket: list[dict]) -> None:
        for series in ("latency", "energy", "cost", "co2"):
            per_seed = [r.get(f"{series}_series") or [] for r in bucket]
            n_points = min((len(s) for s in per_seed), default=0)
            for p in range(n_points):
                rows.append(
                    {
                        "scenario": label,
                        "system": system,
                        "series": series,
                        "n_jobs": int(per_seed[0][p][0]),
                        "value": sum(s[p][1] for s in per_seed) / len(per_seed),
                        "n_seeds": len(per_seed),
                    }
                )

    for (scenario, system), bucket in groups.items():
        emit(scenario, system, bucket)
        n_sites = min(len(r.get("sites") or []) for r in bucket)
        for s in range(n_sites):
            site_bucket = [r["sites"][s] for r in bucket]
            emit(
                f"{scenario}[{site_bucket[0].get('site', s)}]", system, site_bucket
            )
    return rows


_SWEEP_HEADERS = [
    "Scenario",
    "System",
    "M",
    "Seeds",
    "Energy (kWh)",
    "Latency (1e6 s)",
    "Mean lat (s)",
    "Power (W)",
    "Cost ($)",
    "CO2 (kg)",
    "Failed",
    "Goodput",
]


def _sweep_cells(row: dict) -> list:
    return [
        row["scenario"],
        row["system"],
        row["num_servers"],
        row["n_seeds"],
        f"{row['energy_kwh']:.2f}",
        f"{row['acc_latency_1e6_s']:.3f}",
        f"{row['mean_latency_s']:.1f}",
        f"{row['average_power_w']:.2f}",
        f"{row['cost_usd']:.2f}",
        f"{row['co2_kg']:.2f}",
        f"{row.get('failed_jobs', 0.0):.1f}",
        f"{row.get('goodput', 1.0):.3f}",
    ]


def render_sweep_table(rows: Sequence[dict]) -> str:
    """Paper-style text table of aggregated sweep rows."""
    return format_table(_SWEEP_HEADERS, [_sweep_cells(row) for row in rows])


def render_sweep_csv(rows: Sequence[dict]) -> str:
    """CSV rendering of aggregated sweep rows."""
    headers = [
        "scenario",
        "system",
        "num_servers",
        "n_seeds",
        "energy_kwh",
        "acc_latency_1e6_s",
        "mean_latency_s",
        "average_power_w",
        "cost_usd",
        "co2_kg",
        "failed_jobs",
        "goodput",
        "availability",
    ]
    return format_csv(
        headers, [[row.get(h, "") for h in headers] for row in rows]
    )


def render_sweep_series_csv(rows: Sequence[dict]) -> str:
    """Long-form CSV of Fig-8-style series rows (one sample per line)."""
    headers = ["scenario", "system", "series", "n_jobs", "value", "n_seeds"]
    return format_csv(
        headers, [[row[h] for h in headers] for row in rows]
    )
