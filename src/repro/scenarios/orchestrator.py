"""Parallel (scenario × system × seed) experiment orchestration.

One sweep cell = one scenario, one named system, one seed: the cell
builds its own traces, trains its own controllers, and simulates its
own cluster, so cells are fully independent. That independence buys two
things at once:

* **Parallelism** — cells fan out over a process pool and the grid runs
  at the machine's core count instead of serially; results are
  bit-identical to a serial run because every random stream inside a
  cell derives from the cell's own :class:`~numpy.random.SeedSequence`.
* **Caching** — each cell is content-keyed by its full request (the
  scenario's parameters, system, seed, protocol knobs) and stored as
  JSON under ``.repro-cache/``, so re-running a sweep recomputes only
  cells whose parameters actually changed.

Note the protocol difference from :mod:`repro.harness.table1`: Table I
shares one trained global prototype across the DRL systems of a cluster
to isolate local-tier differences; sweep cells deliberately do *not*
share state, trading a little extra training work for cacheable,
order-independent cells.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.harness.report import format_csv, format_table
from repro.harness.runner import make_scenario_system, run_system
from repro.scenarios import registry
from repro.scenarios.specs import ScenarioSpec
from repro.scenarios.store import SCHEMA_VERSION, ResultStore, content_key

#: Default systems a sweep compares (Table I's comparison set).
DEFAULT_SWEEP_SYSTEMS = ("round-robin", "drl-only", "hierarchical")


@dataclass(frozen=True)
class SweepCell:
    """One point of the experiment grid."""

    spec: ScenarioSpec
    system: str
    seed: int


def _protocol_dict(
    n_jobs: int,
    record_every: int,
    pretrain: bool,
    online_epochs: int,
    local_epochs: int,
) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "n_jobs": n_jobs,
        "record_every": record_every,
        "pretrain": pretrain,
        "online_epochs": online_epochs,
        "local_epochs": local_epochs,
    }


def cell_request(cell: SweepCell, protocol: dict) -> dict:
    """The content-keyed request payload identifying one cell's result."""
    return {
        "scenario": cell.spec.content_dict(),
        "system": cell.system,
        "seed": cell.seed,
        "protocol": protocol,
    }


def run_cell(
    scenario: str | ScenarioSpec,
    system: str,
    n_jobs: int = 600,
    seed: int = 0,
    record_every: int = 200,
    pretrain: bool = True,
    online_epochs: int = 1,
    local_epochs: int = 1,
) -> dict:
    """Run one (scenario, system, seed) cell and return JSON-able metrics.

    Deterministic given its arguments: the cell's
    :class:`~numpy.random.SeedSequence` spawns independent children for
    trace generation and system construction, so no stream is shared
    with any other cell (or any other system at the same seed).
    """
    spec = registry.get(scenario) if isinstance(scenario, str) else scenario
    built, eval_jobs, events = make_scenario_system(
        system,
        spec,
        n_jobs,
        seed=seed,
        pretrain=pretrain,
        online_epochs=online_epochs,
        local_epochs=local_epochs,
    )
    result = run_system(
        built, eval_jobs, record_every=record_every, capacity_events=events
    )
    return {
        "scenario": spec.name,
        "system": system,
        "seed": seed,
        "n_jobs_offered": len(eval_jobs),
        "n_jobs_completed": result.n_jobs,
        "num_servers": result.num_servers,
        "energy_kwh": result.energy_kwh,
        "acc_latency_s": result.acc_latency,
        "mean_latency_s": result.mean_latency,
        "average_power_w": result.average_power,
        "energy_per_job_wh": result.energy_per_job_wh,
        "final_time_s": result.final_time,
        "capacity_events": len(events),
    }


def _execute_cell(args: tuple) -> dict:
    """Process-pool entry point (must be module-level picklable)."""
    spec, system, seed, protocol = args
    return run_cell(
        spec,
        system,
        n_jobs=protocol["n_jobs"],
        seed=seed,
        record_every=protocol["record_every"],
        pretrain=protocol["pretrain"],
        online_epochs=protocol["online_epochs"],
        local_epochs=protocol["local_epochs"],
    )


@dataclass
class SweepReport:
    """Everything a sweep produced: per-cell results plus provenance."""

    results: list[dict]
    cached: list[bool]
    keys: list[str]

    @property
    def n_cached(self) -> int:
        return sum(self.cached)

    @property
    def n_computed(self) -> int:
        return len(self.cached) - self.n_cached

    def rows(self) -> list[dict]:
        return aggregate_rows(self.results)

    def render_table(self) -> str:
        return render_sweep_table(self.rows())

    def render_csv(self) -> str:
        return render_sweep_csv(self.rows())


#: Documented floor on the pool size: never less than one worker, even
#: when CPU detection fails or reports zero (containers, exotic kernels).
MIN_WORKERS = 1


def detected_cpus() -> int:
    """CPUs usable by *this process*, floored at :data:`MIN_WORKERS`.

    Prefers :func:`os.process_cpu_count` (Python 3.13+, affinity-aware),
    then the scheduler affinity mask, then :func:`os.cpu_count`. This is
    the default worker count for sweeps and sharded cells; benches print
    it so "parallel speedup on N cores" lines are honest about N.
    """
    getter = getattr(os, "process_cpu_count", None)
    count = getter() if getter is not None else None
    if count is None and hasattr(os, "sched_getaffinity"):
        try:
            count = len(os.sched_getaffinity(0))
        except OSError:  # pragma: no cover - platform quirk
            count = None
    if count is None:
        count = os.cpu_count()
    return max(MIN_WORKERS, count or MIN_WORKERS)


def _pool_workers(workers: int | None, n_tasks: int) -> int:
    limit = workers if workers is not None else detected_cpus()
    return max(MIN_WORKERS, min(limit, n_tasks))


def _pool_context():
    """The multiprocessing context pools share (fork where available)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def sweep(
    scenarios: Sequence[str | ScenarioSpec] | None = None,
    systems: Sequence[str] = DEFAULT_SWEEP_SYSTEMS,
    seeds: Iterable[int] = (0,),
    n_jobs: int = 600,
    workers: int | None = None,
    store: ResultStore | None = None,
    use_cache: bool = True,
    force: bool = False,
    record_every: int = 200,
    pretrain: bool = True,
    online_epochs: int = 1,
    local_epochs: int = 1,
) -> SweepReport:
    """Run the (scenario × system × seed) grid, in parallel, with caching.

    Parameters
    ----------
    scenarios:
        Names or specs; defaults to every registered scenario.
    systems:
        Named systems per :data:`repro.harness.runner.SYSTEM_NAMES`.
    seeds:
        One full grid per seed (results aggregate over seeds).
    workers:
        Process-pool size; default = CPU count. 1 forces serial
        execution in-process (useful for determinism checks).
    store:
        The result cache; defaults to ``.repro-cache/`` in the working
        directory.
    use_cache:
        Disable to neither read nor write the store.
    force:
        Recompute every cell, overwriting cached records.

    Results come back in grid order (scenario-major, then system, then
    seed) regardless of which worker finished first.
    """
    if scenarios is None:
        specs = list(registry.all_scenarios())
    else:
        specs = [
            registry.get(s) if isinstance(s, str) else s for s in scenarios
        ]
    if not specs or not systems:
        raise ValueError("sweep needs at least one scenario and one system")
    seeds = tuple(seeds)
    if not seeds:
        raise ValueError("sweep needs at least one seed")
    store = store if store is not None else ResultStore()
    protocol = _protocol_dict(n_jobs, record_every, pretrain, online_epochs, local_epochs)

    cells = [
        SweepCell(spec, system, seed)
        for spec in specs
        for system in systems
        for seed in seeds
    ]
    keys = [content_key(cell_request(cell, protocol)) for cell in cells]

    results: list[dict | None] = [None] * len(cells)
    cached = [False] * len(cells)
    pending: list[int] = []
    for i, key in enumerate(keys):
        record = store.get(key) if use_cache and not force else None
        if record is not None:
            # The key excludes the scenario's cosmetic name, so refresh
            # the labeling fields in case the scenario was renamed.
            results[i] = {**record["result"], "scenario": cells[i].spec.name}
            cached[i] = True
        else:
            pending.append(i)

    if pending:
        tasks = [
            (cells[i].spec, cells[i].system, cells[i].seed, protocol)
            for i in pending
        ]
        n_workers = _pool_workers(workers, len(tasks))
        if n_workers == 1:
            computed = [_execute_cell(task) for task in tasks]
        else:
            with ProcessPoolExecutor(
                max_workers=n_workers, mp_context=_pool_context()
            ) as pool:
                computed = list(pool.map(_execute_cell, tasks))
        for i, result in zip(pending, computed):
            results[i] = result
            if use_cache:
                store.put(keys[i], cell_request(cells[i], protocol), result)

    return SweepReport(results=list(results), cached=cached, keys=keys)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Aggregation into harness.report renderings
# ----------------------------------------------------------------------


def aggregate_rows(results: Sequence[dict]) -> list[dict]:
    """Mean metrics per (scenario, system) across seeds, in first-seen order."""
    groups: dict[tuple[str, str], list[dict]] = {}
    for result in results:
        groups.setdefault((result["scenario"], result["system"]), []).append(result)
    rows = []
    for (scenario, system), bucket in groups.items():
        n = len(bucket)
        rows.append(
            {
                "scenario": scenario,
                "system": system,
                "num_servers": bucket[0]["num_servers"],
                "n_seeds": n,
                "energy_kwh": sum(r["energy_kwh"] for r in bucket) / n,
                "acc_latency_1e6_s": sum(r["acc_latency_s"] for r in bucket) / n / 1e6,
                "mean_latency_s": sum(r["mean_latency_s"] for r in bucket) / n,
                "average_power_w": sum(r["average_power_w"] for r in bucket) / n,
            }
        )
    return rows


_SWEEP_HEADERS = [
    "Scenario",
    "System",
    "M",
    "Seeds",
    "Energy (kWh)",
    "Latency (1e6 s)",
    "Mean lat (s)",
    "Power (W)",
]


def _sweep_cells(row: dict) -> list:
    return [
        row["scenario"],
        row["system"],
        row["num_servers"],
        row["n_seeds"],
        f"{row['energy_kwh']:.2f}",
        f"{row['acc_latency_1e6_s']:.3f}",
        f"{row['mean_latency_s']:.1f}",
        f"{row['average_power_w']:.2f}",
    ]


def render_sweep_table(rows: Sequence[dict]) -> str:
    """Paper-style text table of aggregated sweep rows."""
    return format_table(_SWEEP_HEADERS, [_sweep_cells(row) for row in rows])


def render_sweep_csv(rows: Sequence[dict]) -> str:
    """CSV rendering of aggregated sweep rows."""
    headers = [
        "scenario",
        "system",
        "num_servers",
        "n_seeds",
        "energy_kwh",
        "acc_latency_1e6_s",
        "mean_latency_s",
        "average_power_w",
    ]
    return format_csv(headers, [[row[h] for h in headers] for row in rows])
