"""Named scenario registry.

Scenarios are addressed by name everywhere — CLI, orchestrator, tests —
so one registration point keeps the catalog coherent. The builtin suite
(:mod:`repro.scenarios.builtin`) is loaded lazily on first lookup, which
keeps ``import repro.scenarios.registry`` cheap and cycle-free; user
code may :func:`register` additional specs at any time.
"""

from __future__ import annotations

from repro.harness.report import format_table
from repro.scenarios.specs import ScenarioSpec

_REGISTRY: dict[str, ScenarioSpec] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        # Importing the module registers its scenarios as a side effect.
        # Flag only after success so a failed import reproduces (instead
        # of silently leaving a partial catalog for the process).
        import repro.scenarios.builtin  # noqa: F401

        _BUILTINS_LOADED = True


def register(spec: ScenarioSpec, overwrite: bool = False) -> ScenarioSpec:
    """Add a scenario to the registry; returns it for chaining.

    Raises
    ------
    ValueError
        If the name is taken and ``overwrite`` is False.
    """
    if not overwrite and spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> ScenarioSpec:
    """Look up a scenario by name.

    Raises
    ------
    KeyError
        With the list of known names, if unknown.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(names())}"
        ) from None


def names() -> tuple[str, ...]:
    """Registered scenario names, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def all_scenarios() -> tuple[ScenarioSpec, ...]:
    """Every registered spec, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY.values())


def scenario_catalog() -> str:
    """Human-readable catalog table (the ``scenario list`` CLI output)."""
    rows = []
    for spec in all_scenarios():
        fleet = spec.fleet
        if spec.is_federated:
            fleet_desc = f"{spec.num_servers_total} ({len(spec.sites)} sites)"
        elif fleet.is_heterogeneous:
            fleet_desc = f"{fleet.num_servers} ({len(fleet.classes)} classes)"
        else:
            fleet_desc = f"{fleet.num_servers}"
        rows.append(
            [
                spec.name,
                fleet_desc,
                len(spec.workload.classes),
                len(spec.workload.flash_crowds),
                len(spec.capacity_windows),
                spec.description,
            ]
        )
    return format_table(
        ["Scenario", "Servers", "Tenants", "Crowds", "Churn", "Description"],
        rows,
    )
