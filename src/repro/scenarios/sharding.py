"""Trace sharding: parallelize a *single* scenario cell.

The sweep orchestrator parallelizes across cells, but one large cell —
say a 100 k-job trace on one scenario × system — was still a serial
simulation. Sharding splits the cell's evaluation trace into contiguous
arrival segments, hands each segment to a worker carrying a copy of the
*same trained ("warm") system*, and recombines the per-shard metrics:

1. the system is built and trained once, in the parent (the expensive
   controllers — DRL global tier, local DPM learners — are warm);
2. the evaluation trace is cut at job-arrival boundaries into
   ``shards`` segments, each re-based to t = 0 (the warm handoff: every
   worker starts from the trained controller snapshot, not from an
   untrained one);
3. scheduled capacity-churn events are routed to the shard whose time
   window contains them, shifted into shard-local time;
4. shard metrics recombine additively (energy, accumulated latency,
   completions, span), exactly like the paper's independent weekly
   segments.

**Documented tolerance:** sharding is an approximation, not a bit-exact
decomposition. Each shard restarts servers in their initial power state,
resets in-flight queues, freezes online learning at the handoff snapshot
(shards do not see each other's updates), and — the dominant effect —
drains its own tail: jobs arriving near a shard's end still run to
completion, so every shard but conceptually the last adds up to one
drain window (bounded by the workload's duration cap, 2 h for the
paper's jobs) of extra simulated span and idle energy. Concretely:

* job counts and per-job latency aggregates are *exact* (every job
  completes exactly once, with its own queueing);
* intensive metrics (``average_power_w``, ``mean_latency_s``) recombine
  within :data:`SHARD_TOLERANCE` even for small shards;
* extensive span metrics (``energy_kwh``, ``energy_per_job_wh``,
  ``final_time_s``) carry an
  upward bias of at most ``(shards - 1) * T_drain`` seconds of idle
  burn. Size shards so each arrival window is several times the
  duration cap — ≥ ~2000 jobs/shard at the reference intensity — and
  they too land within :data:`SHARD_TOLERANCE` of the unsharded run.
"""

from __future__ import annotations

import pickle
from bisect import bisect_right
from concurrent.futures import ProcessPoolExecutor
from copy import deepcopy

from repro.sim.churn import CapacityEvent
from repro.sim.job import Job
from repro.workload.segments import rebase

#: Relative tolerance of combined shard metrics vs the unsharded run.
SHARD_TOLERANCE = 0.15


def shard_trace(
    jobs: list[Job], shards: int
) -> tuple[list[list[Job]], list[float]]:
    """Cut a trace into ``shards`` contiguous arrival segments.

    Returns ``(segments, starts)``: each segment re-based to t = 0 with
    jobs renumbered from 0, plus the original start time of each segment
    (for routing absolute-time churn events). Segment sizes differ by at
    most one job; ``shards`` is clamped to the trace length.

    Raises
    ------
    ValueError
        If ``shards`` is not positive or ``jobs`` is empty.
    """
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    if not jobs:
        raise ValueError("cannot shard an empty trace")
    ordered = sorted(jobs, key=lambda j: j.arrival_time)
    shards = min(shards, len(ordered))
    base, extra = divmod(len(ordered), shards)
    segments: list[list[Job]] = []
    starts: list[float] = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        chunk = ordered[lo:hi]
        starts.append(chunk[0].arrival_time)
        segments.append(rebase(chunk))
        lo = hi
    return segments, starts


def shard_capacity_events(
    events: tuple[CapacityEvent, ...], starts: list[float]
) -> list[tuple[CapacityEvent, ...]]:
    """Route absolute-time churn events to their owning shard.

    An event belongs to the shard whose window ``[start_i, start_{i+1})``
    contains its start time, and is shifted into shard-local time. An
    event whose drain window crosses a shard boundary stays with the
    shard it starts in (its restore fires during that shard's drain-out).
    """
    routed: list[list[CapacityEvent]] = [[] for _ in starts]
    for event in events:
        i = max(bisect_right(starts, event.time) - 1, 0)
        shifted = CapacityEvent(
            time=max(event.time - starts[i], 0.0),
            server_id=event.server_id,
            duration=event.duration,
            fraction=event.fraction,
        )
        routed[i].append(shifted)
    return [tuple(evts) for evts in routed]


def _run_shard(args: tuple) -> dict:
    """Process-pool entry point: evaluate one warm system copy on a shard."""
    from repro.harness.runner import run_system

    system, shard_jobs, shard_events, record_every, tariff = args
    result = run_system(
        system,
        shard_jobs,
        record_every=record_every,
        capacity_events=shard_events,
        tariff=tariff,
    )
    return {
        "n_jobs_offered": len(shard_jobs),
        "n_jobs_completed": result.n_jobs,
        "energy_kwh": result.energy_kwh,
        "acc_latency_s": result.acc_latency,
        "final_time_s": result.final_time,
        "capacity_events": len(shard_events),
        "cost_usd": result.cost_usd,
        "co2_kg": result.co2_kg,
    }


def combine_shard_metrics(shard_results: list[dict]) -> dict:
    """Recombine additive per-shard metrics into one cell-level record.

    Energy, accumulated latency, completions, offered jobs, and the
    simulated span add; mean latency and average power are recomputed
    from the combined totals (3.6e6 J per kWh).
    """
    if not shard_results:
        raise ValueError("no shard results to combine")
    energy_kwh = sum(r["energy_kwh"] for r in shard_results)
    acc_latency = sum(r["acc_latency_s"] for r in shard_results)
    completed = sum(r["n_jobs_completed"] for r in shard_results)
    span = sum(r["final_time_s"] for r in shard_results)
    return {
        "n_jobs_offered": sum(r["n_jobs_offered"] for r in shard_results),
        "n_jobs_completed": completed,
        "energy_kwh": energy_kwh,
        "acc_latency_s": acc_latency,
        "mean_latency_s": acc_latency / completed if completed else 0.0,
        "average_power_w": energy_kwh * 3.6e6 / span if span > 0 else 0.0,
        "energy_per_job_wh": energy_kwh * 1000.0 / completed if completed else 0.0,
        "final_time_s": span,
        "capacity_events": sum(r["capacity_events"] for r in shard_results),
        "cost_usd": sum(r.get("cost_usd", 0.0) for r in shard_results),
        "co2_kg": sum(r.get("co2_kg", 0.0) for r in shard_results),
        "shards": len(shard_results),
    }


def run_cell_sharded(
    scenario,
    system: str,
    n_jobs: int = 600,
    seed: int = 0,
    shards: int = 2,
    workers: int | None = None,
    record_every: int = 200,
    pretrain: bool = True,
    online_epochs: int = 1,
    local_epochs: int = 1,
    checkpoint=None,
) -> dict:
    """Run one (scenario, system, seed) cell with its trace sharded.

    Builds and trains the system once (exactly like
    :func:`~repro.scenarios.orchestrator.run_cell`), then fans the
    evaluation shards over a process pool — each worker evaluating an
    identical warm copy of the trained system — and recombines metrics
    per :func:`combine_shard_metrics`, to within :data:`SHARD_TOLERANCE`
    of the unsharded cell.

    ``workers`` defaults to the detected CPU count (see
    :func:`~repro.scenarios.orchestrator.detected_cpus`); systems that do
    not pickle fall back to serial shard execution, which still yields
    the sharded (recombined) semantics.

    ``checkpoint`` (a :class:`~repro.scenarios.checkpoints.PolicyCheckpoint`)
    composes warm starting with sharding: the in-parent training step is
    replaced by restoring the stored policy weights, so a big DRL cell
    pays neither training nor serial evaluation.
    """
    from repro.harness.runner import make_scenario_system
    from repro.scenarios import registry
    from repro.scenarios.checkpoints import warm_scenario_system
    from repro.scenarios.orchestrator import _pool_workers, _pool_context

    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    spec = registry.get(scenario) if isinstance(scenario, str) else scenario
    if spec.is_federated:
        raise ValueError(
            f"scenario {spec.name!r} is federated; trace sharding does not "
            "compose with multi-site runs yet"
        )
    if checkpoint is not None:
        built, eval_jobs, events = warm_scenario_system(
            system,
            spec,
            n_jobs,
            checkpoint,
            seed=seed,
            local_epochs=local_epochs,
        )
    else:
        built, eval_jobs, events = make_scenario_system(
            system,
            spec,
            n_jobs,
            seed=seed,
            pretrain=pretrain,
            online_epochs=online_epochs,
            local_epochs=local_epochs,
        )
    built.freeze()  # the warm handoff ships one fixed controller snapshot
    segments, starts = shard_trace(eval_jobs, shards)
    shard_events = shard_capacity_events(events, starts)
    # Shards run in shard-local time; shift the tariff so each still
    # reads prices/carbon at its absolute experiment time.
    tasks = [
        (
            built,
            seg,
            evts,
            record_every,
            spec.tariff.shifted(start) if spec.tariff is not None else None,
        )
        for seg, evts, start in zip(segments, shard_events, starts)
    ]

    n_workers = _pool_workers(workers, len(tasks))
    parallel_ok = n_workers > 1
    if parallel_ok:
        try:
            pickle.dumps(tasks[0])
        except Exception:
            parallel_ok = False
    if parallel_ok:
        with ProcessPoolExecutor(
            max_workers=n_workers, mp_context=_pool_context()
        ) as pool:
            shard_results = list(pool.map(_run_shard, tasks))
    else:
        # Serial fallback: deepcopy preserves the every-shard-starts-warm
        # semantics a worker pool gets from pickling.
        n_workers = 1
        shard_results = [
            _run_shard((deepcopy(task[0]), *task[1:])) for task in tasks
        ]

    combined = combine_shard_metrics(shard_results)
    combined.update(
        {
            "scenario": spec.name,
            "system": system,
            "seed": seed,
            "num_servers": spec.fleet.num_servers,
            "workers_used": n_workers,
        }
    )
    return combined
