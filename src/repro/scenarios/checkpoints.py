"""Policy checkpoints: train a sweep cell's controllers once, reuse everywhere.

Table-1 style grids vary mostly *evaluation* knobs across their DRL
cells, yet the orchestrator used to retrain the global prototype (and the
LSTM predictor) inside every cell. This module factors the training out:

* :func:`training_request` — the *training-relevant* subset of a cell
  request: scenario content, seed, trace length, and the protocol knobs
  that shape training (``pretrain``, ``online_epochs``). Evaluation-only
  parameters (``record_every``, ``local_epochs``, the system name) are
  deliberately excluded, so cells that differ only in how they are
  *evaluated* share one training key.
* :func:`train_policy` — reproduces exactly the training a cell would
  have done on its own (same :class:`~numpy.random.SeedSequence`
  derivation as :func:`~repro.harness.runner.make_scenario_system`) and
  captures the result as a :class:`PolicyCheckpoint`.
* :class:`CheckpointStore` — content-keyed ``.npz`` blobs under
  ``.repro-cache/checkpoints/``, atomic like the result store, with a
  schema gate so stale blobs are ignored rather than half-loaded.
* :func:`warm_scenario_system` — rebuilds a ready-to-evaluate system
  from a checkpoint: the DRL broker is cloned from the stored Q-network
  weights, the hierarchical predictor from the stored LSTM weights.

The orchestrator composes these into train-once / evaluate-many: one
training per group of cells sharing a key, fanned over the worker pool,
then every evaluation cell warm-starts from the group's blob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.config import ExperimentConfig
from repro.core.global_tier import DRLGlobalBroker
from repro.core.hierarchical import build_drl_only
from repro.core.predictor import WorkloadPredictor
from repro.harness.runner import (
    build_pretrained_predictor,
    derive_cell_seeds,
    make_system,
    needs_global_tier,
    train_global_prototype,
)
from repro.nn.serialize import load_states, save_states
from repro.scenarios.specs import ScenarioSpec
from repro.scenarios.store import ContentAddressedStore, content_key

#: Bump when the blob layout or warm-start semantics change; a blob
#: carrying any other version is ignored (treated as a miss) on read.
CHECKPOINT_SCHEMA_VERSION = 1

DEFAULT_CHECKPOINT_ROOT = Path(".repro-cache") / "checkpoints"


def training_request(
    spec: ScenarioSpec,
    n_jobs: int,
    seed: int,
    pretrain: bool = True,
    online_epochs: int = 1,
) -> dict:
    """The content-keyed payload identifying one policy training.

    Contains everything that shapes the trained weights — and nothing
    else, so evaluation-only knobs never invalidate a checkpoint. Note
    ``n_jobs`` *is* training-relevant: training segments are sized from
    the evaluation trace length. The scenario's tariff is stripped:
    electricity accounting is an evaluation-side lens over the same
    joules (training rewards never see prices), so two scenarios
    differing only in tariff share one policy — while a trace-replay
    workload *does* change the key (different training segments) and can
    never collide with a synthetic scenario's checkpoints.
    """
    scenario = spec.content_dict()
    scenario.pop("tariff", None)
    return {
        "scenario": scenario,
        "seed": seed,
        "n_jobs": n_jobs,
        "pretrain": pretrain,
        "online_epochs": online_epochs,
    }


@dataclass
class PolicyCheckpoint:
    """Serialized controller weights for one training key.

    Parameters
    ----------
    qnet_state:
        :meth:`~repro.nn.layers.Module.state_dict` of the trained
        :class:`~repro.core.qnetwork.HierarchicalQNetwork`.
    epsilon:
        The prototype broker's annealed exploration rate at capture time
        (clones resume exploration from here).
    predictor_state:
        State dict of the LSTM predictor network, when predictor
        training was attempted; None otherwise.
    predictor_fitted:
        Whether the predictor was actually fitted (a too-short trace
        legitimately leaves it unfitted — that is recorded, not retried).
    predictor_attempted:
        Whether predictor training was attempted at all. A blob trained
        for a predictor-free group can be upgraded later by retraining
        with the predictor included.
    meta:
        Free-form metadata (architecture fingerprint, training request).
    """

    qnet_state: dict[str, np.ndarray]
    epsilon: float
    predictor_state: dict[str, np.ndarray] | None = None
    predictor_fitted: bool = False
    predictor_attempted: bool = False
    meta: dict = field(default_factory=dict)


def train_policy(
    spec: ScenarioSpec,
    n_jobs: int = 600,
    seed: int = 0,
    pretrain: bool = True,
    online_epochs: int = 1,
    with_predictor: bool = True,
) -> PolicyCheckpoint:
    """Train the shared controllers for one training key.

    Bit-for-bit the training a cell performs when it trains alone: the
    shared seed derivation (:func:`~repro.harness.runner.derive_cell_seeds`),
    the same traces, the same
    :func:`~repro.harness.runner.train_global_prototype` call, and (when
    ``with_predictor``) the exact predictor pre-training of
    :func:`~repro.harness.runner.build_pretrained_predictor`.
    """
    trace_ss, system_seed = derive_cell_seeds(seed)
    config = spec.experiment_config(seed=seed)
    _, train_traces = spec.build_traces(n_jobs, trace_ss)
    broker = train_global_prototype(
        config,
        train_traces,
        pretrain=pretrain,
        online_epochs=online_epochs,
        seed=system_seed,
    )
    predictor_state = None
    predictor_fitted = False
    if with_predictor:
        predictor = build_pretrained_predictor(config, train_traces, system_seed)
        predictor_state = predictor.network.state_dict()
        predictor_fitted = predictor.fitted
    return PolicyCheckpoint(
        qnet_state=broker.qnet.state_dict(),
        epsilon=broker.epsilon,
        predictor_state=predictor_state,
        predictor_fitted=predictor_fitted,
        predictor_attempted=with_predictor,
        meta={
            "arch": broker.qnet.describe(),
            "request": training_request(spec, n_jobs, seed, pretrain, online_epochs),
        },
    )


def restore_prototype(
    checkpoint: PolicyCheckpoint,
    config: ExperimentConfig,
    seed: int,
) -> DRLGlobalBroker:
    """A prototype broker carrying the checkpoint's trained Q-network.

    Raises
    ------
    ValueError
        If the checkpoint's weights do not fit the configuration's
        encoder geometry (the blob was trained for a different fleet).
    """
    broker = build_drl_only(config, seed=seed).broker
    assert isinstance(broker, DRLGlobalBroker)
    arch = checkpoint.meta.get("arch")
    if arch is not None and arch != broker.qnet.describe():
        raise ValueError(
            "checkpoint geometry does not match the scenario: "
            f"blob carries {arch}, scenario needs {broker.qnet.describe()}"
        )
    broker.qnet.load_state_dict(checkpoint.qnet_state)
    broker.epsilon = checkpoint.epsilon
    return broker


def restore_predictor(
    checkpoint: PolicyCheckpoint,
    config: ExperimentConfig,
    seed: int,
) -> WorkloadPredictor:
    """The warm LSTM predictor a hierarchical cell should start from.

    Raises
    ------
    ValueError
        If the checkpoint was trained without attempting the predictor.
    """
    if not checkpoint.predictor_attempted:
        raise ValueError(
            "checkpoint was trained without a predictor; retrain with "
            "with_predictor=True to serve hierarchical cells"
        )
    predictor = WorkloadPredictor(
        config.local_tier.predictor, rng=np.random.default_rng(seed)
    )
    if checkpoint.predictor_state is not None:
        predictor.network.load_state_dict(checkpoint.predictor_state)
        predictor.fitted = checkpoint.predictor_fitted
    return predictor


def warm_scenario_system(
    name: str,
    spec: ScenarioSpec,
    n_jobs: int,
    checkpoint: PolicyCheckpoint,
    seed: int = 0,
    local_epochs: int = 1,
    **make_kwargs,
):
    """Build a named DRL system warm-started from a checkpoint.

    The counterpart of :func:`~repro.harness.runner.make_scenario_system`
    for checkpoint-backed cells: traces and seeds are derived
    identically, but the global tier is cloned from the stored weights
    (and the hierarchical predictor restored) instead of being trained.
    Returns ``(system, eval_jobs, capacity_events)``.

    Raises
    ------
    ValueError
        If ``name`` does not use the DRL global tier.
    """
    if not needs_global_tier(name):
        raise ValueError(f"system {name!r} has no policy to warm-start")
    trace_ss, system_seed = derive_cell_seeds(seed)
    config = spec.experiment_config(seed=seed)
    eval_jobs, train_traces = spec.build_traces(n_jobs, trace_ss)
    prototype = restore_prototype(checkpoint, config, system_seed)
    if name == "hierarchical":
        make_kwargs.setdefault(
            "predictor", restore_predictor(checkpoint, config, system_seed)
        )
    system = make_system(
        name,
        config,
        train_traces,
        global_prototype=prototype,
        local_epochs=local_epochs,
        seed=system_seed,
        **make_kwargs,
    )
    return system, eval_jobs, spec.capacity_events(spec.horizon_for(n_jobs))


class CheckpointStore(ContentAddressedStore):
    """File-backed cache mapping training keys to weight blobs.

    Layout and crash-safety mirror the result store (same
    :class:`~repro.scenarios.store.ContentAddressedStore` base): blobs
    live at ``<root>/<key[:2]>/<key>.npz``, writes are atomic, corrupt
    blobs are deleted on read. Blobs whose schema version differs from
    :data:`CHECKPOINT_SCHEMA_VERSION` are *ignored* (left in place,
    reported as a miss) so a version bump simply retrains and overwrites.
    """

    suffix = ".npz"

    def __init__(self, root: str | Path = DEFAULT_CHECKPOINT_ROOT) -> None:
        super().__init__(root)

    def get(self, key: str, need_predictor: bool = False) -> PolicyCheckpoint | None:
        """Load a checkpoint, or None on miss.

        ``need_predictor`` demands a blob whose training at least
        *attempted* the LSTM predictor; blobs trained for predictor-free
        groups miss (and get retrained with the predictor included).
        """
        path = self.path_for(key)
        try:
            states, meta = load_states(path)
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated zip, bad JSON, malformed entries: a killed writer
            # (pre-rename) or tampering. Delete so the slot heals.
            self._discard(path)
            return None
        if meta.get("schema") != CHECKPOINT_SCHEMA_VERSION:
            return None
        if "qnet" not in states:
            return None
        predictor_attempted = bool(meta.get("predictor_attempted", False))
        if need_predictor and not predictor_attempted:
            return None
        return PolicyCheckpoint(
            qnet_state=states["qnet"],
            epsilon=float(meta.get("epsilon", 0.0)),
            predictor_state=states.get("predictor"),
            predictor_fitted=bool(meta.get("predictor_fitted", False)),
            predictor_attempted=predictor_attempted,
            meta={k: meta[k] for k in ("arch", "request") if k in meta},
        )

    def put(self, key: str, checkpoint: PolicyCheckpoint) -> Path:
        """Atomically persist a checkpoint; returns its blob path."""
        states: dict[str, dict[str, np.ndarray]] = {"qnet": checkpoint.qnet_state}
        if checkpoint.predictor_state is not None:
            states["predictor"] = checkpoint.predictor_state
        meta = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "epsilon": checkpoint.epsilon,
            "predictor_fitted": checkpoint.predictor_fitted,
            "predictor_attempted": checkpoint.predictor_attempted,
            **checkpoint.meta,
        }
        return save_states(self.path_for(key), states, meta)


def ensure_checkpoint(
    store: CheckpointStore | None,
    spec: ScenarioSpec,
    n_jobs: int = 600,
    seed: int = 0,
    pretrain: bool = True,
    online_epochs: int = 1,
    with_predictor: bool = True,
    force: bool = False,
) -> PolicyCheckpoint:
    """Load the checkpoint for a training key, training (and storing) on miss."""
    key = content_key(training_request(spec, n_jobs, seed, pretrain, online_epochs))
    if store is not None and not force:
        cached = store.get(key, need_predictor=with_predictor)
        if cached is not None:
            return cached
    checkpoint = train_policy(
        spec,
        n_jobs=n_jobs,
        seed=seed,
        pretrain=pretrain,
        online_epochs=online_epochs,
        with_predictor=with_predictor,
    )
    if store is not None:
        store.put(key, checkpoint)
    return checkpoint


__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointStore",
    "PolicyCheckpoint",
    "ensure_checkpoint",
    "restore_predictor",
    "restore_prototype",
    "train_policy",
    "training_request",
    "warm_scenario_system",
]
