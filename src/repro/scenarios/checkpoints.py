"""Policy checkpoints: train a sweep cell's controllers once, reuse everywhere.

Table-1 style grids vary mostly *evaluation* knobs across their DRL
cells, yet the orchestrator used to retrain the global prototype (and the
LSTM predictor) inside every cell. This module factors the training out:

* :func:`training_request` — the *training-relevant* subset of a cell
  request: scenario content, seed, trace length, and the protocol knobs
  that shape training (``pretrain``, ``online_epochs``). Evaluation-only
  parameters (``record_every``, ``local_epochs``, the system name) are
  deliberately excluded, so cells that differ only in how they are
  *evaluated* share one training key.
* :func:`train_policy` — reproduces exactly the training a cell would
  have done on its own (same :class:`~numpy.random.SeedSequence`
  derivation as :func:`~repro.harness.runner.make_scenario_system`) and
  captures the result as a :class:`PolicyCheckpoint`.
* :class:`CheckpointStore` — content-keyed ``.npz`` blobs under
  ``.repro-cache/checkpoints/``, atomic like the result store, with a
  schema gate so stale blobs are ignored rather than half-loaded.
* :func:`warm_scenario_system` — rebuilds a ready-to-evaluate system
  from a checkpoint: the DRL broker is cloned from the stored Q-network
  weights, the hierarchical predictor from the stored LSTM weights.

The orchestrator composes these into train-once / evaluate-many: one
training per group of cells sharing a key, fanned over the worker pool,
then every evaluation cell warm-starts from the group's blob.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.config import ExperimentConfig
from repro.core.global_tier import DRLGlobalBroker
from repro.core.hierarchical import build_drl_only
from repro.core.predictor import WorkloadPredictor
from repro.harness.runner import (
    build_pretrained_predictor,
    derive_cell_seeds,
    make_system,
    needs_global_tier,
    train_global_prototype,
)
from repro.nn.serialize import load_states, save_states
from repro.obs import telemetry as obs
from repro.scenarios.specs import ScenarioSpec
from repro.scenarios.store import ContentAddressedStore, content_key

logger = logging.getLogger(__name__)

#: Bump when the blob layout or warm-start semantics change; a blob
#: carrying any other version is ignored (treated as a miss) on read.
CHECKPOINT_SCHEMA_VERSION = 1

DEFAULT_CHECKPOINT_ROOT = Path(".repro-cache") / "checkpoints"


def training_request(
    spec: ScenarioSpec,
    n_jobs: int,
    seed: int,
    pretrain: bool = True,
    online_epochs: int = 1,
) -> dict:
    """The content-keyed payload identifying one policy training.

    Contains everything that shapes the trained weights — and nothing
    else, so evaluation-only knobs never invalidate a checkpoint. Note
    ``n_jobs`` *is* training-relevant: training segments are sized from
    the evaluation trace length. Tariffs are stripped — the scenario's
    and, for federated scenarios, each site's: electricity accounting is
    an evaluation-side lens over the same joules (training rewards never
    see prices, and tariff-greedy federation dispatchers carry no
    trained weights), so scenarios differing only in tariffs share one
    policy — while a trace-replay workload *does* change the key
    (different training segments) and can never collide with a synthetic
    scenario's checkpoints.
    """
    scenario = spec.content_dict()
    scenario.pop("tariff", None)
    for site in scenario.get("sites", ()):
        site.pop("tariff", None)
    return {
        "scenario": scenario,
        "seed": seed,
        "n_jobs": n_jobs,
        "pretrain": pretrain,
        "online_epochs": online_epochs,
    }


def needs_policy(spec: ScenarioSpec, system: str) -> bool:
    """Whether a (scenario, system) cell trains/loads any policy weights.

    True for DRL cluster-tier systems (as before), and additionally for
    any system on a federated scenario whose federation tier is the
    learned DRL dispatcher.
    """
    return needs_global_tier(system) or (
        spec.is_federated and spec.federation == "drl"
    )


@dataclass
class PolicyCheckpoint:
    """Serialized controller weights for one training key.

    Parameters
    ----------
    qnet_state:
        :meth:`~repro.nn.layers.Module.state_dict` of the trained
        :class:`~repro.core.qnetwork.HierarchicalQNetwork`.
    epsilon:
        The prototype broker's annealed exploration rate at capture time
        (clones resume exploration from here).
    predictor_state:
        State dict of the LSTM predictor network, when predictor
        training was attempted; None otherwise.
    predictor_fitted:
        Whether the predictor was actually fitted (a too-short trace
        legitimately leaves it unfitted — that is recorded, not retried).
    predictor_attempted:
        Whether predictor training was attempted at all. A blob trained
        for a predictor-free group can be upgraded later by retraining
        with the predictor included.
    meta:
        Free-form metadata (architecture fingerprint, training request).
    """

    qnet_state: dict[str, np.ndarray]
    epsilon: float
    predictor_state: dict[str, np.ndarray] | None = None
    predictor_fitted: bool = False
    predictor_attempted: bool = False
    meta: dict = field(default_factory=dict)


def train_policy(
    spec: ScenarioSpec,
    n_jobs: int = 600,
    seed: int = 0,
    pretrain: bool = True,
    online_epochs: int = 1,
    with_predictor: bool = True,
) -> PolicyCheckpoint:
    """Train the shared controllers for one training key.

    Bit-for-bit the training a cell performs when it trains alone: the
    shared seed derivation (:func:`~repro.harness.runner.derive_cell_seeds`),
    the same traces, the same
    :func:`~repro.harness.runner.train_global_prototype` call, and (when
    ``with_predictor``) the exact predictor pre-training of
    :func:`~repro.harness.runner.build_pretrained_predictor`.
    """
    trace_ss, system_seed = derive_cell_seeds(seed)
    config = spec.experiment_config(seed=seed)
    _, train_traces = spec.build_traces(n_jobs, trace_ss)
    broker = train_global_prototype(
        config,
        train_traces,
        pretrain=pretrain,
        online_epochs=online_epochs,
        seed=system_seed,
    )
    predictor_state = None
    predictor_fitted = False
    if with_predictor:
        predictor = build_pretrained_predictor(config, train_traces, system_seed)
        predictor_state = predictor.network.state_dict()
        predictor_fitted = predictor.fitted
    return PolicyCheckpoint(
        qnet_state=broker.qnet.state_dict(),
        epsilon=broker.epsilon,
        predictor_state=predictor_state,
        predictor_fitted=predictor_fitted,
        predictor_attempted=with_predictor,
        meta={
            "arch": broker.qnet.describe(),
            "request": training_request(spec, n_jobs, seed, pretrain, online_epochs),
        },
    )


def restore_prototype(
    checkpoint: PolicyCheckpoint,
    config: ExperimentConfig,
    seed: int,
) -> DRLGlobalBroker:
    """A prototype broker carrying the checkpoint's trained Q-network.

    Raises
    ------
    ValueError
        If the checkpoint's weights do not fit the configuration's
        encoder geometry (the blob was trained for a different fleet).
    """
    broker = build_drl_only(config, seed=seed).broker
    assert isinstance(broker, DRLGlobalBroker)
    arch = checkpoint.meta.get("arch")
    if arch is not None and arch != broker.qnet.describe():
        raise ValueError(
            "checkpoint geometry does not match the scenario: "
            f"blob carries {arch}, scenario needs {broker.qnet.describe()}"
        )
    broker.qnet.load_state_dict(checkpoint.qnet_state)
    broker.epsilon = checkpoint.epsilon
    return broker


def restore_predictor(
    checkpoint: PolicyCheckpoint,
    config: ExperimentConfig,
    seed: int,
) -> WorkloadPredictor:
    """The warm LSTM predictor a hierarchical cell should start from.

    Raises
    ------
    ValueError
        If the checkpoint was trained without attempting the predictor.
    """
    if not checkpoint.predictor_attempted:
        raise ValueError(
            "checkpoint was trained without a predictor; retrain with "
            "with_predictor=True to serve hierarchical cells"
        )
    predictor = WorkloadPredictor(
        config.local_tier.predictor, rng=np.random.default_rng(seed)
    )
    if checkpoint.predictor_state is not None:
        predictor.network.load_state_dict(checkpoint.predictor_state)
        predictor.fitted = checkpoint.predictor_fitted
    return predictor


@dataclass
class FederationPolicyCheckpoint:
    """Serialized controller weights for one *federated* training key.

    One :class:`PolicyCheckpoint` per site (its cluster-tier prototype
    and predictor) plus, when the scenario's federation tier is the DRL
    dispatcher, the federation Q-network weights and annealed ε.
    """

    site_checkpoints: tuple[PolicyCheckpoint, ...]
    fed_qnet_state: dict[str, np.ndarray] | None = None
    fed_epsilon: float = 0.0
    meta: dict = field(default_factory=dict)


def train_federation_policy(
    spec: ScenarioSpec,
    n_jobs: int = 600,
    seed: int = 0,
    pretrain: bool = True,
    online_epochs: int = 1,
    with_predictor: bool = True,
) -> FederationPolicyCheckpoint:
    """Train the shared controllers for one federated training key.

    Per-site prototypes (and predictors) are trained exactly as the
    cold federated cell trains them — same seed derivation
    (:func:`~repro.scenarios.federation.derive_site_seeds`), same
    per-site training segments. When the scenario's federation policy is
    ``"drl"``, the dispatcher is then trained over a canonical fleet —
    per-site ``drl-only`` systems cloned from the just-trained
    prototypes (the federated analogue of Algorithm 1's seed-policy
    experience collection) — and its weights captured alongside.
    """
    from repro.harness.runner import derive_cell_seeds
    from repro.scenarios.federation import (
        derive_site_seeds,
        train_federation_broker,
    )

    trace_ss, system_seed = derive_cell_seeds(seed)
    _, train_streams = spec.build_site_traces(n_jobs, trace_ss)
    site_seeds, fed_seed = derive_site_seeds(system_seed, len(spec.sites))

    site_checkpoints: list[PolicyCheckpoint] = []
    for i in range(len(spec.sites)):
        config = spec.site_experiment_config(i, seed=seed)
        site_train = [segment[i] for segment in train_streams]
        broker = train_global_prototype(
            config,
            site_train,
            pretrain=pretrain,
            online_epochs=online_epochs,
            seed=site_seeds[i],
        )
        predictor_state = None
        predictor_fitted = False
        if with_predictor:
            predictor = build_pretrained_predictor(config, site_train, site_seeds[i])
            predictor_state = predictor.network.state_dict()
            predictor_fitted = predictor.fitted
        site_checkpoints.append(
            PolicyCheckpoint(
                qnet_state=broker.qnet.state_dict(),
                epsilon=broker.epsilon,
                predictor_state=predictor_state,
                predictor_fitted=predictor_fitted,
                predictor_attempted=with_predictor,
                meta={"arch": broker.qnet.describe()},
            )
        )

    request = training_request(spec, n_jobs, seed, pretrain, online_epochs)
    checkpoint = FederationPolicyCheckpoint(
        site_checkpoints=tuple(site_checkpoints),
        meta={"request": request},
    )
    if spec.federation == "drl":
        # Canonical fed-training fleet: warm drl-only sites from the
        # checkpoints above, then let the dispatcher learn over them.
        from repro.core.federation import DRLFederationBroker, make_federation_broker
        from repro.harness.runner import make_system

        systems = []
        for i in range(len(spec.sites)):
            config = spec.site_experiment_config(i, seed=seed)
            site_train = [segment[i] for segment in train_streams]
            systems.append(
                make_system(
                    "drl-only",
                    config,
                    site_train,
                    global_prototype=restore_prototype(
                        site_checkpoints[i], config, site_seeds[i]
                    ),
                    seed=site_seeds[i],
                )
            )
        broker = make_federation_broker(
            spec.federation, len(spec.sites), rng=np.random.default_rng(fed_seed)
        )
        assert isinstance(broker, DRLFederationBroker)
        train_federation_broker(
            spec, systems, broker, train_streams, online_epochs=online_epochs
        )
        checkpoint.fed_qnet_state = broker.qnet.state_dict()
        checkpoint.fed_epsilon = broker.epsilon
        checkpoint.meta["fed_arch"] = broker.qnet.describe()
    return checkpoint


def warm_scenario_system(
    name: str,
    spec: ScenarioSpec,
    n_jobs: int,
    checkpoint: PolicyCheckpoint,
    seed: int = 0,
    local_epochs: int = 1,
    **make_kwargs,
):
    """Build a named DRL system warm-started from a checkpoint.

    The counterpart of :func:`~repro.harness.runner.make_scenario_system`
    for checkpoint-backed cells: traces and seeds are derived
    identically, but the global tier is cloned from the stored weights
    (and the hierarchical predictor restored) instead of being trained.
    Returns ``(system, eval_jobs, capacity_events)``.

    Raises
    ------
    ValueError
        If ``name`` does not use the DRL global tier.
    """
    if not needs_global_tier(name):
        raise ValueError(f"system {name!r} has no policy to warm-start")
    trace_ss, system_seed = derive_cell_seeds(seed)
    config = spec.experiment_config(seed=seed)
    eval_jobs, train_traces = spec.build_traces(n_jobs, trace_ss)
    prototype = restore_prototype(checkpoint, config, system_seed)
    if name == "hierarchical":
        make_kwargs.setdefault(
            "predictor", restore_predictor(checkpoint, config, system_seed)
        )
    system = make_system(
        name,
        config,
        train_traces,
        global_prototype=prototype,
        local_epochs=local_epochs,
        seed=system_seed,
        **make_kwargs,
    )
    return system, eval_jobs, spec.capacity_events(spec.horizon_for(n_jobs))


class CheckpointStore(ContentAddressedStore):
    """File-backed cache mapping training keys to weight blobs.

    Layout and crash-safety mirror the result store (same
    :class:`~repro.scenarios.store.ContentAddressedStore` base): blobs
    live at ``<root>/<key[:2]>/<key>.npz``, writes are atomic, corrupt
    blobs are deleted on read. Blobs whose schema version differs from
    :data:`CHECKPOINT_SCHEMA_VERSION` are *ignored* (left in place,
    reported as a miss) so a version bump simply retrains and overwrites.
    """

    suffix = ".npz"

    def __init__(self, root: str | Path = DEFAULT_CHECKPOINT_ROOT) -> None:
        super().__init__(root)

    def get(self, key: str, need_predictor: bool = False) -> PolicyCheckpoint | None:
        """Load a checkpoint, or None on miss.

        ``need_predictor`` demands a blob whose training at least
        *attempted* the LSTM predictor; blobs trained for predictor-free
        groups miss (and get retrained with the predictor included).
        """
        path = self.path_for(key)
        try:
            states, meta = load_states(path)
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated zip, bad JSON, malformed entries: a killed writer
            # (pre-rename) or tampering. Delete so the slot heals.
            self._discard(path)
            return None
        if meta.get("schema") != CHECKPOINT_SCHEMA_VERSION:
            return None
        if "qnet" not in states:
            return None
        predictor_attempted = bool(meta.get("predictor_attempted", False))
        if need_predictor and not predictor_attempted:
            return None
        return PolicyCheckpoint(
            qnet_state=states["qnet"],
            epsilon=float(meta.get("epsilon", 0.0)),
            predictor_state=states.get("predictor"),
            predictor_fitted=bool(meta.get("predictor_fitted", False)),
            predictor_attempted=predictor_attempted,
            meta={k: meta[k] for k in ("arch", "request") if k in meta},
        )

    def put(self, key: str, checkpoint: PolicyCheckpoint) -> Path:
        """Atomically persist a checkpoint; returns its blob path."""
        states: dict[str, dict[str, np.ndarray]] = {"qnet": checkpoint.qnet_state}
        if checkpoint.predictor_state is not None:
            states["predictor"] = checkpoint.predictor_state
        meta = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "epsilon": checkpoint.epsilon,
            "predictor_fitted": checkpoint.predictor_fitted,
            "predictor_attempted": checkpoint.predictor_attempted,
            **checkpoint.meta,
        }
        return save_states(self.path_for(key), states, meta)

    def get_federation(
        self,
        key: str,
        need_predictor: bool = False,
        need_fed_policy: bool = False,
    ) -> FederationPolicyCheckpoint | None:
        """Load a federated checkpoint, or None on miss.

        Single-cluster blobs under the same key space miss (``kind``
        gate), as do blobs missing any site's Q-network, a requested
        predictor, or — with ``need_fed_policy`` — the federation
        dispatcher's weights.
        """
        path = self.path_for(key)
        try:
            states, meta = load_states(path)
        except FileNotFoundError:
            return None
        except Exception:
            self._discard(path)
            return None
        if meta.get("schema") != CHECKPOINT_SCHEMA_VERSION:
            return None
        if meta.get("kind") != "federation":
            return None
        site_meta = meta.get("sites")
        if not isinstance(site_meta, list) or not site_meta:
            return None
        sites: list[PolicyCheckpoint] = []
        for i, entry in enumerate(site_meta):
            qnet = states.get(f"site{i}_qnet")
            if qnet is None:
                return None
            predictor_attempted = bool(entry.get("predictor_attempted", False))
            if need_predictor and not predictor_attempted:
                return None
            sites.append(
                PolicyCheckpoint(
                    qnet_state=qnet,
                    epsilon=float(entry.get("epsilon", 0.0)),
                    predictor_state=states.get(f"site{i}_predictor"),
                    predictor_fitted=bool(entry.get("predictor_fitted", False)),
                    predictor_attempted=predictor_attempted,
                    meta={k: entry[k] for k in ("arch",) if k in entry},
                )
            )
        fed_state = states.get("fed_qnet")
        if need_fed_policy and fed_state is None:
            return None
        return FederationPolicyCheckpoint(
            site_checkpoints=tuple(sites),
            fed_qnet_state=fed_state,
            fed_epsilon=float(meta.get("fed_epsilon", 0.0)),
            meta={k: meta[k] for k in ("fed_arch", "request") if k in meta},
        )

    def put_federation(
        self, key: str, checkpoint: FederationPolicyCheckpoint
    ) -> Path:
        """Atomically persist a federated checkpoint; returns its path."""
        states: dict[str, dict[str, np.ndarray]] = {}
        site_meta = []
        for i, site in enumerate(checkpoint.site_checkpoints):
            states[f"site{i}_qnet"] = site.qnet_state
            if site.predictor_state is not None:
                states[f"site{i}_predictor"] = site.predictor_state
            site_meta.append(
                {
                    "epsilon": site.epsilon,
                    "predictor_fitted": site.predictor_fitted,
                    "predictor_attempted": site.predictor_attempted,
                    **{k: site.meta[k] for k in ("arch",) if k in site.meta},
                }
            )
        if checkpoint.fed_qnet_state is not None:
            states["fed_qnet"] = checkpoint.fed_qnet_state
        meta = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "kind": "federation",
            "sites": site_meta,
            "fed_epsilon": checkpoint.fed_epsilon,
            **checkpoint.meta,
        }
        return save_states(self.path_for(key), states, meta)


#: Either checkpoint flavor — what the dispatchers below traffic in.
AnyCheckpoint = "PolicyCheckpoint | FederationPolicyCheckpoint"


def train_policy_any(
    spec: ScenarioSpec,
    n_jobs: int = 600,
    seed: int = 0,
    pretrain: bool = True,
    online_epochs: int = 1,
    with_predictor: bool = True,
):
    """Train the right checkpoint flavor for ``spec`` (federated or not)."""
    trainer = train_federation_policy if spec.is_federated else train_policy
    return trainer(
        spec,
        n_jobs=n_jobs,
        seed=seed,
        pretrain=pretrain,
        online_epochs=online_epochs,
        with_predictor=with_predictor,
    )


def load_checkpoint(
    store: CheckpointStore,
    key: str,
    spec: ScenarioSpec,
    need_predictor: bool = False,
):
    """Fetch the checkpoint flavor ``spec`` needs, or None on miss."""
    if spec.is_federated:
        checkpoint = store.get_federation(
            key,
            need_predictor=need_predictor,
            need_fed_policy=spec.federation == "drl",
        )
    else:
        checkpoint = store.get(key, need_predictor=need_predictor)
    if checkpoint is None:
        obs.get().counter("checkpoint.miss")
        logger.debug("checkpoint miss for key %s", key)
    else:
        obs.get().counter("checkpoint.hit")
        logger.debug("checkpoint hit for key %s", key)
    return checkpoint


def store_checkpoint(store: CheckpointStore, key: str, checkpoint) -> Path:
    """Persist either checkpoint flavor under ``key``."""
    obs.get().counter("checkpoint.store")
    logger.debug("storing checkpoint under key %s", key)
    if isinstance(checkpoint, FederationPolicyCheckpoint):
        return store.put_federation(key, checkpoint)
    return store.put(key, checkpoint)


def ensure_checkpoint(
    store: CheckpointStore | None,
    spec: ScenarioSpec,
    n_jobs: int = 600,
    seed: int = 0,
    pretrain: bool = True,
    online_epochs: int = 1,
    with_predictor: bool = True,
    force: bool = False,
):
    """Load the checkpoint for a training key, training (and storing) on miss.

    Dispatches on the scenario flavor: federated scenarios load/train
    :class:`FederationPolicyCheckpoint` blobs, single-cluster ones the
    classic :class:`PolicyCheckpoint`.
    """
    key = content_key(training_request(spec, n_jobs, seed, pretrain, online_epochs))
    if store is not None and not force:
        cached = load_checkpoint(store, key, spec, need_predictor=with_predictor)
        if cached is not None:
            return cached
    checkpoint = train_policy_any(
        spec,
        n_jobs=n_jobs,
        seed=seed,
        pretrain=pretrain,
        online_epochs=online_epochs,
        with_predictor=with_predictor,
    )
    if store is not None:
        store_checkpoint(store, key, checkpoint)
    return checkpoint


__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointStore",
    "FederationPolicyCheckpoint",
    "PolicyCheckpoint",
    "ensure_checkpoint",
    "load_checkpoint",
    "needs_policy",
    "restore_predictor",
    "restore_prototype",
    "store_checkpoint",
    "train_federation_policy",
    "train_policy",
    "train_policy_any",
    "training_request",
    "warm_scenario_system",
]
