"""Content-keyed JSON result store for experiment runs.

A sweep cell is identified by the *content* of its request — the full
scenario spec, system name, seed, job count, and protocol knobs — not by
when or where it ran. The key is the SHA-256 of the request's canonical
JSON, so any parameter change (even one float deep inside a power model)
invalidates exactly the affected cells and nothing else.

Records live under ``.repro-cache/<key[:2]>/<key>.json`` as
``{"request": ..., "result": ...}``; writes are atomic
(temp file + ``os.replace``) so parallel workers can share one store.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path

logger = logging.getLogger(__name__)

#: Bump when the result payload's semantics change; keyed into every
#: request so stale cache entries are never silently reused.
#: v2: cell results carry Fig-8-style ``latency_series``/``energy_series``
#: and DRL cells may be computed warm from a policy checkpoint.
#: v3: scenarios may replay recorded traces (``WorkloadSpec.replay``) and
#: carry a tariff; results gain ``cost_usd``/``co2_kg`` totals plus
#: ``cost_series``/``co2_series`` panels.
#: v4: scenarios may be federated (``ScenarioSpec.sites`` +
#: ``federation`` policy); federated results carry a ``"federation"``
#: label and a per-site breakdown under ``"sites"`` (totals and series
#: per site), with the top-level series fleet-wide merges.
#: v5: profiled cells carry ``"profile": True`` in their protocol (so
#: profiled and unprofiled runs never share a cache slot) and a
#: ``"telemetry"`` snapshot (:mod:`repro.obs.telemetry`) in the result.
#: v6: scenarios may inject faults (``ScenarioSpec.faults`` /
#: ``SiteSpec.faults``, :mod:`repro.faults`); results carry
#: ``failed_jobs``/``retries``/``goodput``/``availability`` (and
#: ``broker_fallbacks``), per site too on federated cells.
SCHEMA_VERSION = 6

DEFAULT_ROOT = Path(".repro-cache")


def canonical_json(payload: dict) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_key(request: dict) -> str:
    """SHA-256 hex digest of a request's canonical JSON."""
    return hashlib.sha256(canonical_json(request).encode()).hexdigest()


class ContentAddressedStore:
    """Shared mechanics of the on-disk content-keyed stores.

    Entries live at ``<root>/<key[:2]>/<key><suffix>``; subclasses pick
    the suffix and the (de)serialization, and share the fan-out layout,
    corrupt-entry disposal, counting, and clearing. All writers must be
    atomic (temp file + rename) so entries are all-or-nothing.
    """

    suffix = ".json"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}{self.suffix}"

    @staticmethod
    def _discard(path: Path) -> None:
        """Best-effort removal of an entry known to be corrupt."""
        try:
            path.unlink()
        except OSError:
            pass

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob(f"*/*{self.suffix}"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.glob(f"*/*{self.suffix}"):
            path.unlink()
            removed += 1
        for sub in self.root.iterdir():
            if sub.is_dir() and not any(sub.iterdir()):
                sub.rmdir()
        return removed


class ResultStore(ContentAddressedStore):
    """File-backed cache mapping request content keys to result records."""

    def __init__(self, root: str | Path = DEFAULT_ROOT) -> None:
        super().__init__(root)

    def get(self, key: str) -> dict | None:
        """Load a cached record, or None on miss.

        A truncated or otherwise corrupt record (a worker killed before
        the atomic rename completed, manual tampering, a record missing
        its ``result``) is a miss too — and is deleted, so it cannot
        keep shadowing the slot after the caller recomputes the cell.
        """
        path = self.path_for(key)
        try:
            with path.open() as fh:
                record = json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._discard(path)
            return None
        except OSError:  # unreadable (permissions, I/O error): miss, keep
            return None
        if not isinstance(record, dict) or "result" not in record:
            self._discard(path)
            return None
        return record

    def put(self, key: str, request: dict, result: dict) -> Path:
        """Atomically persist a record; returns its path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {"schema": SCHEMA_VERSION, "request": request, "result": result}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh, sort_keys=True, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
        return path


#: Structured failure journal for quarantined sweep cells, one JSON
#: object per line, living beside the cell records in the store root.
QUARANTINE_FILE = "quarantine.jsonl"


def append_quarantine(root: str | Path, record: dict) -> Path:
    """Append one structured failure record to the quarantine journal.

    A single-line append is atomic enough for the sweep's process model
    (one orchestrator process writes; workers never touch the journal).
    """
    path = Path(root) / QUARANTINE_FILE
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(canonical_json(record) + "\n")
    return path


def read_quarantine(root: str | Path) -> list[dict]:
    """Load the quarantine journal, self-healing corrupt lines.

    A truncated or garbled line (orchestrator killed mid-append, manual
    tampering) is skipped with a warning and the journal is rewritten
    atomically without it — the same discipline as
    :meth:`ResultStore.get`. Missing or unreadable journal → empty list.
    """
    path = Path(root) / QUARANTINE_FILE
    try:
        raw_lines = path.read_text().splitlines()
    except (FileNotFoundError, OSError):
        return []
    records: list[dict] = []
    kept: list[str] = []
    dropped = 0
    for line in raw_lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            dropped += 1
            continue
        if not isinstance(record, dict):
            dropped += 1
            continue
        records.append(record)
        kept.append(line)
    if dropped:
        logger.warning(
            "quarantine journal %s: skipped %d corrupt line(s) and rewrote "
            "the journal without them",
            path,
            dropped,
        )
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                for line in kept:
                    fh.write(line + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
    return records
