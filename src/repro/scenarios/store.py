"""Content-keyed JSON result store for experiment runs.

A sweep cell is identified by the *content* of its request — the full
scenario spec, system name, seed, job count, and protocol knobs — not by
when or where it ran. The key is the SHA-256 of the request's canonical
JSON, so any parameter change (even one float deep inside a power model)
invalidates exactly the affected cells and nothing else.

Records live under ``.repro-cache/<key[:2]>/<key>.json`` as
``{"request": ..., "result": ...}``; writes are atomic
(temp file + ``os.replace``) so parallel workers can share one store.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

#: Bump when the result payload's semantics change; keyed into every
#: request so stale cache entries are never silently reused.
SCHEMA_VERSION = 1

DEFAULT_ROOT = Path(".repro-cache")


def canonical_json(payload: dict) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_key(request: dict) -> str:
    """SHA-256 hex digest of a request's canonical JSON."""
    return hashlib.sha256(canonical_json(request).encode()).hexdigest()


class ResultStore:
    """File-backed cache mapping request content keys to result records."""

    def __init__(self, root: str | Path = DEFAULT_ROOT) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Load a cached record, or None on miss (or a corrupt entry)."""
        path = self.path_for(key)
        try:
            with path.open() as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            # A write died mid-flight (pre-atomic-rename crash or manual
            # tampering); treat as a miss and let the caller recompute.
            return None

    def put(self, key: str, request: dict, result: dict) -> Path:
        """Atomically persist a record; returns its path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {"schema": SCHEMA_VERSION, "request": request, "result": result}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh, sort_keys=True, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
        return path

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.glob("*/*.json"):
            path.unlink()
            removed += 1
        for sub in self.root.iterdir():
            if sub.is_dir() and not any(sub.iterdir()):
                sub.rmdir()
        return removed
