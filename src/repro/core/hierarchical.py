"""Builders wiring complete systems (the paper's three comparators).

* :func:`build_round_robin` — round-robin dispatch, all servers always on
  (the paper's baseline; its measured average power matches M idle
  servers, so no DPM is in effect).
* :func:`build_drl_only` — the DRL global tier with the ad-hoc local
  power behaviour of Fig. 4(a): servers sleep the instant they go idle.
* :func:`build_hierarchical` — the full proposed framework: DRL global
  tier plus the distributed RL power manager with LSTM workload
  prediction in the local tier.

Each builder returns a :class:`HierarchicalSystem` bundle that knows how
to construct a ready-to-run :class:`~repro.sim.engine.ClusterEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baselines import AlwaysOnPolicy, ImmediateSleepPolicy, RoundRobinBroker
from repro.core.config import ExperimentConfig
from repro.core.global_tier import DRLGlobalBroker
from repro.core.local_tier import RLPowerPolicy
from repro.core.predictor import WorkloadPredictor
from repro.core.state import StateEncoder
from repro.rl.smdp import SMDPQLearner
from repro.sim.churn import CapacityEvent
from repro.sim.engine import ClusterEngine, build_simulation
from repro.sim.interfaces import Broker, PowerPolicy
from repro.sim.job import Job
from repro.sim.power import TariffModel


@dataclass
class HierarchicalSystem:
    """A named, fully-wired controller stack ready to simulate."""

    name: str
    broker: Broker
    policies: list[PowerPolicy] | PowerPolicy
    config: ExperimentConfig
    initially_on: bool = False
    predictor: WorkloadPredictor | None = None

    def build_engine(
        self,
        record_every: int | None = None,
        keep_jobs: bool = False,
        capacity_events: tuple[CapacityEvent, ...] = (),
        tariff: "TariffModel | None" = None,
        faults=None,
    ) -> ClusterEngine:
        """Construct a simulation engine around this system."""
        return build_simulation(
            num_servers=self.config.num_servers,
            broker=self.broker,
            policies=self.policies,
            power_model=self.config.fleet_power_models,
            num_resources=self.config.num_resources,
            overload_threshold=self.config.overload_threshold,
            initially_on=self.initially_on,
            record_every=(
                record_every if record_every is not None else self.config.record_every
            ),
            keep_jobs=keep_jobs,
            capacity_events=capacity_events,
            tariff=tariff,
            faults=faults,
        )

    def run(
        self,
        jobs: list[Job],
        record_every: int | None = None,
        keep_jobs: bool = False,
        capacity_events: tuple[CapacityEvent, ...] = (),
        tariff: "TariffModel | None" = None,
        faults=None,
    ):
        """Convenience: build an engine and run the trace."""
        return self.build_engine(
            record_every, keep_jobs, capacity_events, tariff=tariff, faults=faults
        ).run(jobs)

    def freeze(self) -> None:
        """Put every learning component into greedy evaluation mode."""
        if isinstance(self.broker, DRLGlobalBroker):
            self.broker.freeze()
        policies = (
            self.policies if isinstance(self.policies, list) else [self.policies]
        )
        for policy in policies:
            if isinstance(policy, RLPowerPolicy):
                policy.freeze()


def _make_encoder(config: ExperimentConfig) -> StateEncoder:
    return StateEncoder(
        num_servers=config.num_servers,
        num_resources=config.num_resources,
        num_groups=config.global_tier.num_groups,
        include_power_state=config.global_tier.include_power_state,
        include_queue_state=config.global_tier.include_queue_state,
    )


def build_round_robin(config: ExperimentConfig | None = None) -> HierarchicalSystem:
    """The paper's baseline: round-robin dispatch, servers always on."""
    config = config if config is not None else ExperimentConfig()
    return HierarchicalSystem(
        name="round-robin",
        broker=RoundRobinBroker(),
        policies=AlwaysOnPolicy(),
        config=config,
        initially_on=True,
    )


def build_drl_only(
    config: ExperimentConfig | None = None,
    broker: DRLGlobalBroker | None = None,
    seed: int | None = None,
) -> HierarchicalSystem:
    """DRL-based resource allocation ONLY: ad-hoc (immediate) sleeping."""
    config = config if config is not None else ExperimentConfig()
    rng = np.random.default_rng(config.seed if seed is None else seed)
    if broker is None:
        broker = DRLGlobalBroker(_make_encoder(config), config.global_tier, rng=rng)
    return HierarchicalSystem(
        name="drl-only",
        broker=broker,
        policies=ImmediateSleepPolicy(),
        config=config,
        initially_on=False,
    )


def build_hierarchical(
    config: ExperimentConfig | None = None,
    broker: DRLGlobalBroker | None = None,
    predictor: WorkloadPredictor | None = None,
    shared_dpm_learner: bool = False,
    seed: int | None = None,
) -> HierarchicalSystem:
    """The full proposed framework: DRL global tier + RL/LSTM local tier.

    Parameters
    ----------
    broker:
        Optionally a pre-trained global broker (from
        :func:`~repro.core.global_tier.offline_pretrain`).
    predictor:
        Optionally a pre-trained LSTM predictor, shared by every server's
        power manager (each keeps its own inter-arrival window).
    shared_dpm_learner:
        Pool the DPM Q-table across servers instead of the paper's fully
        distributed per-server learners (an extension; speeds up learning
        on short traces).
    """
    config = config if config is not None else ExperimentConfig()
    rng = np.random.default_rng(config.seed if seed is None else seed)
    if broker is None:
        broker = DRLGlobalBroker(_make_encoder(config), config.global_tier, rng=rng)
    if predictor is None:
        predictor = WorkloadPredictor(config.local_tier.predictor, rng=rng)
    shared_learner = None
    if shared_dpm_learner:
        shared_learner = SMDPQLearner(
            beta=config.local_tier.beta,
            alpha=config.local_tier.alpha,
            epsilon=config.local_tier.epsilon_start,
            epsilon_decay=config.local_tier.epsilon_decay,
            epsilon_floor=config.local_tier.epsilon_floor,
            rng=rng,
        )
    policies: list[PowerPolicy] = [
        RLPowerPolicy(
            config.local_tier,
            predictor=predictor,
            learner=shared_learner,
            rng=np.random.default_rng(rng.integers(2**63)),
        )
        for _ in range(config.num_servers)
    ]
    return HierarchicalSystem(
        name="hierarchical",
        broker=broker,
        policies=policies,
        config=config,
        initially_on=False,
        predictor=predictor,
    )


def per_server_interarrivals(jobs: list[Job], num_servers: int) -> np.ndarray:
    """Per-server inter-arrival series implied by balanced dispatch.

    Under round-robin, server ``i`` receives jobs ``i, i+M, i+2M, ...``;
    the inter-arrival stream at a server is therefore the M-strided
    difference of the global arrival times. Used to pre-train the LSTM
    predictor offline before the first online run.
    """
    if num_servers < 1:
        raise ValueError(f"num_servers must be positive, got {num_servers}")
    arrivals = np.array(sorted(job.arrival_time for job in jobs))
    if arrivals.size <= num_servers:
        raise ValueError("trace too short for the requested number of servers")
    return arrivals[num_servers:] - arrivals[:-num_servers]


def pretrain_predictor(
    predictor: WorkloadPredictor,
    jobs: list[Job],
    num_servers: int,
    epochs: int | None = None,
    max_samples: int = 2000,
) -> list[float]:
    """Fit the LSTM predictor on trace-implied per-server inter-arrivals."""
    series = per_server_interarrivals(jobs, num_servers)
    if series.size > max_samples:
        series = series[:max_samples]
    return predictor.fit(series, epochs=epochs)
