"""Reward functions of both tiers (Eqns. 4 and 5).

Both tiers define *reward rates*; over a sojourn ``[t_k, t_{k+1})`` the
SMDP update consumes the average rate, which we compute exactly from the
simulator's time integrals:

* global (Eqn. 4):
  ``r(t) = -w1 * TotalPower(t) - w2 * NumVMs(t) - w3 * ReliObj(t)``
* local (Eqn. 5):
  ``r(t) = -w * P(t) - (1 - w) * JQ(t)``

By Little's law the time-averaged number of VMs (jobs) in the system is
proportional to the average job latency, so minimizing these rewards
jointly minimizes power and latency.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GlobalRewardWeights:
    """Weights (w1, w2, w3) of Eqn. (4)."""

    w_power: float = 1e-3
    w_vms: float = 1e-2
    w_reliability: float = 1.0

    def __post_init__(self) -> None:
        if self.w_power < 0 or self.w_vms < 0 or self.w_reliability < 0:
            raise ValueError("reward weights must be non-negative")


def global_reward_rate(
    weights: GlobalRewardWeights,
    energy_delta: float,
    vm_time_delta: float,
    overload_delta: float,
    tau: float,
) -> float:
    """Average Eqn.-(4) reward rate over a sojourn of length ``tau``.

    Parameters
    ----------
    energy_delta:
        Joules consumed by the whole cluster during the sojourn.
    vm_time_delta:
        VM-seconds accumulated (integral of the number of VMs in system).
    overload_delta:
        Integral of the hot-spot measure (reliability objective).
    tau:
        Sojourn length in seconds.

    Raises
    ------
    ValueError
        If ``tau`` is not positive.
    """
    if tau <= 0:
        raise ValueError(f"tau must be positive, got {tau}")
    avg_power = energy_delta / tau
    avg_vms = vm_time_delta / tau
    avg_overload = overload_delta / tau
    return -(
        weights.w_power * avg_power
        + weights.w_vms * avg_vms
        + weights.w_reliability * avg_overload
    )


def local_reward_rate(
    w: float,
    energy_delta: float,
    queue_time_delta: float,
    tau: float,
    power_scale: float = 1.0,
) -> float:
    """Average Eqn.-(5) reward rate over a sojourn of length ``tau``.

    Parameters
    ----------
    w:
        Power-vs-latency weight in [0, 1].
    energy_delta:
        Joules consumed by this server during the sojourn.
    queue_time_delta:
        Job-seconds accumulated in this server's system (queued + running).
    tau:
        Sojourn length in seconds.
    power_scale:
        Watts counted as 1.0, so both reward terms are commensurate
        (a pure rescaling of the weight; the Pareto family is unchanged).

    Raises
    ------
    ValueError
        If ``tau`` is not positive, ``w`` outside [0, 1], or
        ``power_scale`` not positive.
    """
    if tau <= 0:
        raise ValueError(f"tau must be positive, got {tau}")
    if not 0.0 <= w <= 1.0:
        raise ValueError(f"w must be in [0, 1], got {w}")
    if power_scale <= 0:
        raise ValueError(f"power_scale must be positive, got {power_scale}")
    avg_power = energy_delta / tau / power_scale
    avg_queue = queue_time_delta / tau
    return -(w * avg_power + (1.0 - w) * avg_queue)
