"""Global-tier state encoding.

The paper's state at job j's arrival is

    s = [g_1, ..., g_K, s_j]
      = [u_11, ..., u_1|D|, ..., u_|M||D|, u_j1, ..., u_j|D|, d_j]

— the utilization of every resource of every server (grouped into K
equal server groups), followed by the job's resource demands and its
(estimated) duration. This module builds that vector from a live
:class:`~repro.sim.cluster.Cluster` and a :class:`~repro.sim.job.Job`,
and knows how to slice it back into group blocks for the Q-network.
"""

from __future__ import annotations

import numpy as np

from repro.sim.cluster import Cluster
from repro.sim.job import Job


class StateEncoder:
    """Encodes (cluster, job) into the paper's flat state vector.

    Parameters
    ----------
    num_servers, num_resources:
        M and D.
    num_groups:
        K; must divide M ("all the M servers can be equally divided
        into K groups").
    max_duration:
        Normalizer for the job-duration feature (paper jobs cap at 2 h).
    include_power_state:
        Append a per-server on/off bit to each server's block. The
        paper's state lists utilizations only, but a sleeping server and
        an empty awake one are then indistinguishable even though one
        costs a Ton boot delay — this bit restores the Markov property.
    include_queue_state:
        Append a per-server (saturating) queue-depth feature. Under FCFS
        head-of-line blocking, a deep queue behind identical utilization
        predicts very different future latency; without this feature the
        DRL agent cannot learn to avoid queueing servers.
    queue_scale:
        Queue depth that saturates the queue feature at 1.0.
    """

    def __init__(
        self,
        num_servers: int,
        num_resources: int = 3,
        num_groups: int = 3,
        max_duration: float = 7200.0,
        include_power_state: bool = True,
        include_queue_state: bool = True,
        queue_scale: float = 10.0,
    ) -> None:
        if num_servers < 1 or num_resources < 1 or num_groups < 1:
            raise ValueError("num_servers, num_resources, num_groups must be positive")
        if num_servers % num_groups != 0:
            raise ValueError(
                f"num_servers ({num_servers}) not divisible by "
                f"num_groups ({num_groups})"
            )
        if max_duration <= 0:
            raise ValueError(f"max_duration must be positive, got {max_duration}")
        self.num_servers = int(num_servers)
        self.num_resources = int(num_resources)
        self.num_groups = int(num_groups)
        if queue_scale <= 0:
            raise ValueError(f"queue_scale must be positive, got {queue_scale}")
        self.max_duration = float(max_duration)
        self.include_power_state = bool(include_power_state)
        self.include_queue_state = bool(include_queue_state)
        self.queue_scale = float(queue_scale)

        self.per_server_dim = (
            self.num_resources
            + (1 if include_power_state else 0)
            + (1 if include_queue_state else 0)
        )
        self.group_size = self.num_servers // self.num_groups
        self.group_dim = self.group_size * self.per_server_dim
        self.job_dim = self.num_resources + 1
        self.state_dim = self.num_groups * self.group_dim + self.job_dim

    def encode(self, cluster: Cluster, job: Job) -> np.ndarray:
        """Build the state vector at ``job``'s arrival epoch.

        Fast path: the cluster maintains its utilization / power-state /
        queue arrays incrementally (see
        :class:`~repro.sim.ledger.ClusterLedger`), so encoding is slice
        assignment into one preallocated vector — no per-server object
        traversal at the decision epoch.

        Raises
        ------
        ValueError
            If the cluster shape disagrees with the encoder.
        """
        if len(cluster) != self.num_servers:
            raise ValueError(
                f"cluster has {len(cluster)} servers, "
                f"encoder expects {self.num_servers}"
            )
        util, power_on, queue = cluster.state_views()
        out = np.empty(self.state_dim)
        server_block = out[: self.num_servers * self.per_server_dim].reshape(
            self.num_servers, self.per_server_dim
        )
        server_block[:, : self.num_resources] = util[:, : self.num_resources]
        col = self.num_resources
        if self.include_power_state:
            server_block[:, col] = power_on
            col += 1
        if self.include_queue_state:
            np.minimum(queue / self.queue_scale, 1.0, out=server_block[:, col])
        # Job block, written in place (same values as encode_job).
        job_off = self.num_servers * self.per_server_dim
        demands = out[job_off : job_off + self.num_resources]
        demands[:] = 0.0
        take = min(len(job.resources), self.num_resources)
        demands[:take] = job.resources[:take]
        out[-1] = min(job.duration / self.max_duration, 1.0)
        return out

    def encode_job(self, job: Job) -> np.ndarray:
        """The ``s_j`` block: demands plus normalized duration."""
        demands = np.zeros(self.num_resources)
        take = min(len(job.resources), self.num_resources)
        demands[:take] = job.resources[:take]
        duration = min(job.duration / self.max_duration, 1.0)
        return np.concatenate([demands, [duration]])

    # ------------------------------------------------------------------
    # Slicing helpers for the Q-network
    # ------------------------------------------------------------------

    def split(self, states: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split a state batch into group blocks and job blocks.

        Returns ``(groups, jobs)`` with shapes
        ``(K, batch, group_dim)`` and ``(batch, job_dim)``.
        """
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        if states.shape[1] != self.state_dim:
            raise ValueError(
                f"state width {states.shape[1]} != encoder state_dim {self.state_dim}"
            )
        server_part = states[:, : self.num_groups * self.group_dim]
        jobs = states[:, self.num_groups * self.group_dim :]
        groups = server_part.reshape(-1, self.num_groups, self.group_dim)
        return np.transpose(groups, (1, 0, 2)), jobs

    def group_of_action(self, action: int) -> int:
        """Which group the server index ``action`` belongs to."""
        if not 0 <= action < self.num_servers:
            raise ValueError(f"action {action} outside [0, {self.num_servers})")
        return action // self.group_size

    def local_action(self, action: int) -> int:
        """Server index within its group."""
        return action % self.group_size

    def global_action(self, group: int, local: int) -> int:
        """Inverse of (:meth:`group_of_action`, :meth:`local_action`)."""
        if not 0 <= group < self.num_groups:
            raise ValueError(f"group {group} outside [0, {self.num_groups})")
        if not 0 <= local < self.group_size:
            raise ValueError(f"local action {local} outside [0, {self.group_size})")
        return group * self.group_size + local
