"""The paper's contribution: the hierarchical control framework.

* :mod:`repro.core.state` — global-tier state encoding (server-group
  utilizations + job descriptor).
* :mod:`repro.core.qnetwork` — the autoencoder + weight-shared Sub-Q
  deep Q-network (Fig. 6).
* :mod:`repro.core.global_tier` — the DRL job broker (offline DNN
  construction + online deep Q-learning over a continuous-time SMDP).
* :mod:`repro.core.predictor` — the LSTM inter-arrival workload predictor.
* :mod:`repro.core.local_tier` — the model-free RL timeout power manager
  (Algorithm 2).
* :mod:`repro.core.baselines` — round-robin and friends, fixed-timeout /
  always-on / immediate-sleep DPM.
* :mod:`repro.core.hierarchical` — builders wiring complete systems.
* :mod:`repro.core.federation` — the tier above the paper's hierarchy:
  cross-site dispatchers for multi-cluster federations, including a DRL
  dispatcher reusing the Sub-Q machinery over per-site aggregates.
"""

from repro.core.baselines import (
    AlwaysOnPolicy,
    FixedTimeoutPolicy,
    ImmediateSleepPolicy,
    LeastLoadedBroker,
    PackingBroker,
    RandomBroker,
    RoundRobinBroker,
)
from repro.core.config import (
    ExperimentConfig,
    GlobalTierConfig,
    LocalTierConfig,
    PredictorConfig,
)
from repro.core.federation import (
    DRLFederationBroker,
    FederationStateView,
    LeastLoadedSiteBroker,
    StaticHomeBroker,
    TariffGreedySiteBroker,
    make_federation_broker,
)
from repro.core.global_tier import DRLGlobalBroker, offline_pretrain
from repro.core.hierarchical import (
    HierarchicalSystem,
    build_drl_only,
    build_hierarchical,
    build_round_robin,
    per_server_interarrivals,
    pretrain_predictor,
)
from repro.core.local_tier import RLPowerPolicy
from repro.core.predictor import InterArrivalTracker, WorkloadPredictor
from repro.core.qnetwork import FlatQNetwork, HierarchicalQNetwork
from repro.core.rewards import (
    GlobalRewardWeights,
    global_reward_rate,
    local_reward_rate,
)
from repro.core.state import StateEncoder

__all__ = [
    "AlwaysOnPolicy",
    "FixedTimeoutPolicy",
    "ImmediateSleepPolicy",
    "LeastLoadedBroker",
    "PackingBroker",
    "RandomBroker",
    "RoundRobinBroker",
    "ExperimentConfig",
    "GlobalTierConfig",
    "LocalTierConfig",
    "PredictorConfig",
    "DRLFederationBroker",
    "DRLGlobalBroker",
    "FederationStateView",
    "LeastLoadedSiteBroker",
    "StaticHomeBroker",
    "TariffGreedySiteBroker",
    "make_federation_broker",
    "offline_pretrain",
    "HierarchicalSystem",
    "build_drl_only",
    "build_hierarchical",
    "build_round_robin",
    "per_server_interarrivals",
    "pretrain_predictor",
    "RLPowerPolicy",
    "InterArrivalTracker",
    "WorkloadPredictor",
    "FlatQNetwork",
    "HierarchicalQNetwork",
    "GlobalRewardWeights",
    "global_reward_rate",
    "local_reward_rate",
    "StateEncoder",
]
