"""Baseline brokers and power policies.

Brokers:

* :class:`RoundRobinBroker` — the paper's baseline allocation: jobs are
  dispatched evenly to each machine in turn.
* :class:`RandomBroker` — uniformly random server (used as the arbitrary
  seed policy for offline experience collection).
* :class:`LeastLoadedBroker` — greedy minimum-CPU-utilization dispatch.
* :class:`PackingBroker` — greedy consolidation: first awake server with
  room, else the first awake server, else wake the first sleeping one.

Power policies:

* :class:`AlwaysOnPolicy` — never sleep (round-robin baseline pairs with
  this: all machines stay powered).
* :class:`ImmediateSleepPolicy` — the "ad hoc" manager of Fig. 4(a):
  sleep the moment the queue drains.
* :class:`FixedTimeoutPolicy` — constant timeout (30/60/90 s in Fig. 10).
"""

from __future__ import annotations

import numpy as np

from repro.sim.cluster import Cluster
from repro.sim.interfaces import Broker, PowerPolicy
from repro.sim.job import Job
from repro.sim.server import Server


class RoundRobinBroker(Broker):
    """Dispatch job i to server i mod M."""

    def __init__(self) -> None:
        self._cursor = 0

    def select_server(self, job: Job, cluster: Cluster, now: float) -> int:
        choice = self._cursor % len(cluster)
        self._cursor += 1
        return choice


class RandomBroker(Broker):
    """Uniformly random dispatch (seed policy for offline DRL training)."""

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def select_server(self, job: Job, cluster: Cluster, now: float) -> int:
        return int(self.rng.integers(len(cluster)))


class LeastLoadedBroker(Broker):
    """Send each job to the server with the lowest CPU commitment.

    Commitment counts both running and queued jobs, so the broker does
    not dogpile a server that is momentarily idle but has a deep queue.
    """

    def select_server(self, job: Job, cluster: Cluster, now: float) -> int:
        def commitment(server: Server) -> float:
            queued = sum(j.resources[0] for j in server.pending)
            return float(server.used[0]) + queued

        loads = [commitment(s) for s in cluster.servers]
        return int(np.argmin(loads))


class PackingBroker(Broker):
    """Greedy consolidation heuristic.

    Prefers, in order: the lowest-index awake server where the job fits
    right now; the awake server with the shortest queue; the lowest-index
    sleeping server (paying the boot cost to expand capacity).
    """

    def select_server(self, job: Job, cluster: Cluster, now: float) -> int:
        awake = [s for s in cluster.servers if s.state.is_on]
        for server in awake:
            if not server.pending and server.fits(job):
                return server.server_id
        asleep = [s for s in cluster.servers if not s.state.is_on]
        if asleep and all(s.jobs_in_system > 0 for s in awake):
            return asleep[0].server_id
        if awake:
            return min(awake, key=lambda s: (s.jobs_in_system, s.server_id)).server_id
        return 0


class AlwaysOnPolicy(PowerPolicy):
    """Never shut down: idle servers stay idle."""

    def on_idle(self, server: Server, now: float) -> float:
        return PowerPolicy.NEVER


class ImmediateSleepPolicy(PowerPolicy):
    """The ad-hoc manager of Fig. 4(a): sleep as soon as the queue drains."""

    def on_idle(self, server: Server, now: float) -> float:
        return 0.0


class FixedTimeoutPolicy(PowerPolicy):
    """Constant-timeout DPM (the fixed 30/60/90 s baselines of Fig. 10).

    Raises
    ------
    ValueError
        On a negative timeout.
    """

    def __init__(self, timeout: float) -> None:
        if timeout < 0:
            raise ValueError(f"timeout must be non-negative, got {timeout}")
        self.timeout = float(timeout)

    def on_idle(self, server: Server, now: float) -> float:
        return self.timeout
