"""Federation-tier dispatchers: the broker above the cluster brokers.

Four policies mirror the cluster-tier comparison set one level up:

* :class:`StaticHomeBroker` — every job runs at the site whose workload
  stream emitted it (per-site autonomy, the baseline).
* :class:`LeastLoadedSiteBroker` — greedy cross-site balancing by jobs
  in system per server.
* :class:`TariffGreedySiteBroker` — price- or carbon-greedy: route to
  the site whose electricity is cheapest / cleanest *right now*
  (follow-the-sun / carbon-aware dispatch), tie-broken by load.
* :class:`DRLFederationBroker` — the learned dispatcher. It reuses the
  paper's entire Sub-Q machinery unchanged by presenting the federation
  as a "cluster of sites": :class:`FederationStateView` aggregates each
  site's :class:`~repro.sim.ledger.ClusterLedger` into one per-site
  feature row (mean utilization, fraction of servers on, queued jobs),
  which :class:`~repro.core.state.StateEncoder` encodes exactly as it
  encodes servers, and an inner
  :class:`~repro.core.global_tier.DRLGlobalBroker` learns over fleet
  aggregates with the same SMDP rewards, replay memory, and ε schedule.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.config import GlobalTierConfig
from repro.obs import telemetry as obs
from repro.core.global_tier import DRLGlobalBroker
from repro.core.qnetwork import HierarchicalQNetwork
from repro.core.state import StateEncoder
from repro.sim.federation import Site
from repro.sim.interfaces import FederationBroker
from repro.sim.job import Job

#: Named federation policies the scenario layer can request.
FEDERATION_POLICY_NAMES = (
    "home",
    "least-loaded",
    "price-greedy",
    "carbon-greedy",
    "drl",
)


class StaticHomeBroker(FederationBroker):
    """Per-site autonomy: every job runs where its stream homed it."""

    def select_site(
        self, job: Job, sites: Sequence[Site], home: int, now: float
    ) -> int:
        return home


def _site_load(site: Site) -> float:
    """Jobs in system per server — the cross-site balancing signal."""
    return site.cluster.jobs_in_system() / len(site.cluster)


class LeastLoadedSiteBroker(FederationBroker):
    """Greedy balancing: send the job to the least-loaded site.

    Load is jobs in system (waiting + running) normalized by fleet size,
    so a 10-server site and a 40-server site compare fairly. Ties keep
    the home site when it is among the minima, else the lowest index —
    deterministic either way.
    """

    def select_site(
        self, job: Job, sites: Sequence[Site], home: int, now: float
    ) -> int:
        for site in sites:
            site.cluster.sync(now)
        loads = [_site_load(site) for site in sites]
        best = min(loads)
        if loads[home] == best:
            return home
        return loads.index(best)


class TariffGreedySiteBroker(FederationBroker):
    """Route to the site with the cheapest (or cleanest) electricity now.

    Parameters
    ----------
    mode:
        ``"price"`` reads :meth:`~repro.sim.power.TariffModel.price_at`,
        ``"carbon"`` reads
        :meth:`~repro.sim.power.TariffModel.carbon_at`. Sites without a
        tariff rank last (``inf``); if no site carries one the job stays
        home.
    tolerance:
        Sites whose signal is within ``tolerance`` (relative) of the
        minimum count as equally cheap; among those the least-loaded
        wins, so a flat tariff plateau still balances load instead of
        piling everything on site 0.
    """

    def __init__(self, mode: str = "price", tolerance: float = 0.0) -> None:
        if mode not in ("price", "carbon"):
            raise ValueError(f"mode must be 'price' or 'carbon', got {mode!r}")
        if tolerance < 0.0:
            raise ValueError(f"tolerance must be non-negative, got {tolerance}")
        self.mode = mode
        self.tolerance = tolerance

    def _signal(self, site: Site, now: float) -> float:
        if site.tariff is None:
            return math.inf
        if self.mode == "price":
            return site.tariff.price_at(now)
        return site.tariff.carbon_at(now)

    def select_site(
        self, job: Job, sites: Sequence[Site], home: int, now: float
    ) -> int:
        signals = [self._signal(site, now) for site in sites]
        best = min(signals)
        if math.isinf(best):
            return home
        cutoff = best * (1.0 + self.tolerance)
        candidates = [i for i, s in enumerate(signals) if s <= cutoff]
        if len(candidates) == 1:
            return candidates[0]
        for site in sites:
            site.cluster.sync(now)
        loads = [(_site_load(sites[i]), i) for i in candidates]
        return min(loads)[1]


class FederationStateView:
    """Presents a federation as a "cluster of sites" to the DRL machinery.

    Exposes exactly the surface :class:`~repro.core.state.StateEncoder`
    and :class:`~repro.core.global_tier.DRLGlobalBroker` consume from a
    :class:`~repro.sim.cluster.Cluster` — ``state_views()``, ``len()``,
    and the reward-rate integrals — with each *site* aggregated into one
    row: mean per-resource utilization over its servers, fraction of
    servers on, and total queued jobs. All reads come straight off the
    sites' :class:`~repro.sim.ledger.ClusterLedger` arrays; callers must
    ``sync`` the clusters first (the brokers here do).
    """

    def __init__(self, sites: Sequence[Site], num_resources: int = 3) -> None:
        if not sites:
            raise ValueError("a federation view needs at least one site")
        self.sites = list(sites)
        self.num_resources = int(num_resources)
        n = len(self.sites)
        self._util = np.zeros((n, self.num_resources))
        self._on = np.zeros(n)
        self._queue = np.zeros(n)

    def __len__(self) -> int:
        return len(self.sites)

    def state_views(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-site ``(utilization, on-fraction, queue)`` aggregate rows."""
        tel = obs.active()
        if tel is None:
            return self._compute_views()
        with tel.span("fed.state_view"):
            return self._compute_views()

    def _compute_views(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        for i, site in enumerate(self.sites):
            ledger = site.cluster.ledger
            self._util[i] = ledger.util[:, : self.num_resources].mean(axis=0)
            self._on[i] = ledger.on.mean()
            self._queue[i] = ledger.queue.sum()
        return self._util, self._on, self._queue

    # Fleet-wide reward integrals (sums over the member ledgers).

    def total_energy(self) -> float:
        return sum(site.cluster.total_energy() for site in self.sites)

    def system_integral(self) -> float:
        return sum(site.cluster.system_integral() for site in self.sites)

    def overload_integral(self) -> float:
        return sum(site.cluster.overload_integral() for site in self.sites)


def federation_encoder(
    num_sites: int, num_resources: int = 3, num_groups: int | None = None
) -> StateEncoder:
    """The site-granular state encoder a DRL federation dispatcher uses.

    One "server" per site; by default every site is its own group (K =
    S), so the shared Sub-Q scores each site from its own aggregate
    block plus the autoencoder code — the same weight-sharing trick the
    paper uses across server groups, now across sites.
    """
    if num_sites < 1:
        raise ValueError(f"num_sites must be positive, got {num_sites}")
    return StateEncoder(
        num_servers=num_sites,
        num_resources=num_resources,
        num_groups=num_groups if num_groups is not None else num_sites,
    )


#: Compact default hyper-parameters for the federation tier: site-level
#: states are a few features wide, so the paper's 30/15 autoencoder and
#: 128-unit Sub-Q are replaced with proportionally small layers.
FEDERATION_TIER_DEFAULTS = dict(autoencoder_hidden=(16, 8), subq_hidden=(32,))


class DRLFederationBroker(FederationBroker):
    """Learned cross-site dispatch on the paper's Sub-Q machinery.

    Wraps a :class:`~repro.core.global_tier.DRLGlobalBroker` whose
    "cluster" is a :class:`FederationStateView` and whose "servers" are
    the sites. Decision epochs are fleet-wide job arrivals; rewards
    accumulate the same Eqn.-4 terms (power, jobs in system, hot spots)
    over the *whole fleet*, so the dispatcher learns to place load where
    it hurts the federation least.

    Parameters
    ----------
    num_sites:
        S, the number of member sites.
    config:
        Hyper-parameters; defaults to :data:`GlobalTierConfig` with
        :data:`FEDERATION_TIER_DEFAULTS` layer sizes.
    qnetwork:
        Optionally a pre-built / warm-started network (checkpoints).
    """

    obs_spans = True  # opens fed.state_view + qnet.train_step spans

    def __init__(
        self,
        num_sites: int,
        config: GlobalTierConfig | None = None,
        num_resources: int = 3,
        qnetwork: HierarchicalQNetwork | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.num_sites = int(num_sites)
        encoder = federation_encoder(num_sites, num_resources)
        if config is None:
            config = GlobalTierConfig(
                num_groups=encoder.num_groups, **FEDERATION_TIER_DEFAULTS
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        if qnetwork is None:
            qnetwork = HierarchicalQNetwork(
                encoder,
                autoencoder_hidden=config.autoencoder_hidden,
                subq_hidden=config.subq_hidden,
                rng=rng,
            )
        self.agent = DRLGlobalBroker(encoder, config, qnetwork=qnetwork, rng=rng)
        self._view: FederationStateView | None = None
        self._view_key: tuple[int, ...] = ()

    def _view_for(self, sites: Sequence[Site]) -> FederationStateView:
        key = tuple(map(id, sites))
        if self._view is None or self._view_key != key:
            if len(sites) != self.num_sites:
                raise ValueError(
                    f"broker was built for {self.num_sites} sites, got "
                    f"{len(sites)}"
                )
            self._view = FederationStateView(
                sites, num_resources=self.agent.encoder.num_resources
            )
            self._view_key = key
        return self._view

    def select_site(
        self, job: Job, sites: Sequence[Site], home: int, now: float
    ) -> int:
        view = self._view_for(sites)
        for site in sites:
            site.cluster.sync(now)
        return self.agent.select_server(job, view, now)

    def on_run_end(self, sites: Sequence[Site], now: float) -> None:
        self.agent.on_run_end(None, now)
        self._view = None  # the next run rebuilds against fresh clusters

    def freeze(self) -> None:
        """Greedy evaluation mode: no exploration, no training."""
        self.agent.freeze()

    @property
    def qnet(self) -> HierarchicalQNetwork:
        return self.agent.qnet

    @property
    def epsilon(self) -> float:
        return self.agent.epsilon

    @epsilon.setter
    def epsilon(self, value: float) -> None:
        self.agent.epsilon = value


def make_federation_broker(
    policy: str,
    num_sites: int,
    num_resources: int = 3,
    qnetwork: HierarchicalQNetwork | None = None,
    rng: np.random.Generator | None = None,
) -> FederationBroker | None:
    """Build a named federation-tier dispatcher.

    Returns ``None`` for ``"home"`` — the engine then routes every job
    to its home site without any broker call, which keeps the
    single-cluster fast path overhead-free.

    Raises
    ------
    ValueError
        On an unknown policy name.
    """
    if policy == "home":
        return None
    if policy == "least-loaded":
        return LeastLoadedSiteBroker()
    if policy == "price-greedy":
        return TariffGreedySiteBroker(mode="price")
    if policy == "carbon-greedy":
        return TariffGreedySiteBroker(mode="carbon")
    if policy == "drl":
        return DRLFederationBroker(
            num_sites, num_resources=num_resources, qnetwork=qnetwork, rng=rng
        )
    raise ValueError(
        f"unknown federation policy {policy!r}; known: {FEDERATION_POLICY_NAMES}"
    )
