"""The local tier: model-free RL power manager (Sec. VI-B, Algorithm 2).

Each server runs its own power manager, in a fully distributed manner.
The manager's decision epochs are the three cases of Sec. VI-B:

1. the machine goes idle with an empty queue — choose a timeout from the
   action set (0 means shut down immediately);
2. the machine is idle and a job arrives — single forced action
   (start working);
3. the machine is asleep and a job arrives — single forced action
   (boot, then work).

The RL state is ``(epoch kind, predicted inter-arrival category)``: the
machine power state plus the LSTM predictor's discretized estimate of the
next inter-arrival time. Value updates follow continuous-time Q-learning
for SMDP (Eqn. 2) with reward rate ``-w P(t) - (1 - w) JQ(t)`` (Eqn. 5),
computed exactly from the server's energy and job-time integrals over
each sojourn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.core.config import LocalTierConfig
from repro.core.predictor import InterArrivalTracker, WorkloadPredictor
from repro.core.rewards import local_reward_rate
from repro.rl.smdp import SMDPQLearner
from repro.sim.interfaces import PowerPolicy
from repro.sim.job import Job
from repro.sim.server import Server

#: Epoch kinds used in RL state keys.
IDLE, WAKE_IDLE, WAKE_SLEEP = "idle", "wake_idle", "wake_sleep"


@dataclass
class _Pending:
    """The (s, a) awaiting its value update at the next decision epoch."""

    state: Hashable
    action: int
    n_actions: int
    time: float
    energy: float
    queue_integral: float


class RLPowerPolicy(PowerPolicy):
    """Adaptive timeout policy learned online with SMDP Q-learning.

    Parameters
    ----------
    config:
        Timeout action set, reward weight w, and learning parameters.
    predictor:
        The LSTM workload predictor. May be shared across servers (it is
        stateless per prediction); each policy instance keeps its own
        :class:`InterArrivalTracker`.
    learner:
        Optional externally-supplied Q-learner. By default each policy
        owns a private learner (the paper's distributed setting); passing
        a shared learner pools experience across servers.
    """

    def __init__(
        self,
        config: LocalTierConfig | None = None,
        predictor: WorkloadPredictor | None = None,
        learner: SMDPQLearner | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config if config is not None else LocalTierConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.predictor = (
            predictor
            if predictor is not None
            else WorkloadPredictor(self.config.predictor, rng=self.rng)
        )
        self.learner = (
            learner
            if learner is not None
            else SMDPQLearner(
                beta=self.config.beta,
                alpha=self.config.alpha,
                epsilon=self.config.epsilon_start,
                epsilon_decay=self.config.epsilon_decay,
                epsilon_floor=self.config.epsilon_floor,
                rng=self.rng,
            )
        )
        self.tracker = InterArrivalTracker(self.config.predictor.lookback)
        self._pending: _Pending | None = None
        self.learning_enabled = True
        self.decision_epochs = 0

    # ------------------------------------------------------------------
    # RL state construction
    # ------------------------------------------------------------------

    def _state(self, kind: str) -> tuple[str, int]:
        return (kind, self.predictor.predict_category(self.tracker))

    def _n_actions(self, kind: str) -> int:
        return len(self.config.timeouts) if kind == IDLE else 1

    # ------------------------------------------------------------------
    # Value updates
    # ------------------------------------------------------------------

    def _complete_pending(
        self, server: Server, now: float, next_state: Hashable, next_n: int
    ) -> None:
        pending = self._pending
        if pending is None or not self.learning_enabled:
            return
        tau = now - pending.time
        if tau <= 0:
            # Zero-length sojourn (e.g. simultaneous events): nothing to learn.
            return
        reward_rate = local_reward_rate(
            self.config.w,
            energy_delta=server.energy_joules - pending.energy,
            queue_time_delta=server.queue_integral - pending.queue_integral,
            tau=tau,
            power_scale=self.config.power_scale,
        )
        self.learner.update(
            pending.state,
            pending.action,
            reward_rate,
            tau,
            next_state,
            pending.n_actions,
            next_n,
        )

    def _record(
        self, server: Server, now: float, state: Hashable, action: int, n_actions: int
    ) -> None:
        self._pending = _Pending(
            state=state,
            action=action,
            n_actions=n_actions,
            time=now,
            energy=server.energy_joules,
            queue_integral=server.queue_integral,
        )

    # ------------------------------------------------------------------
    # PowerPolicy interface (the three decision epochs)
    # ------------------------------------------------------------------

    def on_idle(self, server: Server, now: float) -> float:
        """Decision epoch 1: choose a timeout value ε-greedily."""
        self.decision_epochs += 1
        state = self._state(IDLE)
        n = self._n_actions(IDLE)
        self._complete_pending(server, now, state, n)
        if self.learning_enabled:
            action = self.learner.select_action(state, n)
        else:
            action = self.learner.greedy_action(state, n)
        self._record(server, now, state, action, n)
        return float(self.config.timeouts[action])

    def on_active(self, server: Server, now: float, from_sleep: bool) -> None:
        """Decision epochs 2 and 3: single forced action, value update only."""
        self.decision_epochs += 1
        kind = WAKE_SLEEP if from_sleep else WAKE_IDLE
        state = self._state(kind)
        self._complete_pending(server, now, state, 1)
        self._record(server, now, state, 0, 1)

    def on_job_assigned(self, server: Server, job: Job, now: float) -> None:
        """Feed the predictor's per-server inter-arrival window."""
        self.tracker.observe(now)

    def on_run_end(self, server: Server, now: float) -> None:
        """Flush the last open sojourn against a terminal idle state."""
        if self._pending is not None:
            self._complete_pending(
                server, now, self._state(IDLE), self._n_actions(IDLE)
            )
            self._pending = None
        self.tracker.new_run()

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------

    def freeze(self) -> None:
        """Stop exploring and learning (pure exploitation)."""
        self.learning_enabled = False

    def timeout_values(self) -> tuple[float, ...]:
        return self.config.timeouts
