"""Configuration dataclasses for the two tiers and whole experiments.

Defaults follow the paper's stated hyper-parameters wherever it states
them: autoencoder layers of 30 and 15 ELUs, Sub-Q hidden layer of 128
ELUs, K between 2 and 4 groups, Q-learning discount rate beta = 0.5,
gradient clipping at norm 10, LSTM with 35 look-back steps and 30 hidden
units, P(0%) = 87 W / P(100%) = 145 W, and Ton = Toff = 30 s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.power import PowerModel


@dataclass(frozen=True)
class GlobalTierConfig:
    """Hyper-parameters of the DRL-based global tier.

    Parameters
    ----------
    num_groups:
        K, the number of server groups (paper: 2–4).
    autoencoder_hidden:
        Encoder widths; last entry is the code dimension (paper: 30, 15).
    subq_hidden:
        Sub-Q hidden widths (paper: a single layer of 128 ELUs).
    beta:
        Continuous-time discount rate of Eqn. (2). The paper states 0.5;
        at our simulated arrival intensity (~6 s sojourns) that kills the
        bootstrap tail (e^{-0.5*6} ≈ 0.05) and with it all multi-epoch
        credit assignment, so the default is 0.05 (≈100 s half-life).
        Set 0.5 to reproduce the paper's literal value.
    w_power, w_vms, w_reliability:
        Reward weights of Eqn. (4) applied to the average power draw
        (watts), jobs in system, and the hot-spot measure over each
        sojourn. Scales chosen so each term is O(1).
    epsilon_start, epsilon_floor, epsilon_decay:
        ε-greedy schedule for online action selection.
    replay_capacity:
        Experience memory capacity N_D.
    batch_size:
        Minibatch size for DNN updates.
    train_interval:
        Decision epochs between online DNN update steps (the paper
        retrains at the end of each execution sequence).
    learning_rate:
        Adam step size.
    max_grad_norm:
        Gradient-norm clip (paper: 10).
    include_power_state, include_queue_state:
        Extend each server's state with an on/off indicator and a
        saturating queue-depth feature. The paper's state lists
        utilizations only, which is Markov-deficient under FCFS
        head-of-line blocking (see StateEncoder); both default on, and
        the ablation bench measures their effect.
    normalize_values:
        Learn ``beta * Q`` instead of ``Q`` — a pure affine rescaling
        that keeps DNN targets O(reward-rate) instead of
        O(reward-rate / beta). Without it, Eqn. (2) targets are so large
        relative to the norm-10 gradient clip that the network barely
        moves and the policy stays random. Argmax (and hence the policy)
        is unchanged.
    reward_clip:
        Clamp reward *rates* to ``[-reward_clip, reward_clip]`` before
        discounting (the DQN reward-clipping trick; None disables).
        Early-training queue explosions otherwise produce unbounded
        targets that destabilize the network.
    huber_delta:
        Use a Huber loss with this delta for DNN regression instead of
        MSE (None selects MSE), further bounding outlier gradients.
    """

    num_groups: int = 3
    autoencoder_hidden: tuple[int, ...] = (30, 15)
    subq_hidden: tuple[int, ...] = (128,)
    beta: float = 0.05
    w_power: float = 1e-3
    w_vms: float = 0.1
    w_reliability: float = 1.0
    epsilon_start: float = 0.15
    epsilon_floor: float = 0.02
    epsilon_decay: float = 0.9995
    replay_capacity: int = 50_000
    batch_size: int = 32
    train_interval: int = 8
    learning_rate: float = 1e-3
    max_grad_norm: float = 10.0
    include_power_state: bool = True
    include_queue_state: bool = True
    normalize_values: bool = True
    reward_clip: float | None = 10.0
    huber_delta: float | None = 1.0

    def __post_init__(self) -> None:
        if self.num_groups < 1:
            raise ValueError(f"num_groups must be positive, got {self.num_groups}")
        if self.beta < 0:
            raise ValueError(f"beta must be non-negative, got {self.beta}")
        if self.train_interval < 1:
            raise ValueError("train_interval must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")


@dataclass(frozen=True)
class PredictorConfig:
    """Hyper-parameters of the LSTM workload predictor (Sec. VI-A)."""

    lookback: int = 35
    hidden_units: int = 30
    n_categories: int = 4
    min_interarrival: float = 1.0
    max_interarrival: float = 3600.0
    learning_rate: float = 1e-3
    epochs: int = 10
    batch_size: int = 32
    init: str = "xavier"
    log_scale: bool = True

    def __post_init__(self) -> None:
        if self.lookback < 1:
            raise ValueError(f"lookback must be positive, got {self.lookback}")
        if self.n_categories < 1:
            raise ValueError(f"n_categories must be positive, got {self.n_categories}")
        if not 0 < self.min_interarrival < self.max_interarrival:
            raise ValueError("need 0 < min_interarrival < max_interarrival")


@dataclass(frozen=True)
class LocalTierConfig:
    """Hyper-parameters of the RL-based power manager (Sec. VI-B).

    Parameters
    ----------
    timeouts:
        The action set A: candidate timeout values in seconds, including
        0 (immediate shutdown).
    w:
        Power-vs-latency weight of Eqn. (5); the trade-off knob swept for
        Fig. 10.
    beta, alpha:
        SMDP discount rate and learning rate of Eqn. (2).
    epsilon_start, epsilon_floor, epsilon_decay:
        ε-greedy schedule.
    power_scale:
        Watts that count as "1.0" in the reward so the power and queue
        terms are commensurate (defaults to the peak power).
    """

    timeouts: tuple[float, ...] = (0.0, 30.0, 60.0, 90.0, 120.0)
    w: float = 0.5
    beta: float = 0.01
    alpha: float = 0.2
    epsilon_start: float = 0.3
    epsilon_floor: float = 0.02
    epsilon_decay: float = 0.995
    power_scale: float = 145.0
    predictor: PredictorConfig = field(default_factory=PredictorConfig)

    def __post_init__(self) -> None:
        if not self.timeouts:
            raise ValueError("timeouts must be non-empty")
        if any(t < 0 for t in self.timeouts):
            raise ValueError("timeouts must be non-negative")
        if not 0.0 <= self.w <= 1.0:
            raise ValueError(f"w must be in [0, 1], got {self.w}")
        if self.power_scale <= 0:
            raise ValueError("power_scale must be positive")


@dataclass(frozen=True)
class ExperimentConfig:
    """One simulation cell: cluster size, physics, and both tiers.

    ``power_model`` is the reference (homogeneous) server model; setting
    ``power_models`` to one model per server instead builds a
    heterogeneous fleet (mixed efficiency generations), in which case
    ``power_model`` is only used for cluster-level reward scales.
    """

    num_servers: int = 30
    num_resources: int = 3
    power_model: PowerModel = field(default_factory=PowerModel)
    power_models: tuple[PowerModel, ...] | None = None
    overload_threshold: float = 0.9
    global_tier: GlobalTierConfig = field(default_factory=GlobalTierConfig)
    local_tier: LocalTierConfig = field(default_factory=LocalTierConfig)
    seed: int = 0
    record_every: int = 100

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ValueError(f"num_servers must be positive, got {self.num_servers}")
        if self.num_servers % self.global_tier.num_groups != 0:
            raise ValueError(
                f"num_servers ({self.num_servers}) must be divisible by "
                f"num_groups ({self.global_tier.num_groups})"
            )
        if self.power_models is not None and len(self.power_models) != self.num_servers:
            raise ValueError(
                f"power_models has {len(self.power_models)} entries for "
                f"{self.num_servers} servers"
            )

    @property
    def fleet_power_models(self) -> "PowerModel | tuple[PowerModel, ...]":
        """What the simulator should build: per-server models or the shared one."""
        return self.power_models if self.power_models is not None else self.power_model
