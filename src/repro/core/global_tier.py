"""The global tier: DRL-based cloud resource allocation (Sec. V).

The job broker is the DRL agent; the server cluster is the environment.
Decision epochs are job arrivals (continuous-time, event-driven), the
action is the index of the target server, and the reward is Eqn. (4) —
a negatively-weighted combination of total power, number of VMs in the
system (∝ latency by Little's law), and the reliability (hot-spot)
objective — accumulated exactly over each sojourn from the simulator's
time integrals.

Training follows Algorithm 1: an offline phase collects transition
profiles under a seed policy into the experience memory, pre-trains the
autoencoder on group states and the Sub-Q network on SMDP targets; the
online phase continues ε-greedy deep Q-learning, updating the DNN from
replayed minibatches with gradients clipped to norm 10.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Sequence

import numpy as np

from repro.core.config import GlobalTierConfig
from repro.core.qnetwork import HierarchicalQNetwork
from repro.core.rewards import GlobalRewardWeights, global_reward_rate
from repro.core.state import StateEncoder
from repro.rl.policies import epsilon_greedy_choice
from repro.rl.replay import ReplayMemory, Transition
from repro.rl.smdp import smdp_discounted_reward
from repro.sim.cluster import Cluster
from repro.sim.engine import build_simulation
from repro.sim.interfaces import Broker, PowerPolicy
from repro.sim.job import Job
from repro.sim.power import PowerModel


class DRLGlobalBroker(Broker):
    """Deep-RL job broker (the paper's global tier).

    Parameters
    ----------
    encoder:
        State encoder fixing M, D, K and the state layout.
    config:
        Hyper-parameters (reward weights, ε schedule, replay, training).
    qnetwork:
        Optionally a pre-built/pre-trained network; a fresh one is
        created otherwise.
    behavior:
        Optional override broker. When set, actions come from it while
        this agent still observes states and records transitions — the
        offline experience-collection mode of Algorithm 1 lines 1–3.
    """

    obs_spans = True  # opens qnet.train_step spans while learning

    def __init__(
        self,
        encoder: StateEncoder,
        config: GlobalTierConfig | None = None,
        qnetwork: HierarchicalQNetwork | None = None,
        behavior: Broker | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.encoder = encoder
        self.config = config if config is not None else GlobalTierConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.qnet = (
            qnetwork
            if qnetwork is not None
            else HierarchicalQNetwork(
                encoder,
                autoencoder_hidden=self.config.autoencoder_hidden,
                subq_hidden=self.config.subq_hidden,
                rng=self.rng,
            )
        )
        self.weights = GlobalRewardWeights(
            self.config.w_power, self.config.w_vms, self.config.w_reliability
        )
        self.replay = ReplayMemory(self.config.replay_capacity)
        self.optimizer = self.qnet.make_optimizer(self.config.learning_rate)
        self.behavior = behavior
        # Value rescaling: learn beta * Q so DNN targets stay O(reward
        # rate); see GlobalTierConfig.normalize_values.
        self._reward_scale = (
            self.config.beta
            if self.config.normalize_values and self.config.beta > 0
            else 1.0
        )
        self.epsilon = self.config.epsilon_start
        self.training_enabled = True
        self.decision_epochs = 0
        self.loss_history: deque[float] = deque(maxlen=1000)
        self._pending: tuple[np.ndarray, int, float, float, float, float] | None = None

    # ------------------------------------------------------------------
    # Broker interface
    # ------------------------------------------------------------------

    def select_server(self, job: Job, cluster: Cluster, now: float) -> int:
        """One decision epoch: record the previous transition, pick a server."""
        state = self.encoder.encode(cluster, job)
        energy = cluster.total_energy()
        vm_time = cluster.system_integral()
        overload = cluster.overload_integral()

        if self._pending is not None:
            prev_state, prev_action, t0, e0, v0, o0 = self._pending
            tau = now - t0
            if tau > 0:
                rate = global_reward_rate(
                    self.weights, energy - e0, vm_time - v0, overload - o0, tau
                )
                if self.config.reward_clip is not None:
                    rate = max(
                        min(rate, self.config.reward_clip),
                        -self.config.reward_clip,
                    )
            else:
                rate = 0.0
            reward = self._reward_scale * smdp_discounted_reward(
                rate, tau, self.config.beta
            )
            self.replay.push(Transition(prev_state, prev_action, reward, state, tau))

        if self.behavior is not None:
            action = self.behavior.select_server(job, cluster, now)
        else:
            q = self.qnet.q_values(state)
            action = epsilon_greedy_choice(q, self.epsilon, self.rng)
            if self.training_enabled:
                # Anneal only while learning; freeze() pins epsilon at 0.
                self.epsilon = max(
                    self.config.epsilon_floor,
                    self.epsilon * self.config.epsilon_decay,
                )

        self._pending = (state, action, now, energy, vm_time, overload)
        self.decision_epochs += 1

        if (
            self.training_enabled
            and self.behavior is None
            and len(self.replay) >= self.config.batch_size
            and self.decision_epochs % self.config.train_interval == 0
        ):
            self.train_minibatch()
        return action

    def on_run_end(self, cluster: Cluster, now: float) -> None:
        """Drop the open sojourn; the next run starts a fresh chain."""
        self._pending = None

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------

    def train_minibatch(self, batch_size: int | None = None) -> float:
        """One DNN update from replayed transitions (deep Q-learning step).

        Targets follow Eqn. (2): sojourn-discounted reward (already stored
        in the transition) plus ``e^{-beta tau} max_a' Q(s', a')`` from the
        current network. Returns the minibatch loss.

        Raises
        ------
        ValueError
            If the replay memory is empty.
        """
        states, actions, rewards, next_states, taus = self.replay.sample_arrays(
            batch_size or self.config.batch_size, self.rng
        )
        next_max = self.qnet.predict(next_states).max(axis=1)
        targets = rewards + np.exp(-self.config.beta * taus) * next_max
        loss = self.qnet.train_step(
            states,
            actions,
            targets,
            self.optimizer,
            self.config.max_grad_norm,
            huber_delta=self.config.huber_delta,
        )
        self.loss_history.append(loss)
        return loss

    def freeze(self) -> None:
        """Greedy evaluation mode: no exploration, no training."""
        self.epsilon = 0.0
        self.training_enabled = False


def offline_pretrain(
    broker: DRLGlobalBroker,
    traces: Sequence[Sequence[Job]],
    policy_factory: Callable[[], Sequence[PowerPolicy] | PowerPolicy],
    seed_broker_factory: Callable[[], Broker] | None = None,
    power_model: PowerModel | Sequence[PowerModel] | None = None,
    initially_on: bool = False,
    autoencoder_epochs: int = 10,
    q_epochs: int = 3,
    batches_per_epoch: int = 200,
    max_pretrain_states: int = 5000,
) -> dict[str, list[float]]:
    """Offline DNN construction (Algorithm 1, lines 1–4).

    Runs each trace through the simulator under a seed policy (default:
    round-robin, i.e. an "arbitrary policy") while the DRL broker records
    state-transition profiles into its experience memory; then pre-trains
    the shared autoencoder on observed group states and the Sub-Q network
    on SMDP targets sampled from the memory.

    Parameters
    ----------
    broker:
        The DRL broker to pre-train (its replay memory is filled in
        place).
    traces:
        Training job traces — the paper uses workloads of five different
        M-machine clusters.
    policy_factory:
        Builds fresh local-tier policies for each collection run.
    seed_broker_factory:
        Behavior policy for experience collection; default round-robin.

    Returns
    -------
    dict with ``"autoencoder"`` and ``"q"`` per-epoch loss histories.
    """
    from repro.core.baselines import RoundRobinBroker

    if not traces:
        raise ValueError("offline_pretrain needs at least one trace")
    num_servers = broker.encoder.num_servers
    broker.behavior = (
        seed_broker_factory() if seed_broker_factory is not None else RoundRobinBroker()
    )
    try:
        for trace in traces:
            engine = build_simulation(
                num_servers=num_servers,
                broker=broker,
                policies=policy_factory(),
                power_model=power_model,
                num_resources=broker.encoder.num_resources,
                initially_on=initially_on,
            )
            engine.run(list(trace))
    finally:
        broker.behavior = None

    if len(broker.replay) == 0:
        raise ValueError("experience collection produced no transitions")

    all_states = np.stack([tr.state for tr in broker.replay])
    if all_states.shape[0] > max_pretrain_states:
        idx = broker.rng.choice(all_states.shape[0], max_pretrain_states, replace=False)
        all_states = all_states[idx]
    ae_history = broker.qnet.pretrain_autoencoder(
        all_states, epochs=autoencoder_epochs, rng=broker.rng
    )

    q_history: list[float] = []
    for _ in range(q_epochs):
        epoch_loss = 0.0
        for _ in range(batches_per_epoch):
            epoch_loss += broker.train_minibatch()
        q_history.append(epoch_loss / batches_per_epoch)
    return {"autoencoder": ae_history, "q": q_history}
