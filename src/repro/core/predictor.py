"""LSTM-based workload predictor (Sec. VI-A).

Predicts the next job inter-arrival time at a server from the previous 35
inter-arrival times, then discretizes the prediction into ``n`` predefined
categories — those categories are the workload component of the power
manager's RL state.

The inter-arrival sequence observed by each server is the *result of the
global tier's allocations*, so each server keeps its own
:class:`InterArrivalTracker`, while the LSTM network itself (trained
offline on trace inter-arrivals, refined online if enabled) may be shared
across servers — the same weight-sharing rationale the paper applies to
the Sub-Q networks.

Before the network has been fitted (or while a server has seen fewer than
``lookback`` arrivals) the predictor falls back to the last observed
inter-arrival, which mirrors the simple predictors of earlier DPM work.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.config import PredictorConfig
from repro.nn.lstm import LSTMNetwork


class InterArrivalTracker:
    """Per-server sliding window of observed inter-arrival times."""

    def __init__(self, lookback: int) -> None:
        if lookback < 1:
            raise ValueError(f"lookback must be positive, got {lookback}")
        self.lookback = int(lookback)
        self._window: deque[float] = deque(maxlen=lookback)
        self._last_arrival: float | None = None
        self.observations = 0

    def observe(self, now: float) -> float | None:
        """Record an arrival; returns the new inter-arrival time (or None).

        The first arrival establishes the reference point and yields None.
        """
        if self._last_arrival is None:
            self._last_arrival = now
            return None
        delta = now - self._last_arrival
        if delta < 0:
            raise ValueError(
                f"arrival time went backwards: {now} < {self._last_arrival}"
            )
        self._last_arrival = now
        self._window.append(delta)
        self.observations += 1
        return delta

    def new_run(self) -> None:
        """Reset the arrival reference for a fresh simulation run.

        The observed window is kept — inter-arrival statistics carry over
        between runs — but the absolute-time anchor does not.
        """
        self._last_arrival = None

    @property
    def ready(self) -> bool:
        """Whether a full look-back window is available."""
        return len(self._window) == self.lookback

    def window(self) -> np.ndarray:
        """Current window (may be shorter than ``lookback``)."""
        return np.array(self._window, dtype=np.float64)

    def last(self) -> float | None:
        """Most recent inter-arrival time, if any."""
        return self._window[-1] if self._window else None


class WorkloadPredictor:
    """LSTM inter-arrival predictor with category discretization.

    Parameters
    ----------
    config:
        Look-back length, hidden units, category count, and normalization
        bounds. Inter-arrival times are log-transformed before entering
        the network (they span orders of magnitude) when
        ``config.log_scale`` is set.
    """

    def __init__(
        self,
        config: PredictorConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config if config is not None else PredictorConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.network = LSTMNetwork(
            input_dim=1,
            hidden_dim=self.config.hidden_units,
            output_dim=1,
            init=self.config.init,
            rng=self.rng,
        )
        self.fitted = False
        # Category boundaries: log-spaced between the normalization bounds,
        # n_categories bins => n_categories - 1 interior edges.
        self._edges = np.logspace(
            np.log10(self.config.min_interarrival),
            np.log10(self.config.max_interarrival),
            self.config.n_categories + 1,
        )[1:-1]

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------

    def _clip(self, seconds: np.ndarray) -> np.ndarray:
        return np.clip(
            seconds, self.config.min_interarrival, self.config.max_interarrival
        )

    def transform(self, seconds: np.ndarray) -> np.ndarray:
        """Map inter-arrival seconds into the network's [0, 1] input space."""
        seconds = self._clip(np.asarray(seconds, dtype=np.float64))
        if not self.config.log_scale:
            lo, hi = self.config.min_interarrival, self.config.max_interarrival
            return (seconds - lo) / (hi - lo)
        lo = np.log(self.config.min_interarrival)
        hi = np.log(self.config.max_interarrival)
        return (np.log(seconds) - lo) / (hi - lo)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        """Map network outputs back to seconds (clipped to the bounds)."""
        values = np.clip(np.asarray(values, dtype=np.float64), 0.0, 1.0)
        if not self.config.log_scale:
            lo, hi = self.config.min_interarrival, self.config.max_interarrival
            return lo + values * (hi - lo)
        lo = np.log(self.config.min_interarrival)
        hi = np.log(self.config.max_interarrival)
        return np.exp(lo + values * (hi - lo))

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def make_windows(self, series: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Sliding (window, next-value) pairs from an inter-arrival series.

        Raises
        ------
        ValueError
            If the series is shorter than ``lookback + 1``.
        """
        series = np.asarray(series, dtype=np.float64)
        look = self.config.lookback
        if series.size < look + 1:
            raise ValueError(
                f"series of length {series.size} too short for lookback {look}"
            )
        normalized = self.transform(series)
        n = series.size - look
        x = np.empty((n, look, 1))
        y = np.empty((n, 1))
        for i in range(n):
            x[i, :, 0] = normalized[i : i + look]
            y[i, 0] = normalized[i + look]
        return x, y

    def fit(self, series: np.ndarray, epochs: int | None = None) -> list[float]:
        """Train the LSTM on an inter-arrival series; returns loss history."""
        x, y = self.make_windows(series)
        history = self.network.fit(
            x,
            y,
            epochs=epochs if epochs is not None else self.config.epochs,
            batch_size=self.config.batch_size,
            lr=self.config.learning_rate,
            rng=self.rng,
        )
        self.fitted = True
        return history

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict_seconds(self, window_seconds: np.ndarray) -> float:
        """Predict the next inter-arrival time from a full look-back window."""
        window_seconds = np.asarray(window_seconds, dtype=np.float64)
        if window_seconds.size != self.config.lookback:
            raise ValueError(
                f"window of length {window_seconds.size} != lookback "
                f"{self.config.lookback}"
            )
        x = self.transform(window_seconds)[None, :, None]
        out = self.network.predict(x)[0, 0]
        return float(self.inverse_transform(np.array([out]))[0])

    def predict(self, tracker: InterArrivalTracker) -> float:
        """Best-available next inter-arrival estimate for a server.

        Uses the LSTM when fitted and the tracker has a full window;
        otherwise falls back to the last observation (or the geometric
        middle of the normalization range if nothing has been seen).
        """
        if self.fitted and tracker.ready:
            return self.predict_seconds(tracker.window())
        last = tracker.last()
        if last is not None:
            return float(self._clip(np.array([last]))[0])
        return float(
            np.sqrt(self.config.min_interarrival * self.config.max_interarrival)
        )

    def categorize(self, seconds: float) -> int:
        """Discretize a prediction into one of ``n_categories`` RL states."""
        return int(np.searchsorted(self._edges, seconds, side="right"))

    def predict_category(self, tracker: InterArrivalTracker) -> int:
        """Predict and discretize in one step (the power manager's input)."""
        return self.categorize(self.predict(tracker))
