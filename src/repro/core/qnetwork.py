"""The paper's deep Q-network: autoencoder + weight-shared Sub-Q (Fig. 6).

For estimating the Q values of allocating a job to the servers in group
``k``, the Sub-Q network consumes

    [ raw state of group k  |  encoded states of all other groups  |  job ]

so the target group's own state is seen at full resolution while the rest
of the cluster is compressed by the autoencoder — "the dimension
difference ... reflects the importance of the targeting server group's
own state".

Weight sharing is literal: there is exactly *one* autoencoder and *one*
Sub-Q MLP, applied once per group. Any training sample therefore trains
the (shared) Sub-Q regardless of which group its action lies in, and the
parameter count is independent of K — the two benefits the paper claims.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.state import StateEncoder
from repro.nn.autoencoder import Autoencoder
from repro.nn.layers import Module
from repro.nn.mlp import MLP
from repro.nn.optim import Adam, clip_grad_norm
from repro.obs import telemetry as obs


class FlatQNetwork(Module):
    """The paper's strawman: one plain feed-forward network over the full
    state with M outputs ("a conventional feed-forward neural network to
    directly output Q value estimates").

    Duck-type compatible with :class:`HierarchicalQNetwork` (predict /
    q_values / train_step / make_optimizer / clone), so the ablation bench
    can swap it into :class:`~repro.core.global_tier.DRLGlobalBroker`.
    """

    def __init__(
        self,
        encoder: StateEncoder,
        hidden: tuple[int, ...] = (128,),
        rng: np.random.Generator | None = None,
    ) -> None:
        if rng is None:
            rng = np.random.default_rng(0)
        self.encoder = encoder
        self.num_actions = encoder.num_servers
        self.hidden = tuple(hidden)
        self.net = MLP(
            [encoder.state_dim, *hidden, self.num_actions],
            hidden_activation="elu",
            output_activation="identity",
            rng=rng,
            name="flatq",
        )

    def predict(self, states: np.ndarray) -> np.ndarray:
        """Q-value estimates for all M actions; shape ``(batch, M)``."""
        return self.net.predict(states)

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Q-vector for a single state; shape ``(M,)``."""
        return self.net.predict(state[None, :])[0]

    def make_optimizer(self, lr: float = 1e-3) -> Adam:
        return Adam(self.parameters(), lr=lr)

    def train_step(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        targets: np.ndarray,
        optimizer: Adam,
        max_grad_norm: float | None = 10.0,
        huber_delta: float | None = None,
    ) -> float:
        """Minibatch regression of the chosen-action outputs to ``targets``."""
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        actions = np.asarray(actions, dtype=np.int64).reshape(-1)
        targets = np.asarray(targets, dtype=np.float64).reshape(-1)
        n = states.shape[0]
        q, caches = self.net.forward(states)
        rows = np.arange(n)
        err = q[rows, actions] - targets
        if huber_delta is None:
            loss = float(np.sum(err**2)) / n
            derr = 2.0 * err
        else:
            abs_err = np.abs(err)
            quad = np.minimum(abs_err, huber_delta)
            loss = float(np.sum(0.5 * quad**2 + huber_delta * (abs_err - quad))) / n
            derr = np.clip(err, -huber_delta, huber_delta)
        dq = np.zeros_like(q)
        dq[rows, actions] = derr / n
        self.zero_grad()
        self.net.backward(dq, caches)
        if max_grad_norm is not None:
            clip_grad_norm(self.parameters(), max_grad_norm)
        optimizer.step()
        return loss

    def pretrain_autoencoder(self, states: np.ndarray, **kwargs) -> list[float]:
        """No autoencoder in the flat architecture; offline phase no-op."""
        return []

    def clone(self, rng: np.random.Generator | None = None) -> "FlatQNetwork":
        twin = FlatQNetwork(
            self.encoder,
            hidden=self.hidden,
            rng=rng if rng is not None else np.random.default_rng(0),
        )
        twin.load_state_dict(self.state_dict())
        return twin

    def describe(self) -> dict:
        """Architecture fingerprint (plain data, for checkpoint metadata)."""
        return {
            "kind": "flat",
            "state_dim": self.encoder.state_dim,
            "num_actions": self.num_actions,
            "hidden": list(self.hidden),
            "num_parameters": self.num_parameters(),
        }


class HierarchicalQNetwork(Module):
    """Q(s, a) estimator over all M server actions.

    Parameters
    ----------
    encoder:
        The state encoder (provides the group geometry).
    autoencoder_hidden:
        Encoder widths of the shared autoencoder (paper: 30, 15).
    subq_hidden:
        Hidden widths of the shared Sub-Q network (paper: one layer of
        128 ELUs) followed by a linear output with one unit per server in
        a group.
    """

    def __init__(
        self,
        encoder: StateEncoder,
        autoencoder_hidden: tuple[int, ...] = (30, 15),
        subq_hidden: tuple[int, ...] = (128,),
        rng: np.random.Generator | None = None,
    ) -> None:
        if rng is None:
            rng = np.random.default_rng(0)
        self.encoder = encoder
        self.num_groups = encoder.num_groups
        self.group_dim = encoder.group_dim
        self.group_size = encoder.group_size
        self.job_dim = encoder.job_dim
        self.num_actions = encoder.num_servers

        self.autoencoder = Autoencoder(
            self.group_dim, autoencoder_hidden, activation="elu", rng=rng
        )
        self.code_dim = self.autoencoder.code_dim
        subq_in = self.group_dim + (self.num_groups - 1) * self.code_dim + self.job_dim
        self.subq_in = subq_in
        self.subq = MLP(
            [subq_in, *subq_hidden, self.group_size],
            hidden_activation="elu",
            output_activation="identity",
            rng=rng,
            name="subq",
        )
        # Row k lists the *other* groups in k's cyclic order; used to gather
        # all K Sub-Q inputs in one vectorized assembly.
        self._other_index = np.array(
            [self._other_groups(k) for k in range(self.num_groups)], dtype=np.intp
        ).reshape(self.num_groups, self.num_groups - 1)

    # ------------------------------------------------------------------
    # Input assembly
    # ------------------------------------------------------------------

    def _other_groups(self, k: int) -> list[int]:
        """The other groups in a fixed cyclic order starting after k.

        A deterministic, k-relative order keeps the shared Sub-Q's input
        layout consistent across groups.
        """
        return [(k + offset) % self.num_groups for offset in range(1, self.num_groups)]

    def _assemble(
        self,
        k: int,
        groups: np.ndarray,
        codes: np.ndarray,
        jobs: np.ndarray,
        sample_idx: np.ndarray | None = None,
    ) -> np.ndarray:
        """Build the Sub-Q_k input ``[raw g_k | codes of others | job]``."""
        idx = slice(None) if sample_idx is None else sample_idx
        parts = [groups[k][idx]]
        parts.extend(codes[other][idx] for other in self._other_groups(k))
        parts.append(jobs[idx])
        return np.concatenate(parts, axis=1)

    def _encode_all(self, groups: np.ndarray) -> np.ndarray:
        """Codes for every group: shape (K, batch, code_dim)."""
        batch = groups.shape[1]
        flat = groups.reshape(-1, self.group_dim)
        codes = self.autoencoder.encode(flat)
        return codes.reshape(self.num_groups, batch, self.code_dim)

    def _assemble_all(
        self, groups: np.ndarray, codes: np.ndarray, jobs: np.ndarray
    ) -> np.ndarray:
        """All K Sub-Q input blocks at once: shape ``(K, batch, subq_in)``.

        Row ``(k, i)`` holds exactly the vector :meth:`_assemble` builds
        for group ``k`` and sample ``i`` — the loop's concatenation is
        replaced by slice assignment into one preallocated array.
        """
        k, batch = self.num_groups, jobs.shape[0]
        out = np.empty((k, batch, self.subq_in))
        out[:, :, : self.group_dim] = groups
        if k > 1:
            others = codes[self._other_index]  # (K, K-1, batch, code_dim)
            out[:, :, self.group_dim : self.group_dim + (k - 1) * self.code_dim] = (
                others.transpose(0, 2, 1, 3).reshape(k, batch, -1)
            )
        out[:, :, self.subq_in - self.job_dim :] = jobs
        return out

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def predict(self, states: np.ndarray) -> np.ndarray:
        """Q-value estimates for all M actions; shape ``(batch, M)``.

        Weight sharing is exploited literally: the K Sub-Q inputs are
        stacked into one ``(K, batch, subq_in)`` tensor and pushed through
        the shared network in a *single* forward call. NumPy's stacked
        matmul issues one identically-shaped GEMM per group, so every
        group's Q block is bit-identical to :meth:`predict_loop` (a
        flattened ``(K*batch, subq_in)`` GEMM would not be: BLAS picks
        different kernels for different row counts, perturbing final ulps
        — see the equivalence tests).
        """
        groups, jobs = self.encoder.split(states)
        codes = self._encode_all(groups)
        x = self._assemble_all(groups, codes, jobs)
        q = self.subq.predict(x)  # (K, batch, group_size)
        return q.transpose(1, 0, 2).reshape(jobs.shape[0], self.num_actions)

    def predict_loop(self, states: np.ndarray) -> np.ndarray:
        """Reference per-group loop (the pre-vectorization path).

        Kept as the ground truth the batched :meth:`predict` must match
        bit for bit, and as the baseline the hot-path microbenchmark
        measures its speedup against.
        """
        groups, jobs = self.encoder.split(states)
        codes = self._encode_all(groups)
        batch = jobs.shape[0]
        out = np.empty((batch, self.num_actions))
        for k in range(self.num_groups):
            q_k = self.subq.predict(self._assemble(k, groups, codes, jobs))
            out[:, k * self.group_size : (k + 1) * self.group_size] = q_k
        return out

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Q-vector for a single state; shape ``(M,)``."""
        return self.predict(state[None, :])[0]

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def make_optimizer(self, lr: float = 1e-3) -> Adam:
        """Adam over the shared parameters (each shared tensor once)."""
        return Adam(self.parameters(), lr=lr)

    def _check_batch(
        self, states: np.ndarray, actions: np.ndarray, targets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        actions = np.asarray(actions, dtype=np.int64).reshape(-1)
        targets = np.asarray(targets, dtype=np.float64).reshape(-1)
        n = states.shape[0]
        if actions.shape[0] != n or targets.shape[0] != n:
            raise ValueError(
                f"batch size mismatch: {n} states, {actions.shape[0]} actions, "
                f"{targets.shape[0]} targets"
            )
        return states, actions, targets

    @staticmethod
    def _loss_and_derr(
        err: np.ndarray, huber_delta: float | None
    ) -> tuple[float, np.ndarray]:
        """Per-group chosen-action loss sum and its derivative."""
        if huber_delta is None:
            return float(np.sum(err**2)), 2.0 * err
        abs_err = np.abs(err)
        quad = np.minimum(abs_err, huber_delta)
        loss = float(np.sum(0.5 * quad**2 + huber_delta * (abs_err - quad)))
        return loss, np.clip(err, -huber_delta, huber_delta)

    def train_step(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        targets: np.ndarray,
        optimizer: Adam,
        max_grad_norm: float | None = 10.0,
        huber_delta: float | None = None,
    ) -> float:
        """One minibatch update of Q(s, a) toward ``targets``.

        The regression error of each sample's *chosen-action* output is
        minimized (MSE, or Huber when ``huber_delta`` is given);
        gradients flow into the shared Sub-Q directly and into the shared
        autoencoder through the code inputs of the non-target groups.
        Returns the minibatch loss.

        This is the batched fast path: the shared encoder runs one
        stacked ``(K, batch, group_dim)`` forward and one stacked
        backward (instead of K of each), and the Sub-Q inputs for every
        group come from a single vectorized assembly. The Sub-Q GEMMs
        themselves stay per-group because each group sees a different
        subset of samples — keeping their shapes identical to
        :meth:`train_step_loop` is what makes the two paths bit-identical
        (the code-gradient scatter back to the per-group accumulators is
        an exact element-wise operation either way).
        """
        tel = obs.active()
        if tel is None:
            return self._train_step_batched(
                states, actions, targets, optimizer, max_grad_norm, huber_delta
            )
        with tel.span("qnet.train_step"):
            return self._train_step_batched(
                states, actions, targets, optimizer, max_grad_norm, huber_delta
            )

    def _train_step_batched(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        targets: np.ndarray,
        optimizer: Adam,
        max_grad_norm: float | None,
        huber_delta: float | None,
    ) -> float:
        states, actions, targets = self._check_batch(states, actions, targets)
        n = states.shape[0]
        groups, jobs = self.encoder.split(states)

        # One stacked forward through the shared encoder; slice [k] of the
        # caches is exactly the cache a per-group forward would produce.
        codes, enc_caches = self.autoencoder.encode_with_cache(groups)
        x_all = self._assemble_all(groups, codes, jobs)

        self.zero_grad()
        total_loss = 0.0
        # dL/dcode accumulators, one plane per group (codes feed K-1
        # Sub-Q passes); filled by exact scatter, so a single stacked
        # encoder backward below replaces the per-group loop.
        dcodes = np.zeros_like(codes)
        group_ids = actions // self.group_size

        for k in range(self.num_groups):
            sample_idx = np.flatnonzero(group_ids == k)
            if sample_idx.size == 0:
                continue
            x_k = x_all[k][sample_idx]
            q_k, caches = self.subq.forward(x_k)
            local = actions[sample_idx] - k * self.group_size
            rows = np.arange(sample_idx.size)
            err = q_k[rows, local] - targets[sample_idx]
            group_loss, derr = self._loss_and_derr(err, huber_delta)
            total_loss += group_loss
            dq = np.zeros_like(q_k)
            dq[rows, local] = derr / n
            dx = self.subq.backward(dq, caches)
            # Split dx back into [raw g_k | other codes | job] and route the
            # code gradients to their producing encoder rows.
            offset = self.group_dim
            for other in self._other_index[k]:
                dcodes[other][sample_idx] += dx[:, offset : offset + self.code_dim]
                offset += self.code_dim

        if self.num_groups > 1:
            self.autoencoder.encoder_backward(dcodes, enc_caches)

        if max_grad_norm is not None:
            clip_grad_norm(self.parameters(), max_grad_norm)
        optimizer.step()
        return total_loss / n

    def train_step_loop(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        targets: np.ndarray,
        optimizer: Adam,
        max_grad_norm: float | None = 10.0,
        huber_delta: float | None = None,
    ) -> float:
        """Reference per-group training loop (the pre-vectorization path).

        Semantically and bit-wise equal to :meth:`train_step`; kept as
        the equivalence-test ground truth and microbenchmark baseline.
        """
        states, actions, targets = self._check_batch(states, actions, targets)
        n = states.shape[0]
        groups, jobs = self.encoder.split(states)

        # Forward the shared encoder once per group, keeping caches so the
        # Q-loss can flow back into it.
        enc_caches: list[list[dict[str, Any]]] = []
        codes_list: list[np.ndarray] = []
        for k in range(self.num_groups):
            code_k, cache_k = self.autoencoder.encode_with_cache(groups[k])
            codes_list.append(code_k)
            enc_caches.append(cache_k)
        codes = np.stack(codes_list)

        self.zero_grad()
        total_loss = 0.0
        # dL/dcode accumulators per group (codes feed K-1 Sub-Q passes).
        dcodes = [np.zeros_like(codes[k]) for k in range(self.num_groups)]

        for k in range(self.num_groups):
            group_lo = k * self.group_size
            mask = (actions >= group_lo) & (actions < group_lo + self.group_size)
            sample_idx = np.flatnonzero(mask)
            if sample_idx.size == 0:
                continue
            x_k = self._assemble(k, groups, codes, jobs, sample_idx)
            q_k, caches = self.subq.forward(x_k)
            local = actions[sample_idx] - group_lo
            rows = np.arange(sample_idx.size)
            err = q_k[rows, local] - targets[sample_idx]
            group_loss, derr = self._loss_and_derr(err, huber_delta)
            total_loss += group_loss
            dq = np.zeros_like(q_k)
            dq[rows, local] = derr / n
            dx = self.subq.backward(dq, caches)
            # Split dx back into [raw g_k | other codes | job] and route the
            # code gradients to their producing encoder passes.
            offset = self.group_dim
            for other in self._other_groups(k):
                dcode = dx[:, offset : offset + self.code_dim]
                dcodes[other][sample_idx] += dcode
                offset += self.code_dim

        for k in range(self.num_groups):
            if np.any(dcodes[k]):
                self.autoencoder.encoder_backward(dcodes[k], enc_caches[k])

        if max_grad_norm is not None:
            clip_grad_norm(self.parameters(), max_grad_norm)
        optimizer.step()
        return total_loss / n

    def clone(self, rng: np.random.Generator | None = None) -> "HierarchicalQNetwork":
        """Independent copy with identical weights (same encoder geometry)."""
        twin = HierarchicalQNetwork(
            self.encoder,
            autoencoder_hidden=tuple(
                layer.out_features for layer in self.autoencoder.encoder.layers
            ),
            subq_hidden=tuple(self.subq.layer_sizes[1:-1]),
            rng=rng if rng is not None else np.random.default_rng(0),
        )
        twin.load_state_dict(self.state_dict())
        return twin

    def describe(self) -> dict:
        """Architecture fingerprint (plain data, for checkpoint metadata).

        Two networks with equal fingerprints have interchangeable
        :meth:`state_dict` snapshots; the checkpoint store records this
        alongside the weights so a geometry mismatch (e.g. a scenario
        whose fleet changed under a stale blob) fails with a clear
        message instead of a shape error deep inside ``load_state_dict``.
        """
        return {
            "kind": "hierarchical",
            "num_groups": self.num_groups,
            "group_dim": self.group_dim,
            "group_size": self.group_size,
            "job_dim": self.job_dim,
            "num_actions": self.num_actions,
            "code_dim": self.code_dim,
            "subq_in": self.subq_in,
            "subq_hidden": list(self.subq.layer_sizes[1:-1]),
            "autoencoder_hidden": [
                layer.out_features for layer in self.autoencoder.encoder.layers
            ],
            "num_parameters": self.num_parameters(),
        }

    def pretrain_autoencoder(
        self,
        states: np.ndarray,
        epochs: int = 20,
        batch_size: int = 64,
        lr: float = 1e-3,
        rng: np.random.Generator | None = None,
    ) -> list[float]:
        """Offline-phase reconstruction pre-training on group-state blocks.

        Every group block of every state is a training sample (weight
        sharing lets one autoencoder serve all groups).
        """
        groups, _ = self.encoder.split(np.atleast_2d(states))
        samples = groups.reshape(-1, self.group_dim)
        return self.autoencoder.fit(
            samples, epochs=epochs, batch_size=batch_size, lr=lr, rng=rng
        )
