"""Synthetic Google-like workload generator.

The paper's evaluation consumes, per job, exactly
``(arrival time, duration, cpu, mem, disk)``; this module generates job
streams with the same statistical character as the extracted Google 2011
segments:

* **Non-stationary arrivals** — a non-homogeneous Poisson process with a
  diurnal (sinusoidal) rate modulation plus a two-state Markov-modulated
  burst component, sampled by thinning. Sec. V-B of the paper stresses
  that real cloud workloads are time-variant and non-stationary; this
  keeps the DRL agent in that regime.
* **Durations** — log-normal, truncated to [1 min, 2 h] exactly as the
  paper clips the extracted jobs.
* **Resource demands** — Beta-distributed CPU / memory / disk fractions
  of one server, positively correlated (big jobs tend to be big in every
  dimension), matching the character of normalized Google requests.

The default parameters yield ~100 000 jobs per simulated week with an
offered CPU load appropriate for a 30–40 machine cluster, mirroring the
paper's segment construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sim.job import Job

_DAY_SECONDS = 86_400.0
_WEEK_SECONDS = 7 * _DAY_SECONDS

#: Cluster size the default intensity targets (the paper's M = 30; the
#: same trace also drives M = 40, as in Table I).
REFERENCE_SERVERS = 30


def reference_rate(num_servers: int, rate_scale: float = 1.0) -> float:
    """Offered arrival rate (jobs/s) appropriate for a fleet size.

    The default config's intensity targets :data:`REFERENCE_SERVERS`
    machines; larger clusters reuse it (the paper evaluates M = 30 and
    40 on the same segments) while smaller test clusters get a
    proportionally lighter rate so they are not pathologically
    overloaded. ``rate_scale`` multiplies the result (load knob).
    """
    scale = min(num_servers, REFERENCE_SERVERS) / REFERENCE_SERVERS
    return SyntheticTraceConfig().base_rate * scale * rate_scale


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Parameters of the synthetic Google-like trace.

    Parameters
    ----------
    n_jobs:
        Number of jobs to emit (paper segments: ~100 000).
    horizon:
        Target span of the trace in seconds (paper: one week).
    diurnal_amplitude:
        Relative amplitude of the day/night rate swing, in [0, 1).
    burst_rate_multiplier:
        Arrival-rate multiplier while the burst state is on.
    burst_on_mean, burst_off_mean:
        Mean sojourn times (seconds) of the bursty / calm states.
    duration_median, duration_sigma:
        Log-normal duration parameters (median seconds, log-space sigma).
    min_duration, max_duration:
        Truncation bounds (paper: 60 s and 7200 s).
    cpu_alpha, cpu_beta, cpu_scale:
        CPU demand ~ ``Beta(alpha, beta) * scale`` (plus a small floor).
    mem_scale, disk_scale:
        Memory/disk demand scales relative to the shared Beta draw.
    resource_floor:
        Minimum demand per dimension (avoids zero-size jobs).
    correlation:
        Weight in [0, 1] mixing a shared "job size" factor into each
        resource dimension (0 = independent, 1 = fully correlated).
    """

    n_jobs: int = 100_000
    horizon: float = _WEEK_SECONDS
    diurnal_amplitude: float = 0.4
    burst_rate_multiplier: float = 3.0
    burst_on_mean: float = 600.0
    burst_off_mean: float = 7_200.0
    duration_median: float = 300.0
    duration_sigma: float = 1.0
    min_duration: float = 60.0
    max_duration: float = 7_200.0
    cpu_alpha: float = 2.0
    cpu_beta: float = 7.0
    cpu_scale: float = 0.5
    mem_scale: float = 0.4
    disk_scale: float = 0.3
    resource_floor: float = 0.01
    correlation: float = 0.5

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be positive, got {self.n_jobs}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.burst_rate_multiplier < 1.0:
            raise ValueError("burst_rate_multiplier must be >= 1")
        if self.min_duration <= 0 or self.max_duration < self.min_duration:
            raise ValueError("need 0 < min_duration <= max_duration")
        if not 0.0 <= self.correlation <= 1.0:
            raise ValueError("correlation must be in [0, 1]")
        if not 0.0 < self.resource_floor < 1.0:
            raise ValueError("resource_floor must be in (0, 1)")

    @property
    def base_rate(self) -> float:
        """Mean arrival rate (jobs/second) implied by n_jobs and horizon."""
        return self.n_jobs / self.horizon


def _sample_arrivals(
    config: SyntheticTraceConfig, rng: np.random.Generator
) -> np.ndarray:
    """Thinning sampler for the non-homogeneous, burst-modulated process."""
    base = config.base_rate
    amp = config.diurnal_amplitude
    burst_mult = config.burst_rate_multiplier
    # Duty-cycle correction so the long-run mean rate stays `base`.
    duty = config.burst_on_mean / (config.burst_on_mean + config.burst_off_mean)
    mean_mult = 1.0 + duty * (burst_mult - 1.0)
    lam_max = base * (1.0 + amp) * burst_mult / mean_mult

    arrivals = np.empty(config.n_jobs)
    count = 0
    t = 0.0
    burst_on = False
    burst_switch = rng.exponential(config.burst_off_mean)
    phase = rng.uniform(0.0, 2.0 * math.pi)
    while count < config.n_jobs:
        t += rng.exponential(1.0 / lam_max)
        while t >= burst_switch:
            burst_on = not burst_on
            mean = config.burst_on_mean if burst_on else config.burst_off_mean
            burst_switch += rng.exponential(mean)
        diurnal = 1.0 + amp * math.sin(2.0 * math.pi * t / _DAY_SECONDS + phase)
        rate = base * diurnal * (burst_mult if burst_on else 1.0) / mean_mult
        if rng.uniform() * lam_max <= rate:
            arrivals[count] = t
            count += 1
    return arrivals


def _sample_durations(
    config: SyntheticTraceConfig, rng: np.random.Generator, n: int
) -> np.ndarray:
    """Truncated log-normal durations in [min_duration, max_duration]."""
    mu = math.log(config.duration_median)
    out = np.empty(n)
    remaining = np.arange(n)
    while remaining.size:
        draws = rng.lognormal(mu, config.duration_sigma, size=remaining.size)
        ok = (draws >= config.min_duration) & (draws <= config.max_duration)
        out[remaining[ok]] = draws[ok]
        remaining = remaining[~ok]
    return out


def _sample_resources(
    config: SyntheticTraceConfig, rng: np.random.Generator, n: int
) -> np.ndarray:
    """Correlated (cpu, mem, disk) demand rows in (0, 1]."""
    shared = rng.beta(config.cpu_alpha, config.cpu_beta, size=n)
    rows = np.empty((n, 3))
    for col, scale in enumerate(
        (config.cpu_scale, config.mem_scale, config.disk_scale)
    ):
        own = rng.beta(config.cpu_alpha, config.cpu_beta, size=n)
        mixed = config.correlation * shared + (1.0 - config.correlation) * own
        rows[:, col] = np.clip(
            config.resource_floor + mixed * scale, config.resource_floor, 1.0
        )
    return rows


def generate_trace(
    config: SyntheticTraceConfig | None = None,
    seed: int | np.random.Generator = 0,
    start_id: int = 0,
) -> list[Job]:
    """Generate a synthetic Google-like job trace.

    Parameters
    ----------
    config:
        Trace parameters; defaults to a one-week, 100 k-job segment.
    seed:
        Seed or generator for full reproducibility.
    start_id:
        First job ID (useful when concatenating traces).
    """
    if config is None:
        config = SyntheticTraceConfig()
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    arrivals = _sample_arrivals(config, rng)
    durations = _sample_durations(config, rng, config.n_jobs)
    resources = _sample_resources(config, rng, config.n_jobs)
    return [
        Job(
            job_id=start_id + i,
            arrival_time=float(arrivals[i]),
            duration=float(durations[i]),
            resources=tuple(float(r) for r in resources[i]),
        )
        for i in range(config.n_jobs)
    ]
