"""Workload substrate: traces, synthetic generation, and characterization.

The paper drives its evaluation with jobs extracted from the 2011 Google
cluster-usage traces: ``(arrival time, duration, cpu, mem, disk)`` tuples
with durations clipped to [1 min, 2 h], sorted by arrival time, split into
~100 k-job segments each representing one week of work for an M-machine
cluster.

The real trace is not redistributable, so this package provides both a
reader for trace CSVs (:mod:`repro.workload.trace`) and a synthetic
generator (:mod:`repro.workload.synthetic`) that reproduces the statistics
the simulation actually consumes — see DESIGN.md §4 for the substitution
argument.
"""

from repro.workload.mixtures import (
    correlated_traces,
    flash_crowd_jobs,
    generate_correlated_mixture,
    generate_mixture,
    merge_traces,
)
from repro.workload.segments import rebase, split_segments
from repro.workload.stats import WorkloadStats, characterize
from repro.workload.synthetic import SyntheticTraceConfig, generate_trace
from repro.workload.trace import (
    jobs_from_arrays,
    read_trace_csv,
    read_google_task_events,
    write_trace_csv,
)

__all__ = [
    "correlated_traces",
    "flash_crowd_jobs",
    "generate_correlated_mixture",
    "generate_mixture",
    "merge_traces",
    "rebase",
    "split_segments",
    "WorkloadStats",
    "characterize",
    "SyntheticTraceConfig",
    "generate_trace",
    "jobs_from_arrays",
    "read_trace_csv",
    "read_google_task_events",
    "write_trace_csv",
]
