"""Workload composition: multi-class mixes and flash-crowd injection.

The paper evaluates one Google-like job stream. Real clusters serve
*mixtures* — interactive front-end requests layered over long batch
work — and suffer flash crowds whose arrival rate bears no relation to
the diurnal baseline. These helpers compose such traces out of the
single-class generator in :mod:`repro.workload.synthetic`:

* :func:`merge_traces` — interleave independently generated job streams
  into one arrival-ordered trace (multi-tenant mixes).
* :func:`flash_crowd_jobs` — homogeneous-Poisson extra arrivals confined
  to a window, with durations/resources drawn from a trace config's
  marginal distributions (the "crowd" has the same per-job shape, just a
  brutal rate).
* :func:`generate_mixture` — weighted multi-class generation over a
  shared horizon, with optional flash crowds, as one call.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.sim.job import Job
from repro.workload.synthetic import (
    SyntheticTraceConfig,
    _sample_durations,
    _sample_resources,
    generate_trace,
)


def merge_traces(*traces: Sequence[Job]) -> list[Job]:
    """Merge job streams into one trace sorted by arrival and renumbered.

    Jobs are copied (fresh :class:`Job` instances) so the inputs remain
    reusable; ties are broken by input order, keeping merges
    deterministic.
    """
    ordered = sorted(
        (job for trace in traces for job in trace),
        key=lambda j: j.arrival_time,
    )
    return [
        Job(
            job_id=i,
            arrival_time=job.arrival_time,
            duration=job.duration,
            resources=job.resources,
        )
        for i, job in enumerate(ordered)
    ]


def flash_crowd_jobs(
    config: SyntheticTraceConfig,
    start: float,
    duration: float,
    rate_multiplier: float,
    rng: np.random.Generator,
) -> list[Job]:
    """Extra arrivals modeling a flash crowd in ``[start, start + duration)``.

    The crowd adds a homogeneous Poisson stream at
    ``(rate_multiplier - 1) * config.base_rate`` on top of whatever the
    base trace already emits, so the *total* rate inside the window is
    roughly ``rate_multiplier`` times the mean. Durations and resources
    follow the config's marginals. Job IDs start at 0; renumber via
    :func:`merge_traces`.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if rate_multiplier <= 1.0:
        raise ValueError(
            f"rate_multiplier must exceed 1 (got {rate_multiplier}); "
            "1 means no extra load"
        )
    extra_rate = (rate_multiplier - 1.0) * config.base_rate
    n_extra = int(rng.poisson(extra_rate * duration))
    if n_extra == 0:
        return []
    arrivals = np.sort(rng.uniform(start, start + duration, size=n_extra))
    durations = _sample_durations(config, rng, n_extra)
    resources = _sample_resources(config, rng, n_extra)
    return [
        Job(
            job_id=i,
            arrival_time=float(arrivals[i]),
            duration=float(durations[i]),
            resources=tuple(float(r) for r in resources[i]),
        )
        for i in range(n_extra)
    ]


def generate_mixture(
    class_configs: Sequence[tuple[SyntheticTraceConfig, float]],
    n_jobs: int,
    horizon: float,
    seed: int | np.random.SeedSequence = 0,
    flash_crowds: Sequence[tuple[float, float, float]] = (),
) -> list[Job]:
    """Generate a weighted multi-class trace over one shared horizon.

    Parameters
    ----------
    class_configs:
        ``(config, weight)`` pairs; each class contributes
        ``weight / sum(weights)`` of ``n_jobs``, generated with its own
        arrival/duration/resource character (the config's ``n_jobs`` and
        ``horizon`` are overridden).
    n_jobs:
        Total jobs across all classes (before flash-crowd extras).
    horizon:
        Shared trace span in seconds.
    seed:
        Seed or :class:`numpy.random.SeedSequence`; every class and
        every crowd gets an independently spawned child stream, so
        adding a class never perturbs the others.
    flash_crowds:
        ``(start_fraction, duration_fraction, rate_multiplier)`` triples
        relative to ``horizon``; extras are drawn from the first class's
        config (the dominant tenant).
    """
    if not class_configs:
        raise ValueError("need at least one job class")
    total_weight = sum(w for _, w in class_configs)
    if total_weight <= 0:
        raise ValueError("class weights must sum to a positive value")
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    children = ss.spawn(len(class_configs) + len(flash_crowds))

    traces: list[list[Job]] = []
    for (config, weight), child in zip(class_configs, children):
        class_jobs = max(1, round(n_jobs * weight / total_weight))
        class_config = replace(config, n_jobs=class_jobs, horizon=horizon)
        traces.append(generate_trace(class_config, seed=np.random.default_rng(child)))

    crowd_children = children[len(class_configs):]
    base_config = replace(class_configs[0][0], n_jobs=n_jobs, horizon=horizon)
    for (start_frac, dur_frac, mult), child in zip(flash_crowds, crowd_children):
        if not 0.0 <= start_frac < 1.0 or not 0.0 < dur_frac <= 1.0:
            raise ValueError(
                "flash crowd window fractions must satisfy 0 <= start < 1 "
                f"and 0 < duration <= 1, got ({start_frac}, {dur_frac})"
            )
        traces.append(
            flash_crowd_jobs(
                base_config,
                start=start_frac * horizon,
                duration=dur_frac * horizon,
                rate_multiplier=mult,
                rng=np.random.default_rng(child),
            )
        )
    return merge_traces(*traces)
