"""Workload composition: multi-class mixes and flash-crowd injection.

The paper evaluates one Google-like job stream. Real clusters serve
*mixtures* — interactive front-end requests layered over long batch
work — and suffer flash crowds whose arrival rate bears no relation to
the diurnal baseline. These helpers compose such traces out of the
single-class generator in :mod:`repro.workload.synthetic`:

* :func:`merge_traces` — interleave independently generated job streams
  into one arrival-ordered trace (multi-tenant mixes).
* :func:`flash_crowd_jobs` — homogeneous-Poisson extra arrivals confined
  to a window, with durations/resources drawn from a trace config's
  marginal distributions (the "crowd" has the same per-job shape, just a
  brutal rate).
* :func:`generate_mixture` — weighted multi-class generation over a
  shared horizon, with optional flash crowds, as one call.
* :func:`correlated_traces` / :func:`generate_correlated_mixture` —
  *correlated* workloads: several clusters (or tenants) sharing one
  diurnal phase and, to a tunable degree, one burst timeline, so load
  peaks coincide instead of averaging out. Real fleets behave this way —
  the same users hit every region's front-ends at 8 pm — and coincident
  peaks are exactly what independent streams understate.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.sim.job import Job
from repro.workload.synthetic import (
    _DAY_SECONDS,
    SyntheticTraceConfig,
    _sample_durations,
    _sample_resources,
    generate_trace,
)


def merge_traces(*traces: Sequence[Job]) -> list[Job]:
    """Merge job streams into one trace sorted by arrival and renumbered.

    Jobs are copied (fresh :class:`Job` instances) so the inputs remain
    reusable; ties are broken by input order, keeping merges
    deterministic.
    """
    ordered = sorted(
        (job for trace in traces for job in trace),
        key=lambda j: j.arrival_time,
    )
    return [
        Job(
            job_id=i,
            arrival_time=job.arrival_time,
            duration=job.duration,
            resources=job.resources,
        )
        for i, job in enumerate(ordered)
    ]


def flash_crowd_jobs(
    config: SyntheticTraceConfig,
    start: float,
    duration: float,
    rate_multiplier: float,
    rng: np.random.Generator,
) -> list[Job]:
    """Extra arrivals modeling a flash crowd in ``[start, start + duration)``.

    The crowd adds a homogeneous Poisson stream at
    ``(rate_multiplier - 1) * config.base_rate`` on top of whatever the
    base trace already emits, so the *total* rate inside the window is
    roughly ``rate_multiplier`` times the mean. Durations and resources
    follow the config's marginals. Job IDs start at 0; renumber via
    :func:`merge_traces`.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if rate_multiplier <= 1.0:
        raise ValueError(
            f"rate_multiplier must exceed 1 (got {rate_multiplier}); "
            "1 means no extra load"
        )
    extra_rate = (rate_multiplier - 1.0) * config.base_rate
    n_extra = int(rng.poisson(extra_rate * duration))
    if n_extra == 0:
        return []
    arrivals = np.sort(rng.uniform(start, start + duration, size=n_extra))
    durations = _sample_durations(config, rng, n_extra)
    resources = _sample_resources(config, rng, n_extra)
    return [
        Job(
            job_id=i,
            arrival_time=float(arrivals[i]),
            duration=float(durations[i]),
            resources=tuple(float(r) for r in resources[i]),
        )
        for i in range(n_extra)
    ]


def generate_mixture(
    class_configs: Sequence[tuple[SyntheticTraceConfig, float]],
    n_jobs: int,
    horizon: float,
    seed: int | np.random.SeedSequence = 0,
    flash_crowds: Sequence[tuple[float, float, float]] = (),
) -> list[Job]:
    """Generate a weighted multi-class trace over one shared horizon.

    Parameters
    ----------
    class_configs:
        ``(config, weight)`` pairs; each class contributes
        ``weight / sum(weights)`` of ``n_jobs``, generated with its own
        arrival/duration/resource character (the config's ``n_jobs`` and
        ``horizon`` are overridden).
    n_jobs:
        Total jobs across all classes (before flash-crowd extras).
    horizon:
        Shared trace span in seconds.
    seed:
        Seed or :class:`numpy.random.SeedSequence`; every class and
        every crowd gets an independently spawned child stream, so
        adding a class never perturbs the others.
    flash_crowds:
        ``(start_fraction, duration_fraction, rate_multiplier)`` triples
        relative to ``horizon``; extras are drawn from the first class's
        config (the dominant tenant).
    """
    if not class_configs:
        raise ValueError("need at least one job class")
    total_weight = sum(w for _, w in class_configs)
    if total_weight <= 0:
        raise ValueError("class weights must sum to a positive value")
    ss = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    children = ss.spawn(len(class_configs) + len(flash_crowds))

    traces: list[list[Job]] = []
    for (config, weight), child in zip(class_configs, children):
        class_jobs = max(1, round(n_jobs * weight / total_weight))
        class_config = replace(config, n_jobs=class_jobs, horizon=horizon)
        traces.append(generate_trace(class_config, seed=np.random.default_rng(child)))

    crowd_children = children[len(class_configs) :]
    base_config = replace(class_configs[0][0], n_jobs=n_jobs, horizon=horizon)
    for (start_frac, dur_frac, mult), child in zip(flash_crowds, crowd_children):
        if not 0.0 <= start_frac < 1.0 or not 0.0 < dur_frac <= 1.0:
            raise ValueError(
                "flash crowd window fractions must satisfy 0 <= start < 1 "
                f"and 0 < duration <= 1, got ({start_frac}, {dur_frac})"
            )
        traces.append(
            flash_crowd_jobs(
                base_config,
                start=start_frac * horizon,
                duration=dur_frac * horizon,
                rate_multiplier=mult,
                rng=np.random.default_rng(child),
            )
        )
    return merge_traces(*traces)


# ----------------------------------------------------------------------
# Correlated multi-cluster / multi-tenant workloads
# ----------------------------------------------------------------------


def sample_burst_windows(
    config: SyntheticTraceConfig,
    horizon: float,
    rng: np.random.Generator,
) -> tuple[tuple[float, float], ...]:
    """Burst-on windows of the two-state Markov chain over ``[0, 2·horizon]``.

    The chain starts calm (matching the single-stream generator) and the
    timeline extends past ``horizon`` because thinning keeps sampling
    until the requested job count is reached; beyond twice the horizon
    the chain is treated as permanently calm.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    limit = 2.0 * horizon
    windows: list[tuple[float, float]] = []
    t = rng.exponential(config.burst_off_mean)
    while t < limit:
        start = t
        t += rng.exponential(config.burst_on_mean)
        windows.append((start, min(t, limit)))
        t += rng.exponential(config.burst_off_mean)
    return tuple(windows)


def _burst_on(
    windows: tuple[tuple[float, float], ...], index: int, t: float
) -> tuple[int, bool]:
    """Whether ``t`` falls in a window, advancing a monotone cursor."""
    while index < len(windows) and windows[index][1] <= t:
        index += 1
    return index, index < len(windows) and windows[index][0] <= t


def _sample_coupled_arrivals(
    config: SyntheticTraceConfig,
    rng: np.random.Generator,
    phase: float,
    shared_windows: tuple[tuple[float, float], ...],
    shared_duty: float,
    own_windows: tuple[tuple[float, float], ...],
    coupling: float,
) -> np.ndarray:
    """Thinning sampler whose burst modulation mixes a shared timeline.

    The instantaneous burst multiplier interpolates between this
    stream's own chain and the shared one: ``coupling = 0`` reproduces
    independent streams, ``coupling = 1`` makes every stream surge in
    exactly the shared windows. The diurnal phase is always the shared
    one. Long-run mean rate stays ``config.base_rate``: the duty-cycle
    correction mixes the shared chain's duty (``shared_duty``) and this
    stream's own, with the same weights as the modulation itself.
    """
    base = config.base_rate
    amp = config.diurnal_amplitude
    mult = config.burst_rate_multiplier
    own_duty = config.burst_on_mean / (config.burst_on_mean + config.burst_off_mean)
    duty = coupling * shared_duty + (1.0 - coupling) * own_duty
    mean_mult = 1.0 + duty * (mult - 1.0)
    lam_max = base * (1.0 + amp) * mult / mean_mult

    arrivals = np.empty(config.n_jobs)
    count = 0
    t = 0.0
    si = oi = 0
    while count < config.n_jobs:
        t += rng.exponential(1.0 / lam_max)
        si, shared_on = _burst_on(shared_windows, si, t)
        oi, own_on = _burst_on(own_windows, oi, t)
        on_level = coupling * shared_on + (1.0 - coupling) * own_on
        burst = 1.0 + (mult - 1.0) * on_level
        diurnal = 1.0 + amp * math.sin(2.0 * math.pi * t / _DAY_SECONDS + phase)
        rate = base * diurnal * burst / mean_mult
        if rng.uniform() * lam_max <= rate:
            arrivals[count] = t
            count += 1
    return arrivals


def correlated_traces(
    cluster_configs: Sequence[tuple[SyntheticTraceConfig, int]],
    horizon: float,
    seed: int | np.random.SeedSequence = 0,
    coupling: float = 1.0,
) -> list[list[Job]]:
    """One trace per cluster, coupled through shared load modulation.

    Parameters
    ----------
    cluster_configs:
        ``(config, n_jobs)`` per cluster; each trace gets that many jobs
        over the shared ``horizon`` with the config's duration/resource
        marginals.
    coupling:
        Burst-coupling weight in [0, 1]: 0 = independent burst chains
        (only the diurnal phase is shared), 1 = every cluster bursts in
        the same shared windows.

    The shared diurnal phase and shared burst timeline are drawn from
    their own spawned stream (using the first cluster's sojourn
    parameters), so adding a cluster never perturbs the others'
    workloads — and per-cluster durations/resources stay independent.
    """
    if not cluster_configs:
        raise ValueError("need at least one cluster")
    if not 0.0 <= coupling <= 1.0:
        raise ValueError(f"coupling must be in [0, 1], got {coupling}")
    if any(n < 1 for _, n in cluster_configs):
        raise ValueError("every cluster needs at least one job")
    ss = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    shared_child, *children = ss.spawn(1 + len(cluster_configs))
    shared_rng = np.random.default_rng(shared_child)
    phase = shared_rng.uniform(0.0, 2.0 * math.pi)
    shared_config = cluster_configs[0][0]
    shared_windows = sample_burst_windows(shared_config, horizon, shared_rng)
    shared_duty = shared_config.burst_on_mean / (
        shared_config.burst_on_mean + shared_config.burst_off_mean
    )

    traces: list[list[Job]] = []
    for (config, n_jobs), child in zip(cluster_configs, children):
        cfg = replace(config, n_jobs=n_jobs, horizon=horizon)
        rng = np.random.default_rng(child)
        own_windows = sample_burst_windows(cfg, horizon, rng)
        arrivals = _sample_coupled_arrivals(
            cfg, rng, phase, shared_windows, shared_duty, own_windows, coupling
        )
        durations = _sample_durations(cfg, rng, n_jobs)
        resources = _sample_resources(cfg, rng, n_jobs)
        traces.append(
            [
                Job(
                    job_id=i,
                    arrival_time=float(arrivals[i]),
                    duration=float(durations[i]),
                    resources=tuple(float(r) for r in resources[i]),
                )
                for i in range(n_jobs)
            ]
        )
    return traces


def generate_correlated_mixture(
    class_configs: Sequence[tuple[SyntheticTraceConfig, float]],
    n_jobs: int,
    horizon: float,
    seed: int | np.random.SeedSequence = 0,
    coupling: float = 1.0,
) -> list[Job]:
    """Weighted multi-class trace whose classes surge *together*.

    The correlated sibling of :func:`generate_mixture`: same weighted
    class sizing, but every class shares one diurnal phase and (to
    degree ``coupling``) one burst timeline, then the streams merge into
    a single arrival-ordered trace. Feeding one cluster a fully coupled
    mixture reproduces the worst case of a correlated fleet — every
    tenant's peak lands on the same minutes.
    """
    if not class_configs:
        raise ValueError("need at least one job class")
    total_weight = sum(w for _, w in class_configs)
    if total_weight <= 0:
        raise ValueError("class weights must sum to a positive value")
    sized = [
        (config, max(1, round(n_jobs * weight / total_weight)))
        for config, weight in class_configs
    ]
    return merge_traces(
        *correlated_traces(sized, horizon, seed=seed, coupling=coupling)
    )
