"""Trace segmentation utilities.

The paper splits the month-long Google trace into 200 segments of about
100 000 jobs, each serving as one week of workload for an M-machine
cluster. These helpers perform that split and re-base segments to t = 0
so each can drive an independent simulation.
"""

from __future__ import annotations

from repro.sim.job import Job


def rebase(jobs: list[Job], renumber: bool = True) -> list[Job]:
    """Shift arrival times so the first job arrives at t = 0.

    Returns fresh :class:`Job` copies; the input is untouched.
    """
    if not jobs:
        return []
    t0 = min(job.arrival_time for job in jobs)
    ordered = sorted(jobs, key=lambda j: j.arrival_time)
    return [
        Job(
            job_id=i if renumber else job.job_id,
            arrival_time=job.arrival_time - t0,
            duration=job.duration,
            resources=job.resources,
        )
        for i, job in enumerate(ordered)
    ]


def split_segments(
    jobs: list[Job],
    segment_size: int,
    drop_partial: bool = False,
) -> list[list[Job]]:
    """Split a trace into consecutive segments of ``segment_size`` jobs.

    Each segment is re-based to t = 0 and jobs renumbered from 0, so
    segments are independent simulation inputs (the paper's per-cluster
    weekly workloads).

    Parameters
    ----------
    jobs:
        The full trace (any order; sorted internally).
    segment_size:
        Jobs per segment.
    drop_partial:
        Drop a trailing segment smaller than ``segment_size``.

    Raises
    ------
    ValueError
        If ``segment_size`` is not positive.
    """
    if segment_size < 1:
        raise ValueError(f"segment_size must be positive, got {segment_size}")
    ordered = sorted(jobs, key=lambda j: j.arrival_time)
    segments: list[list[Job]] = []
    for start in range(0, len(ordered), segment_size):
        chunk = ordered[start : start + segment_size]
        if drop_partial and len(chunk) < segment_size:
            break
        segments.append(rebase(chunk))
    return segments
