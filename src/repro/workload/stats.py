"""Workload characterization.

Summary statistics of a job trace: arrival rate, inter-arrival moments,
duration distribution, per-resource demand, and the offered load in
server-equivalents — the quantity that determines how many machines a
scheduler actually needs, and therefore how much power a good consolidator
can save relative to round-robin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.job import RESOURCE_NAMES, Job


@dataclass(frozen=True)
class WorkloadStats:
    """Summary of a job trace."""

    n_jobs: int
    span: float
    arrival_rate: float
    interarrival_mean: float
    interarrival_std: float
    interarrival_cv: float
    duration_mean: float
    duration_p50: float
    duration_p95: float
    duration_min: float
    duration_max: float
    mean_demand: tuple[float, ...]
    offered_load: float

    def summary(self) -> str:
        """Multi-line human-readable report."""
        demand = ", ".join(
            f"{name}={value:.3f}"
            for name, value in zip(RESOURCE_NAMES, self.mean_demand)
        )
        return (
            f"jobs:            {self.n_jobs}\n"
            f"span:            {self.span / 86400:.2f} days\n"
            f"arrival rate:    {self.arrival_rate:.4f} jobs/s\n"
            f"inter-arrival:   mean={self.interarrival_mean:.2f}s "
            f"std={self.interarrival_std:.2f}s cv={self.interarrival_cv:.2f}\n"
            f"duration:        mean={self.duration_mean:.1f}s "
            f"p50={self.duration_p50:.1f}s p95={self.duration_p95:.1f}s "
            f"range=[{self.duration_min:.0f}, {self.duration_max:.0f}]s\n"
            f"mean demand:     {demand}\n"
            f"offered load:    {self.offered_load:.2f} server-equivalents (CPU)"
        )


def characterize(jobs: list[Job]) -> WorkloadStats:
    """Compute :class:`WorkloadStats` for a trace.

    Raises
    ------
    ValueError
        On an empty trace.
    """
    if not jobs:
        raise ValueError("cannot characterize an empty trace")
    arrivals = np.array(sorted(job.arrival_time for job in jobs))
    durations = np.array([job.duration for job in jobs])
    n_res = max(len(job.resources) for job in jobs)
    demand = np.zeros((len(jobs), n_res))
    for i, job in enumerate(jobs):
        demand[i, : len(job.resources)] = job.resources

    span = float(arrivals[-1] - arrivals[0]) if len(jobs) > 1 else float(durations[0])
    span = max(span, 1e-9)
    inter = np.diff(arrivals) if len(jobs) > 1 else np.array([0.0])
    inter_mean = float(inter.mean())
    inter_std = float(inter.std())
    rate = len(jobs) / span
    # Offered CPU load: concurrent CPU demand in units of whole servers.
    offered = rate * float(durations.mean()) * float(demand[:, 0].mean())
    return WorkloadStats(
        n_jobs=len(jobs),
        span=span,
        arrival_rate=rate,
        interarrival_mean=inter_mean,
        interarrival_std=inter_std,
        interarrival_cv=inter_std / inter_mean if inter_mean > 0 else 0.0,
        duration_mean=float(durations.mean()),
        duration_p50=float(np.percentile(durations, 50)),
        duration_p95=float(np.percentile(durations, 95)),
        duration_min=float(durations.min()),
        duration_max=float(durations.max()),
        mean_demand=tuple(float(demand[:, d].mean()) for d in range(n_res)),
        offered_load=offered,
    )
