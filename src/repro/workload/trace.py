"""Trace file I/O.

Two formats are supported:

* The library's canonical CSV — header
  ``job_id,arrival_time,duration,cpu,mem,disk`` with times in seconds and
  resource demands as fractions of one server. This is the format all
  examples and benchmarks read and write.
* The Google cluster-usage *task events* table (Reiss, Wilkes &
  Hellerstein, 2011): a headerless CSV whose relevant columns are
  timestamp (microseconds), job ID, event type, and normalized CPU /
  memory / disk requests. :func:`read_google_task_events` pairs SUBMIT
  (type 0) with FINISH (type 4) events per job-ID incarnation to recover
  per-job durations — drop the real trace files in and the rest of the
  library runs unchanged.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.sim.job import Job

_HEADER = ["job_id", "arrival_time", "duration", "cpu", "mem", "disk"]

#: Google task-events column indices (per the trace format + schema doc).
_G_TIME, _G_JOB_ID, _G_EVENT = 0, 2, 5
_G_CPU, _G_MEM, _G_DISK = 9, 10, 11
_G_SUBMIT, _G_FINISH = 0, 4
_MICROSECONDS = 1e6


def write_trace_csv(jobs: Iterable[Job], path: str | Path) -> int:
    """Write jobs in the canonical CSV format; returns the row count.

    Raises
    ------
    ValueError
        If a job carries more than 3 resource dimensions (the canonical
        format holds exactly cpu/mem/disk, so extra dimensions would be
        silently dropped) or any NaN field (NaN round-trips through
        ``float(repr(...))`` but poisons every downstream aggregate).
    """
    path = Path(path)
    count = 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_HEADER)
        for job in jobs:
            if len(job.resources) > 3:
                raise ValueError(
                    f"job {job.job_id}: {len(job.resources)} resource dimensions; "
                    f"the canonical CSV holds exactly {len(_HEADER) - 3} "
                    "(cpu, mem, disk), so a write/read round-trip would lose data"
                )
            fields = [job.arrival_time, job.duration, *job.resources]
            if any(math.isnan(float(v)) for v in fields):
                raise ValueError(f"job {job.job_id}: NaN field cannot be written")
            res = list(job.resources) + [0.0] * (3 - len(job.resources))
            # float() first: repr of numpy scalars is not parseable text.
            writer.writerow(
                [job.job_id, repr(float(job.arrival_time)), repr(float(job.duration))]
                + [repr(float(r)) for r in res]
            )
            count += 1
    return count


def read_trace_csv(path: str | Path) -> list[Job]:
    """Read a canonical trace CSV back into a job list.

    Raises
    ------
    ValueError
        On a malformed header or row.
    """
    path = Path(path)
    jobs: list[Job] = []
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != _HEADER:
            raise ValueError(f"{path}: unexpected header {header!r}")
        for lineno, row in enumerate(reader, start=2):
            if len(row) != len(_HEADER):
                raise ValueError(f"{path}:{lineno}: expected {len(_HEADER)} fields")
            jobs.append(
                Job(
                    job_id=int(row[0]),
                    arrival_time=float(row[1]),
                    duration=float(row[2]),
                    resources=(float(row[3]), float(row[4]), float(row[5])),
                )
            )
    return jobs


def jobs_from_arrays(
    arrival_times: Sequence[float] | np.ndarray,
    durations: Sequence[float] | np.ndarray,
    resources: Sequence[Sequence[float]] | np.ndarray,
    start_id: int = 0,
) -> list[Job]:
    """Assemble jobs from parallel arrays (sorted by arrival time).

    Raises
    ------
    ValueError
        If array lengths disagree.
    """
    arrival_times = np.asarray(arrival_times, dtype=np.float64)
    durations = np.asarray(durations, dtype=np.float64)
    resources = np.asarray(resources, dtype=np.float64)
    if not (len(arrival_times) == len(durations) == len(resources)):
        raise ValueError(
            f"length mismatch: {len(arrival_times)} arrivals, "
            f"{len(durations)} durations, {len(resources)} resource rows"
        )
    order = np.argsort(arrival_times, kind="stable")
    return [
        Job(
            job_id=start_id + rank,
            arrival_time=float(arrival_times[i]),
            duration=float(durations[i]),
            resources=tuple(float(r) for r in resources[i]),
        )
        for rank, i in enumerate(order)
    ]


def read_google_task_events(
    paths: Sequence[str | Path],
    min_duration: float = 60.0,
    max_duration: float = 7200.0,
) -> list[Job]:
    """Extract jobs from Google cluster-usage task-events CSV files.

    Pairs SUBMIT with FINISH events per job-ID *incarnation*: rows are
    processed in timestamp order (files and rows may arrive out of
    order), each FINISH closes the currently open SUBMIT of its job ID,
    and the ID then becomes available again — Google traces recycle job
    IDs across RESUBMIT cycles, and pairing first-SUBMIT with
    first-FINISH would fabricate durations spanning several
    incarnations. Keeps jobs whose duration falls in
    ``[min_duration, max_duration]`` (the paper keeps 1 min–2 h), and
    returns them sorted by arrival time with arrival times re-based to
    zero. Rows with missing resource requests are skipped.

    Memory: all SUBMIT/FINISH rows are buffered and globally sorted —
    out-of-order tolerance requires a total time order — so peak memory
    is proportional to the event count of the files passed in (the same
    order as the job-keyed dicts this replaces). Feed part files in
    segment-sized batches rather than the whole 40 GB trace at once; a
    streaming merge for pre-sorted part files is a ROADMAP item.
    """
    Res = tuple[float, float, float]
    rows: list[tuple[float, int, int, Res | None]] = []
    for path in paths:
        with Path(path).open(newline="") as fh:
            for row in csv.reader(fh):
                if len(row) <= _G_DISK:
                    continue
                try:
                    event = int(row[_G_EVENT])
                    time_s = float(row[_G_TIME]) / _MICROSECONDS
                    job_id = int(row[_G_JOB_ID])
                except (ValueError, IndexError):
                    continue
                if event == _G_SUBMIT:
                    try:
                        res = (
                            float(row[_G_CPU]),
                            float(row[_G_MEM]),
                            float(row[_G_DISK]),
                        )
                    except ValueError:
                        continue
                    rows.append((time_s, job_id, event, res))
                elif event == _G_FINISH:
                    rows.append((time_s, job_id, event, None))

    # Stable sort: simultaneous rows keep file order, so a same-instant
    # FINISH/SUBMIT reuse cycle resolves the way the trace wrote it.
    rows.sort(key=lambda rec: rec[0])
    pending: dict[int, tuple[float, Res]] = {}
    records = []
    for time_s, job_id, event, res in rows:
        if event == _G_SUBMIT:
            # Duplicate SUBMITs inside one incarnation keep the first.
            if job_id not in pending:
                pending[job_id] = (time_s, res)  # type: ignore[assignment]
            continue
        opened = pending.pop(job_id, None)  # FINISH: reset the incarnation
        if opened is None:
            continue  # FINISH with no open SUBMIT (trace window cut it off)
        t_submit, submit_res = opened
        duration = time_s - t_submit
        if not min_duration <= duration <= max_duration:
            continue
        if any(r <= 0.0 or r > 1.0 for r in submit_res):
            continue
        records.append((t_submit, duration, submit_res))

    records.sort(key=lambda rec: rec[0])
    if not records:
        return []
    t0 = records[0][0]
    return [
        Job(job_id=i, arrival_time=t - t0, duration=d, resources=res)
        for i, (t, d, res) in enumerate(records)
    ]
