"""Trace file I/O.

Two formats are supported:

* The library's canonical CSV — header
  ``job_id,arrival_time,duration,cpu,mem,disk`` with times in seconds and
  resource demands as fractions of one server. This is the format all
  examples and benchmarks read and write.
* The Google cluster-usage *task events* table (Reiss, Wilkes &
  Hellerstein, 2011): a headerless CSV whose relevant columns are
  timestamp (microseconds), job ID, event type, and normalized CPU /
  memory / disk requests. :func:`read_google_task_events` pairs SUBMIT
  (type 0) with FINISH (type 4) events per job-ID incarnation to recover
  per-job durations — drop the real trace files in and the rest of the
  library runs unchanged.
"""

from __future__ import annotations

import csv
import heapq
import logging
import math
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.obs import telemetry as obs
from repro.sim.churn import CapacityEvent
from repro.sim.job import Job

logger = logging.getLogger(__name__)

_HEADER = ["job_id", "arrival_time", "duration", "cpu", "mem", "disk"]

#: Google task-events column indices (per the trace format + schema doc).
_G_TIME, _G_JOB_ID, _G_EVENT = 0, 2, 5
_G_CPU, _G_MEM, _G_DISK = 9, 10, 11
_G_SUBMIT, _G_FINISH = 0, 4
_MICROSECONDS = 1e6

#: Google machine-events column indices (per the schema doc): timestamp,
#: machine ID, event type; ADD (0) brings a machine up, REMOVE (1) takes
#: it down, UPDATE (2) changes its capacity (ignored here).
_M_TIME, _M_MACHINE, _M_EVENT = 0, 1, 2
_M_ADD, _M_REMOVE, _M_UPDATE = 0, 1, 2


def write_trace_csv(jobs: Iterable[Job], path: str | Path) -> int:
    """Write jobs in the canonical CSV format; returns the row count.

    Raises
    ------
    ValueError
        If a job carries more than 3 resource dimensions (the canonical
        format holds exactly cpu/mem/disk, so extra dimensions would be
        silently dropped) or any NaN field (NaN round-trips through
        ``float(repr(...))`` but poisons every downstream aggregate).
    """
    path = Path(path)
    count = 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_HEADER)
        for job in jobs:
            if len(job.resources) > 3:
                raise ValueError(
                    f"job {job.job_id}: {len(job.resources)} resource dimensions; "
                    f"the canonical CSV holds exactly {len(_HEADER) - 3} "
                    "(cpu, mem, disk), so a write/read round-trip would lose data"
                )
            fields = [job.arrival_time, job.duration, *job.resources]
            if any(math.isnan(float(v)) for v in fields):
                raise ValueError(f"job {job.job_id}: NaN field cannot be written")
            res = list(job.resources) + [0.0] * (3 - len(job.resources))
            # float() first: repr of numpy scalars is not parseable text.
            writer.writerow(
                [job.job_id, repr(float(job.arrival_time)), repr(float(job.duration))]
                + [repr(float(r)) for r in res]
            )
            count += 1
    return count


def read_trace_csv(path: str | Path) -> list[Job]:
    """Read a canonical trace CSV back into a job list.

    Raises
    ------
    ValueError
        On a malformed header or row.
    """
    path = Path(path)
    tel = obs.get()
    jobs: list[Job] = []
    with tel.span("trace.parse"):
        with path.open(newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header != _HEADER:
                raise ValueError(f"{path}: unexpected header {header!r}")
            for lineno, row in enumerate(reader, start=2):
                if len(row) != len(_HEADER):
                    raise ValueError(
                        f"{path}:{lineno}: expected {len(_HEADER)} fields"
                    )
                jobs.append(
                    Job(
                        job_id=int(row[0]),
                        arrival_time=float(row[1]),
                        duration=float(row[2]),
                        resources=(float(row[3]), float(row[4]), float(row[5])),
                    )
                )
    tel.counter("trace.jobs_parsed", len(jobs))
    logger.debug("parsed %d jobs from %s", len(jobs), path)
    return jobs


def jobs_from_arrays(
    arrival_times: Sequence[float] | np.ndarray,
    durations: Sequence[float] | np.ndarray,
    resources: Sequence[Sequence[float]] | np.ndarray,
    start_id: int = 0,
) -> list[Job]:
    """Assemble jobs from parallel arrays (sorted by arrival time).

    Raises
    ------
    ValueError
        If array lengths disagree.
    """
    arrival_times = np.asarray(arrival_times, dtype=np.float64)
    durations = np.asarray(durations, dtype=np.float64)
    resources = np.asarray(resources, dtype=np.float64)
    if not (len(arrival_times) == len(durations) == len(resources)):
        raise ValueError(
            f"length mismatch: {len(arrival_times)} arrivals, "
            f"{len(durations)} durations, {len(resources)} resource rows"
        )
    order = np.argsort(arrival_times, kind="stable")
    return [
        Job(
            job_id=start_id + rank,
            arrival_time=float(arrival_times[i]),
            duration=float(durations[i]),
            resources=tuple(float(r) for r in resources[i]),
        )
        for rank, i in enumerate(order)
    ]


#: A parsed task-events row: (time_s, job_id, event, resources-or-None).
_TaskRow = tuple[float, int, int, "tuple[float, float, float] | None"]


def _parse_task_row(row: list[str]) -> _TaskRow | None:
    """One task-events CSV row as a typed record, or None to skip it."""
    if len(row) <= _G_DISK:
        return None
    try:
        event = int(row[_G_EVENT])
        time_s = float(row[_G_TIME]) / _MICROSECONDS
        job_id = int(row[_G_JOB_ID])
    except (ValueError, IndexError):
        return None
    if event == _G_SUBMIT:
        try:
            res = (
                float(row[_G_CPU]),
                float(row[_G_MEM]),
                float(row[_G_DISK]),
            )
        except ValueError:
            return None
        return (time_s, job_id, event, res)
    if event == _G_FINISH:
        return (time_s, job_id, event, None)
    return None


def _task_file_is_sorted(path: Path) -> bool:
    """Whether a file's rows are already in timestamp order.

    A cheap streaming pre-pass (nothing buffered, only the timestamp
    column converted): the real trace's part files are time-sorted, so
    this is the common case and unlocks O(1) per-file memory in
    :func:`_iter_task_rows`. Rows without a parseable timestamp are
    ignored (the full parse skips them too); noise rows *with*
    timestamps may flag a file unsorted even though its usable rows are
    ordered — that only costs the buffered fallback, never correctness.
    """
    last = -math.inf
    with path.open() as fh:
        # Raw line scan, no CSV machinery: the timestamp is the first
        # column and is never quoted, so splitting at the first comma
        # is exact and several times cheaper than csv.reader.
        for line in fh:
            try:
                time_s = float(line.split(",", 1)[0])
            except ValueError:
                continue
            if time_s < last:
                return False
            last = time_s
    return True


def _iter_task_rows(path: str | Path) -> Iterator[_TaskRow]:
    """Yield one file's usable rows in timestamp order.

    Time-sorted files (the real trace's part files) stream row by row —
    two sequential passes, O(1) memory. A file with out-of-order rows is
    buffered and stably sorted, preserving the pre-streaming tolerance:
    simultaneous rows keep file order, so a same-instant FINISH/SUBMIT
    reuse cycle resolves the way the trace wrote it.
    """
    path = Path(path)
    if _task_file_is_sorted(path):
        with path.open(newline="") as fh:
            for row in csv.reader(fh):
                rec = _parse_task_row(row)
                if rec is not None:
                    yield rec
        return
    rows = []
    with path.open(newline="") as fh:
        for row in csv.reader(fh):
            rec = _parse_task_row(row)
            if rec is not None:
                rows.append(rec)
    rows.sort(key=lambda rec: rec[0])  # stable: ties keep file order
    yield from rows


def read_google_task_events(
    paths: Sequence[str | Path],
    min_duration: float = 60.0,
    max_duration: float = 7200.0,
) -> list[Job]:
    """Extract jobs from Google cluster-usage task-events CSV files.

    Pairs SUBMIT with FINISH events per job-ID *incarnation*: rows are
    processed in timestamp order (files and rows may arrive out of
    order), each FINISH closes the currently open SUBMIT of its job ID,
    and the ID then becomes available again — Google traces recycle job
    IDs across RESUBMIT cycles, and pairing first-SUBMIT with
    first-FINISH would fabricate durations spanning several
    incarnations. Keeps jobs whose duration falls in
    ``[min_duration, max_duration]`` (the paper keeps 1 min–2 h), and
    returns them sorted by arrival time with arrival times re-based to
    zero. Rows with missing resource requests are skipped.

    Memory: files are consumed through a streaming
    :func:`heapq.merge` over per-file iterators. Time-sorted part files
    (the real trace's are) stream with O(1) row memory per file — peak
    memory is then proportional to the *job* count, not the event count
    — while a file with out-of-order rows is buffered and sorted on its
    own (see :func:`_iter_task_rows`), bounding the buffer at one file
    instead of the whole file set. The merged order is identical to the
    previous buffer-everything-and-stable-sort implementation: per-file
    order is preserved and ``heapq.merge`` resolves equal timestamps in
    argument (file) order.
    """
    Res = tuple[float, float, float]
    tel = obs.get()
    with tel.span("trace.parse"):
        merged = heapq.merge(
            *(_iter_task_rows(path) for path in paths), key=lambda rec: rec[0]
        )
        pending: dict[int, tuple[float, Res]] = {}
        records = []
        n_rows = 0
        for time_s, job_id, event, res in merged:
            n_rows += 1
            if event == _G_SUBMIT:
                # Duplicate SUBMITs inside one incarnation keep the first.
                if job_id not in pending:
                    pending[job_id] = (time_s, res)  # type: ignore[assignment]
                continue
            opened = pending.pop(job_id, None)  # FINISH: reset the incarnation
            if opened is None:
                continue  # FINISH with no open SUBMIT (trace window cut it off)
            t_submit, submit_res = opened
            duration = time_s - t_submit
            if not min_duration <= duration <= max_duration:
                continue
            if any(r <= 0.0 or r > 1.0 for r in submit_res):
                continue
            records.append((t_submit, duration, submit_res))

        records.sort(key=lambda rec: rec[0])
    tel.counter("trace.rows_scanned", n_rows)
    tel.counter("trace.jobs_parsed", len(records))
    logger.debug(
        "paired %d jobs from %d usable task-event rows across %d files",
        len(records),
        n_rows,
        len(paths),
    )
    if not records:
        return []
    t0 = records[0][0]
    return [
        Job(job_id=i, arrival_time=t - t0, duration=d, resources=res)
        for i, (t, d, res) in enumerate(records)
    ]


def read_google_machine_events(
    paths: Sequence[str | Path],
    num_servers: int,
    min_duration: float = 1.0,
    open_duration: float | None = None,
) -> tuple[CapacityEvent, ...]:
    """Parse Google *machine events* tables into a capacity-churn schedule.

    The machine-events table records the physical fleet's lifecycle:
    ADD (0) brings a machine up, REMOVE (1) takes it down (failure or
    maintenance), UPDATE (2) changes its capacity in place. This pairs
    each REMOVE with the machine's next ADD and emits one full drain
    (:class:`~repro.sim.churn.CapacityEvent` with ``fraction=0``) per
    down window, so replay scenarios churn capacity exactly when the
    recorded cluster did.

    Machines map onto the simulated fleet round-robin in first-seen
    order (the recording typically has far more machines than the
    simulated cluster; overlapping drains on one slot compose per
    :func:`~repro.sim.churn.schedule_capacity_events`' last-restore-wins
    rule). Times are seconds, re-based so the first event is t = 0 —
    matching how task-events arrivals re-base.

    Parameters
    ----------
    paths:
        Machine-events CSV files (headerless, timestamp µs / machine ID
        / event type in the first three columns). Malformed rows and
        UPDATE events are skipped.
    num_servers:
        Size of the simulated fleet the machine IDs map onto.
    min_duration:
        Drop down windows shorter than this many seconds (sub-second
        remove/re-add flaps churn the DPM state for nothing).
    open_duration:
        Close REMOVEs that never see a matching ADD at this absolute
        re-based time (e.g. the replay horizon — the trace window ended
        with the machine still down); ``None`` drops them. Open drains
        starting at or after this time are dropped either way.

    Raises
    ------
    ValueError
        If ``num_servers`` is not positive.
    """
    if num_servers < 1:
        raise ValueError(f"num_servers must be positive, got {num_servers}")
    rows: list[tuple[float, int, int]] = []
    for path in paths:
        with Path(path).open(newline="") as fh:
            for row in csv.reader(fh):
                if len(row) <= _M_EVENT:
                    continue
                try:
                    time_s = float(row[_M_TIME]) / _MICROSECONDS
                    machine = int(row[_M_MACHINE])
                    event = int(row[_M_EVENT])
                except (ValueError, IndexError):
                    continue
                if event in (_M_ADD, _M_REMOVE):
                    rows.append((time_s, machine, event))
    if not rows:
        return ()
    rows.sort(key=lambda rec: rec[0])  # stable: ties keep file order
    t0 = rows[0][0]

    slots: dict[int, int] = {}  # machine ID -> simulated server index
    down_since: dict[int, float] = {}  # machine ID -> drain start (re-based)
    events: list[CapacityEvent] = []

    def emit(machine: int, start: float, end: float) -> None:
        duration = end - start
        if duration < min_duration:
            return
        events.append(
            CapacityEvent(
                time=start,
                server_id=slots[machine],
                duration=duration,
                fraction=0.0,
            )
        )

    for time_s, machine, event in rows:
        t = time_s - t0
        if machine not in slots:
            slots[machine] = len(slots) % num_servers
        if event == _M_REMOVE:
            down_since.setdefault(machine, t)
        else:  # ADD closes an open drain; an initial ADD just registers
            start = down_since.pop(machine, None)
            if start is not None:
                emit(machine, start, t)
    if open_duration is not None:
        for machine, start in down_since.items():
            emit(machine, start, open_duration)
    events.sort(key=lambda e: (e.time, e.server_id))
    return tuple(events)
