"""Elementwise activation functions with analytic derivatives.

The paper's Q-network uses Exponential Linear Units (ELUs); the LSTM uses
sigmoid gates and tanh candidates. Each activation exposes

* ``forward(z) -> y``
* ``derivative(z, y) -> dy/dz`` (given both the pre-activation ``z`` and the
  already-computed output ``y``, so implementations can use whichever is
  cheaper).
"""

from __future__ import annotations

import numpy as np


class Activation:
    """Base class for elementwise activations."""

    name = "base"

    def forward(self, z: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def derivative(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class Identity(Activation):
    """Linear activation: ``y = z``."""

    name = "identity"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return z

    def derivative(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.ones_like(z)


class ReLU(Activation):
    """Rectified linear unit: ``y = max(z, 0)``."""

    name = "relu"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.maximum(z, 0.0)

    def derivative(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        return (z > 0.0).astype(np.float64)


class ELU(Activation):
    """Exponential linear unit, the activation the paper's Q-network uses.

    ``y = z`` for ``z > 0`` and ``alpha * (exp(z) - 1)`` otherwise.
    """

    name = "elu"

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = float(alpha)

    def forward(self, z: np.ndarray) -> np.ndarray:
        # Branch-free split: expm1(min(z,0)) is exactly 0 for z >= 0 and
        # max(z,0) exactly 0 for z <= 0, so the sum equals the classic
        # where() formulation bit for bit (modulo the sign of zero) with
        # one fewer ufunc pass on the alpha == 1 hot path.
        neg = np.expm1(np.minimum(z, 0.0))
        if self.alpha != 1.0:
            neg *= self.alpha
        neg += np.maximum(z, 0.0)
        return neg

    def derivative(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        # For z <= 0, dy/dz = alpha * exp(z) = y + alpha.
        return np.where(z > 0.0, 1.0, y + self.alpha)


class Sigmoid(Activation):
    """Logistic sigmoid, numerically stable for large |z|."""

    name = "sigmoid"

    def forward(self, z: np.ndarray) -> np.ndarray:
        out = np.empty_like(z, dtype=np.float64)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    def derivative(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        return y * (1.0 - y)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.tanh(z)

    def derivative(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        return 1.0 - y * y


class Softplus(Activation):
    """Softplus ``log(1 + exp(z))``; smooth positive output, used in tests."""

    name = "softplus"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.logaddexp(0.0, z)

    def derivative(self, z: np.ndarray, y: np.ndarray) -> np.ndarray:
        return Sigmoid().forward(z)


_REGISTRY: dict[str, type[Activation]] = {
    cls.name: cls for cls in (Identity, ReLU, ELU, Sigmoid, Tanh, Softplus)
}
_REGISTRY["linear"] = Identity


def get_activation(name: str | Activation) -> Activation:
    """Resolve an activation by name (or pass an instance through).

    Raises
    ------
    KeyError
        If the name is unknown.
    """
    if isinstance(name, Activation):
        return name
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown activation {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[key]()
