"""Weight-blob serialization for :class:`~repro.nn.layers.Module` states.

A blob is a single ``.npz`` file holding one or more *named* state dicts
(as produced by :meth:`Module.state_dict`) plus a JSON metadata record.
Array entries are stored under ``<group>/<param-key>`` zip members, so a
blob can carry several networks at once — e.g. a policy checkpoint with
both the hierarchical Q-network and the LSTM predictor — and the
metadata travels inside the same file, keeping the blob atomic: either
the whole checkpoint exists or none of it does.

Writes go through a temp file + :func:`os.replace`, matching the result
store's crash-safety contract: a killed worker can never leave a
half-written blob under the final name.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import numpy as np

#: Reserved zip member holding the JSON metadata string.
META_KEY = "__meta__"

#: Separator between the group name and the parameter key.
GROUP_SEP = "/"


def save_states(
    path: str | Path,
    states: dict[str, dict[str, np.ndarray]],
    meta: dict | None = None,
) -> Path:
    """Atomically write named state dicts (plus metadata) to ``path``.

    Parameters
    ----------
    path:
        Destination ``.npz`` file; parent directories are created.
    states:
        Mapping of group name -> state dict. Group names must not
        contain :data:`GROUP_SEP` (it delimits the flattened keys).
    meta:
        JSON-serializable metadata stored alongside the arrays.

    Raises
    ------
    ValueError
        On an invalid group name.
    """
    flat: dict[str, np.ndarray] = {}
    for group, state in states.items():
        if not group or GROUP_SEP in group or group == META_KEY:
            raise ValueError(f"invalid state group name {group!r}")
        for key, value in state.items():
            flat[f"{group}{GROUP_SEP}{key}"] = np.asarray(value)
    flat[META_KEY] = np.array(json.dumps(meta or {}, sort_keys=True))

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **flat)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass
        raise
    return path


def load_states(
    path: str | Path,
) -> tuple[dict[str, dict[str, np.ndarray]], dict]:
    """Read a blob written by :func:`save_states`.

    Returns ``(states, meta)`` with arrays materialized in memory (the
    underlying file handle is closed before returning). Raises whatever
    :func:`numpy.load` / :func:`json.loads` raise on a corrupt blob —
    callers that must survive truncated files (the checkpoint store)
    catch and treat those as cache misses.
    """
    states: dict[str, dict[str, np.ndarray]] = {}
    with np.load(Path(path), allow_pickle=False) as blob:
        meta = json.loads(str(blob[META_KEY][()])) if META_KEY in blob else {}
        if not isinstance(meta, dict):
            raise ValueError(f"blob metadata must be a JSON object, got {meta!r}")
        for name in blob.files:
            if name == META_KEY:
                continue
            group, _, key = name.partition(GROUP_SEP)
            if not key:
                raise ValueError(f"malformed blob entry {name!r}")
            states.setdefault(group, {})[key] = blob[name]
    return states, meta
