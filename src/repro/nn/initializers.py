"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so that
every network construction in the library is reproducible from a seed.
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a ``(fan_in, fan_out)`` matrix."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(
            f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}"
        )
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def xavier_normal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier normal initialization for a ``(fan_in, fan_out)`` matrix."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(
            f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}"
        )
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def normal(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    mean: float = 0.0,
    std: float = 1.0,
) -> np.ndarray:
    """Normal initialization; the paper uses N(0, 1) for the LSTM I/O layers."""
    if std < 0:
        raise ValueError(f"std must be non-negative, got {std}")
    return rng.normal(mean, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialization."""
    return np.zeros(shape, dtype=np.float64)


def constant(shape: tuple[int, ...], value: float) -> np.ndarray:
    """Constant initialization; the paper uses 0.1 for LSTM layer biases."""
    return np.full(shape, float(value), dtype=np.float64)
