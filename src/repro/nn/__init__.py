"""Pure-NumPy neural network substrate.

The paper's DNNs (autoencoder + weight-shared Sub-Q networks in the global
tier, the LSTM workload predictor in the local tier) are implemented here
from scratch: dense layers, ELU/ReLU/tanh/sigmoid activations, MSE/Huber
losses, SGD and Adam optimizers with gradient-norm clipping, and an LSTM
cell with full backpropagation through time.

The API is functional-with-caches: ``layer.forward(x)`` returns
``(y, cache)`` and ``layer.backward(dy, cache)`` returns ``dx`` while
*accumulating* gradients into the layer's :class:`Parameter` objects.
Because gradients accumulate, the same layer object can be applied several
times inside one computation graph — which is exactly how the paper's
weight sharing (one autoencoder / one Sub-Q applied to every server group)
is realized.
"""

from repro.nn.activations import (
    ELU,
    Identity,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
    get_activation,
)
from repro.nn.autoencoder import Autoencoder
from repro.nn.initializers import constant, normal, xavier_normal, xavier_uniform, zeros
from repro.nn.layers import Dense, Module
from repro.nn.losses import HuberLoss, MAELoss, MSELoss
from repro.nn.lstm import LSTMCell, LSTMNetwork
from repro.nn.mlp import MLP
from repro.nn.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.nn.parameter import Parameter

__all__ = [
    "ELU",
    "Identity",
    "ReLU",
    "Sigmoid",
    "Softplus",
    "Tanh",
    "get_activation",
    "Autoencoder",
    "constant",
    "normal",
    "xavier_normal",
    "xavier_uniform",
    "zeros",
    "Dense",
    "Module",
    "HuberLoss",
    "MAELoss",
    "MSELoss",
    "LSTMCell",
    "LSTMNetwork",
    "MLP",
    "SGD",
    "Adam",
    "Optimizer",
    "clip_grad_norm",
    "Parameter",
]
