"""Trainable parameter container.

A :class:`Parameter` pairs a value array with a gradient accumulator.
Weight sharing in this library is expressed by letting several modules
reference the *same* ``Parameter`` instance: every backward pass adds into
``grad``, so shared parameters receive the sum of gradients from all of
their use sites — the semantics the paper relies on for its shared
autoencoders and Sub-Q networks.
"""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable array with an accumulated gradient.

    Parameters
    ----------
    value:
        Initial value; copied into a float64 array.
    name:
        Optional human-readable name, used in ``repr`` and error messages.
    """

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64).copy()
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero in place."""
        self.grad.fill(0.0)

    def accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the accumulated gradient.

        Raises
        ------
        ValueError
            If ``grad`` does not broadcast-match the parameter shape.
        """
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.value.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{self.name or '<unnamed>'} shape {self.value.shape}"
            )
        self.grad += grad

    def copy(self) -> "Parameter":
        """Return an independent deep copy (value and gradient)."""
        out = Parameter(self.value, name=self.name)
        out.grad = self.grad.copy()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"
