"""Gradient-descent optimizers and gradient clipping.

The paper trains its networks with Adam (Kingma & Ba) and clips gradient
norms to 10 in the global tier; both are implemented here. Optimizers
operate on lists of :class:`~repro.nn.parameter.Parameter` — shared
parameters appear once and therefore get exactly one update per step.
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale all gradients so that their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping global norm (useful for monitoring).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total_sq = sum(float(np.sum(p.grad**2)) for p in parameters)
    total = float(np.sqrt(total_sq))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in parameters:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, parameters: list[Parameter]) -> None:
        if not parameters:
            raise ValueError("optimizer needs at least one parameter")
        # Deduplicate while preserving order; shared params update once.
        seen: dict[int, Parameter] = {}
        for p in parameters:
            seen.setdefault(id(p), p)
        self.parameters = list(seen.values())

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.value -= self.lr * v
            else:
                p.value -= self.lr * p.grad


class Adam(Optimizer):
    """Adam: adaptive moment estimation (Kingma & Ba, 2014).

    The paper's stated optimizer for both the LSTM predictor and the
    global-tier DNN training.
    """

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
