"""Autoencoder used by the global tier to compress server-group states.

The paper builds the encoder from two fully-connected ELU layers of 30 and
15 neurons; the decoder mirrors it. ``encode`` produces the low-dimensional
representation ``g_bar`` that the Sub-Q networks consume for *other*
groups, and the whole autoencoder can be pre-trained on reconstruction
loss during the offline phase.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.nn.losses import MSELoss
from repro.nn.mlp import MLP
from repro.nn.layers import Module
from repro.nn.optim import Adam


class Autoencoder(Module):
    """Symmetric autoencoder: ``input -> hidden... -> code -> ... -> input``.

    Parameters
    ----------
    input_dim:
        Width of the raw group state.
    hidden_sizes:
        Encoder widths; the last entry is the code dimension. The paper
        uses ``(30, 15)``.
    activation:
        Hidden activation (paper: ELU).
    """

    def __init__(
        self,
        input_dim: int,
        hidden_sizes: Sequence[int] = (30, 15),
        activation: str = "elu",
        rng: np.random.Generator | None = None,
        name: str = "ae",
    ) -> None:
        if input_dim <= 0:
            raise ValueError(f"input_dim must be positive, got {input_dim}")
        if not hidden_sizes:
            raise ValueError("hidden_sizes must be non-empty")
        if rng is None:
            rng = np.random.default_rng(0)
        self.input_dim = int(input_dim)
        self.code_dim = int(hidden_sizes[-1])
        encoder_sizes = [input_dim, *hidden_sizes]
        decoder_sizes = list(reversed(encoder_sizes))
        # The code layer itself is activated (it feeds the Sub-Q networks);
        # the reconstruction output is linear.
        self.encoder = MLP(
            encoder_sizes,
            hidden_activation=activation,
            output_activation=activation,
            rng=rng,
            name=f"{name}.enc",
        )
        self.decoder = MLP(
            decoder_sizes,
            hidden_activation=activation,
            output_activation="identity",
            rng=rng,
            name=f"{name}.dec",
        )

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Map raw states ``(batch, input_dim)`` to ``(batch, code_dim)`` codes."""
        return self.encoder.predict(x)

    def encode_with_cache(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, list[dict[str, Any]]]:
        """Like :meth:`encode` but returns the caches needed for backprop."""
        return self.encoder.forward(x)

    def encoder_backward(
        self, dcode: np.ndarray, caches: list[dict[str, Any]]
    ) -> np.ndarray:
        """Backprop through the encoder only (used when Q-loss flows into codes)."""
        return self.encoder.backward(dcode, caches)

    def reconstruct(self, x: np.ndarray) -> np.ndarray:
        """Encode then decode."""
        return self.decoder.predict(self.encode(x))

    def reconstruction_loss(self, x: np.ndarray) -> float:
        """Mean-squared reconstruction error over a batch."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return MSELoss().forward(self.reconstruct(x), x)

    def share_with(self, other: "Autoencoder") -> None:
        """Share encoder and decoder parameters with ``other``."""
        self.encoder.share_with(other.encoder)
        self.decoder.share_with(other.decoder)

    def fit(
        self,
        x: np.ndarray,
        epochs: int = 50,
        batch_size: int = 64,
        lr: float = 1e-3,
        rng: np.random.Generator | None = None,
    ) -> list[float]:
        """Pre-train on reconstruction loss; returns per-epoch losses."""
        if rng is None:
            rng = np.random.default_rng(0)
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        loss = MSELoss()
        optimizer = Adam(self.parameters(), lr=lr)
        history: list[float] = []
        n = x.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                batch = x[order[start : start + batch_size]]
                code, enc_caches = self.encoder.forward(batch)
                recon, dec_caches = self.decoder.forward(code)
                epoch_loss += loss.forward(recon, batch)
                batches += 1
                self.zero_grad()
                dcode = self.decoder.backward(loss.backward(recon, batch), dec_caches)
                self.encoder.backward(dcode, enc_caches)
                optimizer.step()
            history.append(epoch_loss / max(batches, 1))
        return history
