"""LSTM cell and sequence network with full backpropagation through time.

The paper's local-tier workload predictor is a three-layer network: an
input hidden layer, an LSTM cell layer (30 hidden units, weights shared
across all time steps), and an output hidden layer. It predicts the next
job inter-arrival time from the previous 35 inter-arrival times, is
trained with Adam, and initializes the input/output layer weights from
N(0, 1) with constant bias 0.1. All of that is reproduced here.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.nn.activations import Sigmoid, Tanh
from repro.nn.initializers import constant, normal, xavier_uniform, zeros
from repro.nn.layers import Dense, Module
from repro.nn.losses import MSELoss
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.parameter import Parameter

_SIGMOID = Sigmoid()
_TANH = Tanh()


class LSTMCell(Module):
    """Single LSTM cell; the same weights are applied at every time step.

    Gate order in the stacked weight matrices is ``[i, f, o, g]`` (input,
    forget, output, candidate).
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: np.random.Generator | None = None,
        forget_bias: float = 1.0,
        name: str = "lstm",
    ) -> None:
        if input_dim <= 0 or hidden_dim <= 0:
            raise ValueError(
                f"dims must be positive, got input={input_dim}, hidden={hidden_dim}"
            )
        if rng is None:
            rng = np.random.default_rng(0)
        self.input_dim = int(input_dim)
        self.hidden_dim = int(hidden_dim)
        h = self.hidden_dim
        self.w_x = Parameter(xavier_uniform(rng, input_dim, 4 * h), name=f"{name}.Wx")
        self.w_h = Parameter(xavier_uniform(rng, h, 4 * h), name=f"{name}.Wh")
        bias = zeros((4 * h,))
        # Positive initial forget bias is the standard trick to let gradients
        # flow early in training.
        bias[h : 2 * h] = forget_bias
        self.bias = Parameter(bias, name=f"{name}.b")

    def initial_state(self, batch: int) -> tuple[np.ndarray, np.ndarray]:
        """Zero hidden and cell states, as the paper initializes them."""
        return (
            np.zeros((batch, self.hidden_dim)),
            np.zeros((batch, self.hidden_dim)),
        )

    def step(
        self,
        x: np.ndarray,
        h_prev: np.ndarray,
        c_prev: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, dict[str, Any]]:
        """One time step; returns ``(h, c, cache)``."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.input_dim:
            raise ValueError(
                f"input width {x.shape[1]} != cell input_dim {self.input_dim}"
            )
        hd = self.hidden_dim
        z = x @ self.w_x.value + h_prev @ self.w_h.value + self.bias.value
        i = _SIGMOID.forward(z[:, :hd])
        f = _SIGMOID.forward(z[:, hd : 2 * hd])
        o = _SIGMOID.forward(z[:, 2 * hd : 3 * hd])
        g = _TANH.forward(z[:, 3 * hd :])
        c = f * c_prev + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        cache = {
            "x": x, "h_prev": h_prev, "c_prev": c_prev,
            "i": i, "f": f, "o": o, "g": g, "c": c, "tanh_c": tanh_c,
        }
        return h, c, cache

    def step_backward(
        self,
        dh: np.ndarray,
        dc: np.ndarray,
        cache: dict[str, Any],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backprop one step; returns ``(dx, dh_prev, dc_prev)``.

        ``dh``/``dc`` are gradients flowing into this step's outputs (from
        the loss and from the following time step). Parameter gradients are
        accumulated in place.
        """
        i, f, o, g = cache["i"], cache["f"], cache["o"], cache["g"]
        tanh_c = cache["tanh_c"]
        dc_total = dc + dh * o * (1.0 - tanh_c**2)
        do = dh * tanh_c
        di = dc_total * g
        df = dc_total * cache["c_prev"]
        dg = dc_total * i
        # Through the gate nonlinearities.
        dz = np.concatenate(
            [
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                do * o * (1.0 - o),
                dg * (1.0 - g**2),
            ],
            axis=1,
        )
        self.w_x.accumulate(cache["x"].T @ dz)
        self.w_h.accumulate(cache["h_prev"].T @ dz)
        self.bias.accumulate(dz.sum(axis=0))
        dx = dz @ self.w_x.value.T
        dh_prev = dz @ self.w_h.value.T
        dc_prev = dc_total * f
        return dx, dh_prev, dc_prev


class LSTMNetwork(Module):
    """Input dense layer -> LSTM cells (shared weights) -> output dense layer.

    Parameters
    ----------
    input_dim:
        Per-step feature width (1 for scalar inter-arrival times).
    hidden_dim:
        LSTM hidden units (paper: 30).
    output_dim:
        Prediction width (1 for scalar inter-arrival times).
    cell_input_dim:
        Width of the input hidden layer's output feeding the cell; defaults
        to ``hidden_dim``.
    init:
        ``"paper"`` initializes the input/output dense layers from N(0, 1)
        with bias 0.1 (Sec. VI-A); ``"xavier"`` uses Glorot-uniform with
        zero bias, which trains more stably and is the default.
    """

    def __init__(
        self,
        input_dim: int = 1,
        hidden_dim: int = 30,
        output_dim: int = 1,
        cell_input_dim: int | None = None,
        init: str = "xavier",
        rng: np.random.Generator | None = None,
    ) -> None:
        if rng is None:
            rng = np.random.default_rng(0)
        if init not in ("xavier", "paper"):
            raise ValueError(f"init must be 'xavier' or 'paper', got {init!r}")
        cell_input_dim = int(cell_input_dim or hidden_dim)
        self.input_dim = int(input_dim)
        self.hidden_dim = int(hidden_dim)
        self.output_dim = int(output_dim)
        self.input_layer = Dense(
            input_dim, cell_input_dim, activation="tanh", rng=rng, name="lstm.in"
        )
        self.cell = LSTMCell(cell_input_dim, hidden_dim, rng=rng)
        self.output_layer = Dense(
            hidden_dim, output_dim, activation="identity", rng=rng, name="lstm.out"
        )
        if init == "paper":
            self.input_layer.weight.value = normal(
                rng, (input_dim, cell_input_dim), mean=0.0, std=1.0
            )
            self.input_layer.bias.value = constant((cell_input_dim,), 0.1)
            self.output_layer.weight.value = normal(
                rng, (hidden_dim, output_dim), mean=0.0, std=1.0
            )
            self.output_layer.bias.value = constant((output_dim,), 0.1)

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, dict[str, Any]]:
        """Run a batch of sequences ``(batch, T, input_dim)``.

        Returns the prediction from the final time step, shape
        ``(batch, output_dim)``, plus caches for :meth:`backward`.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 2:  # (batch, T) scalar sequences
            x = x[:, :, None]
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise ValueError(
                f"expected (batch, T, {self.input_dim}) input, got shape {x.shape}"
            )
        batch, steps, _ = x.shape
        if steps < 1:
            raise ValueError("sequence length must be at least 1")
        h, c = self.cell.initial_state(batch)
        in_caches: list[Any] = []
        cell_caches: list[dict[str, Any]] = []
        for t in range(steps):
            xt, in_cache = self.input_layer.forward(x[:, t, :])
            h, c, cell_cache = self.cell.step(xt, h, c)
            in_caches.append(in_cache)
            cell_caches.append(cell_cache)
        y, out_cache = self.output_layer.forward(h)
        caches = {
            "in": in_caches,
            "cell": cell_caches,
            "out": out_cache,
            "batch": batch,
            "steps": steps,
        }
        return y, caches

    def backward(self, dy: np.ndarray, caches: dict[str, Any]) -> None:
        """Full BPTT from the final-step prediction gradient ``dy``."""
        dh = self.output_layer.backward(dy, caches["out"])
        dc = np.zeros((caches["batch"], self.hidden_dim))
        for t in range(caches["steps"] - 1, -1, -1):
            dxt, dh, dc = self.cell.step_backward(dh, dc, caches["cell"][t])
            self.input_layer.backward(dxt, caches["in"][t])

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference on a batch of sequences."""
        y, _ = self.forward(x)
        return y

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 30,
        batch_size: int = 32,
        lr: float = 1e-3,
        rng: np.random.Generator | None = None,
        max_grad_norm: float | None = 10.0,
    ) -> list[float]:
        """Train with Adam on (sequence -> next value) pairs.

        Returns per-epoch mean MSE losses.
        """
        if rng is None:
            rng = np.random.default_rng(0)
        x = np.asarray(x, dtype=np.float64)
        y = np.atleast_2d(np.asarray(y, dtype=np.float64))
        if y.shape[0] != x.shape[0]:
            raise ValueError(f"x has {x.shape[0]} sequences but y has {y.shape[0]}")
        loss = MSELoss()
        optimizer = Adam(self.parameters(), lr=lr)
        history: list[float] = []
        n = x.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                pred, caches = self.forward(x[idx])
                epoch_loss += loss.forward(pred, y[idx])
                batches += 1
                self.zero_grad()
                self.backward(loss.backward(pred, y[idx]), caches)
                if max_grad_norm is not None:
                    clip_grad_norm(self.parameters(), max_grad_norm)
                optimizer.step()
            history.append(epoch_loss / max(batches, 1))
        return history
