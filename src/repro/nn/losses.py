"""Loss functions with analytic gradients.

Each loss exposes ``forward(pred, target) -> float`` and
``backward(pred, target) -> dL/dpred`` where the gradient is averaged over
the batch (matching the mean-reduction of ``forward``).
"""

from __future__ import annotations

import numpy as np


def _prepare(pred: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"pred shape {pred.shape} != target shape {target.shape}")
    return pred, target


class MSELoss:
    """Mean squared error ``mean((pred - target)^2)``."""

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = _prepare(pred, target)
        return float(np.mean((pred - target) ** 2))

    def backward(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        pred, target = _prepare(pred, target)
        return 2.0 * (pred - target) / pred.size


class MAELoss:
    """Mean absolute error; subgradient 0 at exact zero residual."""

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = _prepare(pred, target)
        return float(np.mean(np.abs(pred - target)))

    def backward(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        pred, target = _prepare(pred, target)
        return np.sign(pred - target) / pred.size


class HuberLoss:
    """Huber loss: quadratic within ``delta`` of the target, linear outside.

    Commonly used to stabilize deep Q-learning targets.
    """

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred, target = _prepare(pred, target)
        err = pred - target
        abs_err = np.abs(err)
        quad = np.minimum(abs_err, self.delta)
        lin = abs_err - quad
        return float(np.mean(0.5 * quad**2 + self.delta * lin))

    def backward(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        pred, target = _prepare(pred, target)
        err = pred - target
        return np.clip(err, -self.delta, self.delta) / pred.size
