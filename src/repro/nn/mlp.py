"""Multi-layer perceptron built from Dense layers.

Used for the Sub-Q networks of the global tier (one hidden layer of 128
ELUs plus a linear output, per the paper) and as a generic regressor in
tests and ablations.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.nn.activations import Activation
from repro.nn.layers import Dense, Module
from repro.nn.losses import MSELoss
from repro.nn.optim import Adam, clip_grad_norm


class MLP(Module):
    """Feed-forward network ``Dense -> ... -> Dense``.

    Parameters
    ----------
    layer_sizes:
        Widths including input and output, e.g. ``[8, 128, 1]``.
    hidden_activation:
        Activation for all hidden layers (paper: ELU).
    output_activation:
        Activation for the final layer (paper: linear Q output).
    rng:
        Generator for weight initialization.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        hidden_activation: str | Activation = "elu",
        output_activation: str | Activation = "identity",
        rng: np.random.Generator | None = None,
        name: str = "mlp",
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("layer_sizes needs at least input and output widths")
        if rng is None:
            rng = np.random.default_rng(0)
        self.layer_sizes = [int(s) for s in layer_sizes]
        self.layers: list[Dense] = []
        sizes = self.layer_sizes
        for i, (fan_in, fan_out) in enumerate(zip(sizes, sizes[1:])):
            is_last = i == len(self.layer_sizes) - 2
            act = output_activation if is_last else hidden_activation
            self.layers.append(
                Dense(fan_in, fan_out, activation=act, rng=rng, name=f"{name}.{i}")
            )

    @property
    def in_features(self) -> int:
        return self.layer_sizes[0]

    @property
    def out_features(self) -> int:
        return self.layer_sizes[-1]

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, list[dict[str, Any]]]:
        """Run a batch through the network; returns ``(output, caches)``."""
        caches: list[dict[str, Any]] = []
        out = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for layer in self.layers:
            out, cache = layer.forward(out)
            caches.append(cache)
        return out, caches

    def backward(self, dy: np.ndarray, caches: list[dict[str, Any]]) -> np.ndarray:
        """Backprop a batch; accumulates grads; returns ``dL/dx``."""
        grad = np.atleast_2d(np.asarray(dy, dtype=np.float64))
        for layer, cache in zip(reversed(self.layers), reversed(caches)):
            grad = layer.backward(grad, cache)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference without building backward caches.

        Computes exactly the arithmetic of :meth:`forward` (so results
        are bit-identical) but skips the per-layer cache dicts and input
        re-validation — the decision-epoch hot path calls this at batch
        sizes where that Python overhead, not the GEMMs, dominates.
        """
        out = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if out.shape[-1] != self.in_features:
            raise ValueError(
                f"input width {out.shape[-1]} != layer in_features {self.in_features}"
            )
        for layer in self.layers:
            out = layer.activation.forward(
                out @ layer.weight.value + layer.bias.value
            )
        return out

    def share_with(self, other: "MLP") -> None:
        """Share all layer parameters with ``other`` (weight sharing)."""
        if self.layer_sizes != other.layer_sizes:
            raise ValueError("cannot share weights between differently-shaped MLPs")
        for mine, theirs in zip(self.layers, other.layers):
            mine.share_with(theirs)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 100,
        batch_size: int = 32,
        lr: float = 1e-3,
        rng: np.random.Generator | None = None,
        max_grad_norm: float | None = None,
        loss: MSELoss | None = None,
    ) -> list[float]:
        """Convenience supervised training loop; returns per-epoch losses."""
        if rng is None:
            rng = np.random.default_rng(0)
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.atleast_2d(np.asarray(y, dtype=np.float64))
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"x has {x.shape[0]} rows but y has {y.shape[0]}")
        loss = loss or MSELoss()
        optimizer = Adam(self.parameters(), lr=lr)
        history: list[float] = []
        n = x.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                pred, caches = self.forward(x[idx])
                epoch_loss += loss.forward(pred, y[idx])
                batches += 1
                self.zero_grad()
                self.backward(loss.backward(pred, y[idx]), caches)
                if max_grad_norm is not None:
                    clip_grad_norm(self.parameters(), max_grad_norm)
                optimizer.step()
            history.append(epoch_loss / max(batches, 1))
        return history
