"""Module base class and the fully-connected (Dense) layer.

Layers are functional-with-caches: ``forward`` returns ``(output, cache)``
and ``backward`` consumes the cache, accumulates parameter gradients, and
returns the gradient with respect to the layer input. One layer object may
therefore appear several times in a single computation graph (weight
sharing); each call site keeps its own cache.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.nn.activations import Activation, get_activation
from repro.nn.initializers import xavier_uniform, zeros
from repro.nn.parameter import Parameter


class Module:
    """Base class: anything that owns (possibly shared) parameters."""

    def parameters(self) -> list[Parameter]:
        """Return this module's unique parameters (deduplicated by identity)."""
        seen: dict[int, Parameter] = {}
        for param in self._iter_parameters():
            seen.setdefault(id(param), param)
        return list(seen.values())

    def _iter_parameters(self) -> Iterator[Parameter]:
        """Yield parameters, possibly with duplicates; override in subclasses."""
        for value in vars(self).values():
            if isinstance(value, Parameter):
                yield value
            elif isinstance(value, Module):
                yield from value._iter_parameters()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Parameter):
                        yield item
                    elif isinstance(item, Module):
                        yield from item._iter_parameters()

    def zero_grad(self) -> None:
        """Zero the gradient accumulators of all parameters."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters (shared counted once)."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot parameter values keyed by parameter name + index."""
        return {
            f"{i}:{p.name}": p.value.copy() for i, p in enumerate(self.parameters())
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`.

        Raises
        ------
        ValueError
            If the snapshot does not match this module's parameters.
        """
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} entries, module has {len(params)} parameters"
            )
        for i, param in enumerate(params):
            key = f"{i}:{param.name}"
            if key not in state:
                raise ValueError(f"missing parameter {key!r} in state dict")
            value = state[key]
            if value.shape != param.value.shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: {value.shape} vs {param.value.shape}"
                )
            param.value = value.copy()


class Dense(Module):
    """Fully-connected layer ``y = act(x @ W + b)``.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    activation:
        Activation name or instance; defaults to identity (linear layer).
    rng:
        Random generator for weight init (Xavier uniform). Required unless
        ``weight``/``bias`` parameters are supplied for sharing.
    weight, bias:
        Existing :class:`Parameter` objects to share instead of allocating
        new ones.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str | Activation = "identity",
        rng: np.random.Generator | None = None,
        weight: Parameter | None = None,
        bias: Parameter | None = None,
        name: str = "dense",
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"layer widths must be positive, got {in_features} -> {out_features}"
            )
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.activation: Activation = get_activation(activation)
        if weight is None:
            if rng is None:
                raise ValueError("rng is required when weight is not provided")
            weight = Parameter(
                xavier_uniform(rng, in_features, out_features), name=f"{name}.W"
            )
        if bias is None:
            bias = Parameter(zeros((out_features,)), name=f"{name}.b")
        if weight.shape != (in_features, out_features):
            raise ValueError(
                f"shared weight shape {weight.shape} != ({in_features}, {out_features})"
            )
        if bias.shape != (out_features,):
            raise ValueError(f"shared bias shape {bias.shape} != ({out_features},)")
        self.weight = weight
        self.bias = bias

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, dict[str, Any]]:
        """Compute ``act(x @ W + b)``.

        ``x`` has shape ``(batch, in_features)``, or a stacked
        ``(groups, batch, in_features)`` — the stacked form runs one BLAS
        call per leading slice (numpy's batched matmul), so each slice's
        result is bit-identical to a separate 2-D forward of that slice.
        """
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"input width {x.shape[-1]} != layer in_features {self.in_features}"
            )
        z = x @ self.weight.value + self.bias.value
        y = self.activation.forward(z)
        return y, {"x": x, "z": z, "y": y}

    def backward(self, dy: np.ndarray, cache: dict[str, Any]) -> np.ndarray:
        """Backprop through the layer; accumulates grads, returns ``dL/dx``.

        For stacked ``(groups, batch, ...)`` caches, parameter gradients
        are accumulated slice by slice in leading-axis order, matching a
        sequential per-slice backward bit for bit.
        """
        dy = np.atleast_2d(np.asarray(dy, dtype=np.float64))
        dz = dy * self.activation.derivative(cache["z"], cache["y"])
        x = cache["x"]
        if dz.ndim == 2:
            self.weight.accumulate(x.T @ dz)
            self.bias.accumulate(dz.sum(axis=0))
        else:
            dw = np.matmul(np.swapaxes(x, -1, -2), dz)
            db = dz.sum(axis=-2)
            for k in range(dz.shape[0]):
                self.weight.accumulate(dw[k])
                self.bias.accumulate(db[k])
        return dz @ self.weight.value.T

    def share_with(self, other: "Dense") -> None:
        """Make this layer use ``other``'s parameters (weight sharing)."""
        if (other.in_features, other.out_features) != (
            self.in_features,
            self.out_features,
        ):
            raise ValueError("cannot share weights between differently-shaped layers")
        self.weight = other.weight
        self.bias = other.bias

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dense({self.in_features} -> {self.out_features}, "
            f"activation={self.activation.name})"
        )
