"""Run telemetry: spans, counters, gauges, and rolling rates.

The measurement substrate behind ``--profile`` and ``repro obs report``:
a :class:`Telemetry` instance aggregates

* **spans** — named wall-clock intervals (:meth:`Telemetry.span` as a
  context manager, or :meth:`Telemetry.record` for pre-measured leaf
  durations). Spans nest: each span's *self* time excludes the time
  spent in child spans, so a sorted self-time breakdown attributes every
  microsecond of a run to exactly one phase (pop / route / dispatch /
  settle / ...), never twice.
* **counters** — monotone event counts (jobs arrived, broker decisions,
  checkpoint hits/misses).
* **gauges** — point-in-time samples of a fluctuating quantity
  (:class:`~repro.sim.events.EventQueue` depth, per-site queue lengths),
  summarized as last/min/max/mean.
* **marks** — timestamped occurrences feeding rolling-window rates
  (jobs/s, events/s): the groundwork for the streaming monitor's live
  throughput readout.

Enabling is process-global and explicit: :func:`enable` installs an
active :class:`Telemetry`, :func:`capture` scopes one around a block,
and :func:`active` returns it (or ``None``). **The disabled path is a
module-level no-op singleton** — :data:`NULL`, returned by :func:`get`
when nothing is active — and the hot loops additionally branch on
``active() is None`` so a disabled run executes the exact same
instructions it did before this module existed. Telemetry never touches
simulation state, so enabled and disabled runs produce bit-identical
results (asserted by the parity tests); the only cost of enabling is
wall-clock, bounded by the overhead guard test at <10% on the
federation hot path.

All times come from :func:`time.perf_counter` (monotonic); a different
clock may be injected for deterministic tests.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

#: Version of the snapshot payload layout (``telemetry.json`` schema).
TELEMETRY_SCHEMA = 1

#: Default rolling-rate window in seconds (see :meth:`Telemetry.rate`).
DEFAULT_RATE_WINDOW_S = 5.0

#: Timestamps retained per mark name; old marks age out of the window
#: anyway, so a bounded deque keeps per-event cost O(1) and memory flat.
_MARK_CAPACITY = 4096


@dataclass(slots=True)
class SpanStat:
    """Aggregate of every completed span (or :meth:`record`) of one name."""

    calls: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    max_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "calls": self.calls,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "max_s": self.max_s,
        }


@dataclass(slots=True)
class GaugeStat:
    """Summary of point-in-time samples of one gauge."""

    last: float = 0.0
    min: float = 0.0
    max: float = 0.0
    sum: float = 0.0
    n: int = 0

    def sample(self, value: float) -> None:
        if self.n == 0:
            self.min = self.max = value
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.last = value
        self.sum += value
        self.n += 1

    def as_dict(self) -> dict:
        return {
            "last": self.last,
            "min": self.min,
            "max": self.max,
            "mean": self.sum / self.n if self.n else 0.0,
            "n": self.n,
        }


class _Span:
    """One live span on the stack; created by :meth:`Telemetry.span`."""

    __slots__ = ("_tel", "_name", "_start", "_child_s")

    def __init__(self, tel: "Telemetry", name: str) -> None:
        self._tel = tel
        self._name = name

    def __enter__(self) -> "_Span":
        self._child_s = 0.0
        self._tel._stack.append(self)
        self._start = self._tel._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tel = self._tel
        elapsed = tel._clock() - self._start
        tel._stack.pop()
        stat = tel.spans.get(self._name)
        if stat is None:
            stat = tel.spans[self._name] = SpanStat()
        stat.calls += 1
        stat.total_s += elapsed
        stat.self_s += elapsed - self._child_s
        if elapsed > stat.max_s:
            stat.max_s = elapsed
        if tel._stack:
            tel._stack[-1]._child_s += elapsed
        return False


class Telemetry:
    """Aggregating collector for one run (or one capture scope).

    Parameters
    ----------
    clock:
        Monotonic time source; :func:`time.perf_counter` by default.
        Injectable so invariant tests can drive deterministic times.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.spans: dict[str, SpanStat] = {}
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, GaugeStat] = {}
        self._marks: dict[str, deque] = {}
        self._mark_counts: dict[str, int] = {}
        self._stack: list[_Span] = []
        self._t0 = clock()

    # -- spans ---------------------------------------------------------

    def span(self, name: str) -> _Span:
        """Context manager timing one named interval (nestable)."""
        return _Span(self, name)

    def record(self, name: str, elapsed_s: float) -> None:
        """Fold a pre-measured leaf duration into the span aggregates.

        For call sites where wrapping a ~microsecond operation in a
        context manager would cost as much as the operation itself (the
        event-loop ``pop`` phase): time it inline with the telemetry
        clock and record the result. Attributed exactly like a childless
        span — it charges the enclosing span's child time, so self-time
        accounting stays exact.
        """
        stat = self.spans.get(name)
        if stat is None:
            stat = self.spans[name] = SpanStat()
        stat.calls += 1
        stat.total_s += elapsed_s
        stat.self_s += elapsed_s
        if elapsed_s > stat.max_s:
            stat.max_s = elapsed_s
        if self._stack:
            self._stack[-1]._child_s += elapsed_s

    def fold(
        self,
        name: str,
        calls: int,
        total_s: float,
        self_s: float,
        max_s: float,
    ) -> None:
        """Merge externally accumulated span aggregates in one step.

        The batch counterpart of :meth:`record` for instrumented hot
        loops that tally calls and durations in plain locals and flush
        once per run — the per-event accounting cost collapses to a few
        float adds. Unlike :meth:`record`, no parent child-time is
        charged here: the caller already did that per call (or in bulk,
        when every batched interval shares one parent span).
        """
        if calls <= 0:
            return
        stat = self.spans.get(name)
        if stat is None:
            stat = self.spans[name] = SpanStat()
        stat.calls += calls
        stat.total_s += total_s
        stat.self_s += self_s
        if max_s > stat.max_s:
            stat.max_s = max_s

    # -- counters / gauges / marks ------------------------------------

    def counter(self, name: str, n: int = 1) -> None:
        """Add ``n`` to a monotone counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Sample a point-in-time value of a fluctuating quantity."""
        stat = self.gauges.get(name)
        if stat is None:
            stat = self.gauges[name] = GaugeStat()
        stat.sample(float(value))

    def mark(self, name: str) -> None:
        """Timestamp one occurrence for the rolling-rate estimators."""
        d = self._marks.get(name)
        if d is None:
            d = self._marks[name] = deque(maxlen=_MARK_CAPACITY)
        self._mark_counts[name] = self._mark_counts.get(name, 0) + 1
        d.append(self._clock())

    def rate(self, name: str, window_s: float = DEFAULT_RATE_WINDOW_S) -> float:
        """Occurrences per second over the trailing ``window_s`` seconds.

        The window is clipped to the telemetry's own lifetime, so a run
        shorter than the window still reports an honest rate; an unknown
        mark rates 0.0.
        """
        if window_s <= 0.0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        d = self._marks.get(name)
        if not d:
            return 0.0
        now = self._clock()
        effective = min(window_s, now - self._t0)
        if effective <= 0.0:
            return 0.0
        cutoff = now - effective
        recent = sum(1 for t in d if t >= cutoff)
        return recent / effective

    # -- export --------------------------------------------------------

    def elapsed_s(self) -> float:
        """Seconds since this collector was created."""
        return self._clock() - self._t0

    def snapshot(self, rate_window_s: float = DEFAULT_RATE_WINDOW_S) -> dict:
        """The JSON-able ``RunTelemetry`` payload (``telemetry.json``)."""
        elapsed = self.elapsed_s()
        rates = {}
        for name, count in sorted(self._mark_counts.items()):
            rates[name] = {
                "count": count,
                "per_s": count / elapsed if elapsed > 0.0 else 0.0,
                "window_s": rate_window_s,
                "window_per_s": self.rate(name, rate_window_s),
            }
        return {
            "schema": TELEMETRY_SCHEMA,
            "wall_s": elapsed,
            "spans": {
                name: stat.as_dict() for name, stat in sorted(self.spans.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "gauges": {
                name: stat.as_dict() for name, stat in sorted(self.gauges.items())
            },
            "rates": rates,
        }


class _NullSpan:
    """Reusable do-nothing context manager (one shared instance)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled path: every probe is a no-op, every read is empty.

    A single module-level instance (:data:`NULL`) stands in wherever
    code wants an unconditional ``get().span(...)`` call without
    branching; hot loops that cannot afford even the no-op call branch
    on :func:`active` instead.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name: str, elapsed_s: float) -> None:
        pass

    def counter(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def mark(self, name: str) -> None:
        pass

    def rate(self, name: str, window_s: float = DEFAULT_RATE_WINDOW_S) -> float:
        return 0.0

    def elapsed_s(self) -> float:
        return 0.0

    def snapshot(self, rate_window_s: float = DEFAULT_RATE_WINDOW_S) -> None:
        return None


#: The module-level no-op singleton — telemetry's disabled state.
NULL = NullTelemetry()

_active: Telemetry | None = None


def active() -> Telemetry | None:
    """The enabled collector, or ``None`` (the hot-path branch check)."""
    return _active


def get() -> Telemetry | NullTelemetry:
    """The enabled collector, or the :data:`NULL` no-op singleton."""
    return _active if _active is not None else NULL


def enabled() -> bool:
    return _active is not None


def enable(telemetry: Telemetry | None = None) -> Telemetry:
    """Install (and return) the process-global active collector."""
    global _active
    _active = telemetry if telemetry is not None else Telemetry()
    return _active


def disable() -> Telemetry | None:
    """Deactivate telemetry; returns the collector that was active."""
    global _active
    previous = _active
    _active = None
    return previous


@contextmanager
def capture(telemetry: Telemetry | None = None) -> Iterator[Telemetry]:
    """Scope an active collector around a block, restoring the previous.

    Nested captures stack: the inner scope's collector wins for its
    duration and the outer one is restored afterwards (the outer scope
    simply does not observe the inner block).
    """
    global _active
    previous = _active
    tel = enable(telemetry)
    try:
        yield tel
    finally:
        _active = previous


# ----------------------------------------------------------------------
# Roll-up across runs (sweep cells)
# ----------------------------------------------------------------------


def merge_snapshots(snapshots: Iterable[dict | None]) -> dict:
    """Combine per-run snapshots into one sweep-level aggregate.

    Span calls/total/self sum (``max_s`` takes the max); counters sum;
    gauges keep global min/max with an n-weighted mean; mark counts sum.
    ``wall_s`` is the *sum* of the member runs' wall clocks — cells may
    have run concurrently, so it reads as aggregate busy time, not sweep
    duration — and the merged rates are counts over that busy time
    (window rates are per-run quantities and do not survive a merge).
    ``None`` entries (cells run without profiling) are skipped.
    """
    spans: dict[str, dict] = {}
    counters: dict[str, int] = {}
    gauges: dict[str, dict] = {}
    rate_counts: dict[str, int] = {}
    wall_s = 0.0
    n_runs = 0
    for snap in snapshots:
        if snap is None:
            continue
        n_runs += 1
        wall_s += snap.get("wall_s", 0.0)
        for name, stat in snap.get("spans", {}).items():
            agg = spans.get(name)
            if agg is None:
                spans[name] = dict(stat)
            else:
                agg["calls"] += stat["calls"]
                agg["total_s"] += stat["total_s"]
                agg["self_s"] += stat["self_s"]
                agg["max_s"] = max(agg["max_s"], stat["max_s"])
        for name, count in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + count
        for name, stat in snap.get("gauges", {}).items():
            agg = gauges.get(name)
            if agg is None:
                gauges[name] = dict(stat)
            else:
                total = agg["n"] + stat["n"]
                if total:
                    agg["mean"] = (
                        agg["mean"] * agg["n"] + stat["mean"] * stat["n"]
                    ) / total
                agg["min"] = min(agg["min"], stat["min"])
                agg["max"] = max(agg["max"], stat["max"])
                agg["last"] = stat["last"]
                agg["n"] = total
        for name, stat in snap.get("rates", {}).items():
            rate_counts[name] = rate_counts.get(name, 0) + stat.get("count", 0)
    rates = {
        name: {
            "count": count,
            "per_s": count / wall_s if wall_s > 0.0 else 0.0,
        }
        for name, count in sorted(rate_counts.items())
    }
    return {
        "schema": TELEMETRY_SCHEMA,
        "n_runs": n_runs,
        "wall_s": wall_s,
        "spans": dict(sorted(spans.items())),
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "rates": rates,
    }
