"""Package-wide stdlib logging configuration.

Every ``repro`` module logs through ``logging.getLogger(__name__)``;
this module owns the single handler those loggers funnel into. The CLI
calls :func:`configure_logging` from its global ``--log-level`` /
``-v`` flags; library users call it directly (or attach their own
handlers to the ``"repro"`` logger — nothing here touches the root
logger, so embedding applications keep full control).
"""

from __future__ import annotations

import logging
import sys

#: Logger namespace the whole package logs under.
ROOT_LOGGER = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

#: ``-v`` count to level: default WARNING, -v INFO, -vv DEBUG.
_VERBOSITY_LEVELS = (logging.WARNING, logging.INFO, logging.DEBUG)


def resolve_level(
    log_level: str | int | None = None, verbosity: int = 0
) -> int:
    """Map the CLI's ``--log-level``/``-v`` pair to a logging level.

    An explicit ``--log-level`` (name or number) wins over ``-v``
    counts; verbosity beyond ``-vv`` clamps to DEBUG.

    Raises
    ------
    ValueError
        On an unknown level name.
    """
    if log_level is not None:
        if isinstance(log_level, int):
            return log_level
        name = log_level.upper()
        level = logging.getLevelName(name)
        if not isinstance(level, int):
            raise ValueError(
                f"unknown log level {log_level!r}; use DEBUG, INFO, "
                "WARNING, ERROR, or CRITICAL"
            )
        return level
    index = min(max(verbosity, 0), len(_VERBOSITY_LEVELS) - 1)
    return _VERBOSITY_LEVELS[index]


def configure_logging(
    log_level: str | int | None = None,
    verbosity: int = 0,
    stream=None,
) -> logging.Logger:
    """Install (or retune) the package handler; returns the repro logger.

    Idempotent: repeated calls adjust the level of the existing handler
    instead of stacking new ones, so tests and long-lived sessions can
    reconfigure freely.
    """
    level = resolve_level(log_level, verbosity)
    logger = logging.getLogger(ROOT_LOGGER)
    handler = next(
        (
            h
            for h in logger.handlers
            if getattr(h, "_repro_handler", False)
        ),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        handler._repro_handler = True  # type: ignore[attr-defined]
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    logger.setLevel(level)
    logger.propagate = False
    return logger
