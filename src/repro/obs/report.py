"""Render telemetry snapshots as sorted self-time breakdowns.

``repro obs report telemetry.json`` lands here: given a per-run
snapshot (:meth:`~repro.obs.telemetry.Telemetry.snapshot`) or a
sweep-level roll-up (:func:`~repro.obs.telemetry.merge_snapshots`), the
renderer prints the spans ranked by *self* time — where the run
actually spent its wall clock, each phase counted exactly once — plus
the counters, gauge summaries, and throughput rates.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path

logger = logging.getLogger(__name__)

_SPAN_HEADERS = ["Span", "Calls", "Total (s)", "Self (s)", "Self %", "Max (ms)"]


def phase_coverage(snapshot: dict, root: str = "run") -> float:
    """Fraction of the root span's time attributed to child phases.

    Self-time accounting makes this exact: time inside ``root`` that no
    child span claimed is ``root``'s own self time, so coverage is
    ``1 - self/total``. Returns 0.0 when the root span is absent or
    empty. The acceptance bar for the instrumented event loop is >= 0.9
    — at least 90% of the run's wall clock lands in a named phase.
    """
    stat = snapshot.get("spans", {}).get(root)
    if not stat or stat["total_s"] <= 0.0:
        return 0.0
    return 1.0 - stat["self_s"] / stat["total_s"]


def span_rows(snapshot: dict, top: int | None = None) -> list[list]:
    """Span table rows sorted by self time, descending."""
    wall = snapshot.get("wall_s", 0.0)
    stats = sorted(
        snapshot.get("spans", {}).items(),
        key=lambda item: item[1]["self_s"],
        reverse=True,
    )
    if top is not None:
        stats = stats[:top]
    rows = []
    for name, stat in stats:
        share = stat["self_s"] / wall if wall > 0.0 else 0.0
        rows.append(
            [
                name,
                stat["calls"],
                f"{stat['total_s']:.4f}",
                f"{stat['self_s']:.4f}",
                f"{share:6.1%}",
                f"{stat['max_s'] * 1e3:.3f}",
            ]
        )
    return rows


def render_report(snapshot: dict, top: int | None = None) -> str:
    """Full text report: spans by self time, counters, gauges, rates."""
    # Imported here, not at module top: ``repro.sim`` imports the
    # telemetry sibling of this module, and ``repro.harness`` imports
    # ``repro.sim`` — a module-level import would tie the knot.
    from repro.harness.report import format_table

    lines = []
    wall = snapshot.get("wall_s", 0.0)
    header = f"telemetry: {wall:.3f} s wall"
    if "n_runs" in snapshot:
        header += f" across {snapshot['n_runs']} runs"
    coverage = phase_coverage(snapshot)
    if coverage > 0.0:
        header += f", {coverage:.1%} of the run span attributed to phases"
    lines.append(header)
    lines.append("")
    if snapshot.get("spans"):
        lines.append(format_table(_SPAN_HEADERS, span_rows(snapshot, top)))
    else:
        lines.append("(no spans recorded)")
    if snapshot.get("counters"):
        lines.append("")
        lines.append(
            format_table(
                ["Counter", "Count"],
                [[name, count] for name, count in snapshot["counters"].items()],
            )
        )
    if snapshot.get("gauges"):
        lines.append("")
        lines.append(
            format_table(
                ["Gauge", "Last", "Min", "Mean", "Max", "Samples"],
                [
                    [
                        name,
                        f"{g['last']:.1f}",
                        f"{g['min']:.1f}",
                        f"{g['mean']:.1f}",
                        f"{g['max']:.1f}",
                        g["n"],
                    ]
                    for name, g in snapshot["gauges"].items()
                ],
            )
        )
    if snapshot.get("rates"):
        rate_rows = []
        for name, r in snapshot["rates"].items():
            row = [name, r["count"], f"{r['per_s']:.1f}"]
            row.append(
                f"{r['window_per_s']:.1f}" if "window_per_s" in r else "-"
            )
            rate_rows.append(row)
        lines.append("")
        lines.append(
            format_table(["Rate", "Count", "Per s", "Window/s"], rate_rows)
        )
    return "\n".join(lines)


def load_snapshot(path: str | Path, heal: bool = False) -> dict | None:
    """Read a telemetry JSON artifact, validating its basic shape.

    With ``heal=True`` (the sweep roll-up path) a truncated or
    otherwise corrupt snapshot — a worker killed mid-write before
    snapshots became atomic, manual tampering — is discarded with a
    warning and ``None`` is returned instead of raising, matching
    ``ResultStore.get`` self-healing.

    Raises
    ------
    ValueError
        If the file is not a telemetry snapshot (missing ``spans``)
        and ``heal`` is False.
    """
    path = Path(path)
    try:
        with path.open() as fh:
            payload = json.load(fh)
    except json.JSONDecodeError:
        if heal:
            logger.warning("telemetry snapshot %s is corrupt; discarding", path)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        raise
    if not isinstance(payload, dict) or "spans" not in payload:
        if heal:
            logger.warning(
                "telemetry snapshot %s has no 'spans' key; discarding", path
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None
        raise ValueError(f"{path}: not a telemetry snapshot (no 'spans' key)")
    return payload


def write_snapshot(snapshot: dict, path: str | Path) -> Path:
    """Atomically write a snapshot as an indented, sorted-key artifact.

    Temp file + ``os.replace``, like the result store: a reader (or a
    resumed sweep rolling snapshots up) can never observe a torn write.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(json.dumps(snapshot, indent=1, sort_keys=True) + "\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass
        raise
    return path
