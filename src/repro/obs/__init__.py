"""``repro.obs`` — run-telemetry and logging for the simulator stack.

The observability layer the scaling work measures itself with:

* :mod:`repro.obs.telemetry` — near-zero-overhead-when-disabled spans /
  counters / gauges / rolling rates, aggregated per run and mergeable
  across sweep cells. Hot loops branch on :func:`active`; everything
  else may call :func:`get` unconditionally (disabled returns the
  :data:`NULL` no-op singleton).
* :mod:`repro.obs.report` — the sorted self-time breakdown behind
  ``repro obs report`` plus the ``telemetry.json`` (de)serialization.
* :mod:`repro.obs.logsetup` — the package's stdlib-logging handler and
  the ``--log-level`` / ``-v`` resolution the CLI uses.

Profiling a run end to end::

    from repro import obs

    with obs.capture() as tel:
        result = engine.run(streams)
    print(obs.render_report(tel.snapshot()))
"""

from repro.obs.logsetup import configure_logging, resolve_level
from repro.obs.report import (
    load_snapshot,
    phase_coverage,
    render_report,
    span_rows,
    write_snapshot,
)
from repro.obs.telemetry import (
    NULL,
    DEFAULT_RATE_WINDOW_S,
    TELEMETRY_SCHEMA,
    GaugeStat,
    NullTelemetry,
    SpanStat,
    Telemetry,
    active,
    capture,
    disable,
    enable,
    enabled,
    get,
    merge_snapshots,
)

__all__ = [
    "DEFAULT_RATE_WINDOW_S",
    "NULL",
    "TELEMETRY_SCHEMA",
    "GaugeStat",
    "NullTelemetry",
    "SpanStat",
    "Telemetry",
    "active",
    "capture",
    "configure_logging",
    "disable",
    "enable",
    "enabled",
    "get",
    "load_snapshot",
    "merge_snapshots",
    "phase_coverage",
    "render_report",
    "resolve_level",
    "span_rows",
    "write_snapshot",
]
