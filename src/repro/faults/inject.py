"""Engine-side fault runtime: crashes, failures, stragglers, routing.

:func:`install_faults` threads a resolved set of
:class:`~repro.faults.plan.SiteFaultPlan`\\ s into a running
:class:`~repro.sim.federation.FederationEngine`:

* each server's finish scheduling is taken over (stragglers stretch the
  service time, job failures fire at the would-be finish), with handles
  retained so a crash can cancel in-flight work;
* crash events kill running jobs and drain the queue — victims
  re-enqueue through a retry budget with exponential backoff, and the
  crashed server's capacity drops to zero until recovery;
* arrivals and retries route around downed servers and dark sites, and
  broker exceptions (a NaN'd DRL tier, an out-of-range decision) are
  contained by a least-loaded heuristic fallback instead of aborting
  the run.

Discipline inherited from the telemetry work: when no faults are
configured the runtime is never installed and the engine's fast path is
untouched; when installed with *null* specs it schedules the identical
finish events (same times, same kinds, same event order) and draws
nothing from any random stream, so inert injection stays bit-identical
— asserted by the zero-fault identity tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.faults.plan import SiteFaultPlan
from repro.faults.spec import FaultSpec
from repro.obs import telemetry as obs
from repro.sim.server import PowerState, Server

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.federation import FederationEngine, Site
    from repro.sim.job import Job

_NULL_SPEC = FaultSpec()


def _count(name: str, n: int = 1) -> None:
    """Bump an obs counter when telemetry is recording (else free)."""
    tel = obs.active()
    if tel is not None:
        tel.counter(name, n)


class SiteFaultState:
    """Mutable per-site fault state: rng streams, handles, downtime."""

    def __init__(self, site_index: int, plan: SiteFaultPlan | None) -> None:
        self.site_index = site_index
        self.plan = plan
        self.spec = plan.spec if plan is not None else _NULL_SPEC
        if plan is not None and (
            self.spec.job_failure_prob > 0.0 or self.spec.straggler_prob > 0.0
        ):
            fail_seq, straggler_seq = np.random.SeedSequence(plan.seed).spawn(2)
            self.fail_rng = np.random.default_rng(fail_seq)
            self.straggler_rng = np.random.default_rng(straggler_seq)
        else:
            self.fail_rng = None
            self.straggler_rng = None
        #: Finish events we scheduled, by job id (cancelled on crash).
        self.finish_events: dict[int, object] = {}
        self.down: set[int] = set()
        self._down_since: dict[int, float] = {}
        self.downtime: float = 0.0
        # Tallies for result payloads.
        self.crashes = 0
        self.jobs_killed = 0
        self.stragglers = 0
        self.runtime: "FaultRuntime | None" = None  # set by install()

    # -- job lifecycle --------------------------------------------------

    def start_job(self, server: Server, job: "Job", now: float) -> None:
        """Schedule the (possibly faulted) finish for a job starting now."""
        duration = job.duration
        spec = self.spec
        if (
            spec.straggler_prob > 0.0
            and self.straggler_rng.random() < spec.straggler_prob
        ):
            duration = duration * spec.straggler_factor
            self.stragglers += 1
            _count("faults.stragglers")
        self.finish_events[job.job_id] = server.events.schedule(
            now + duration,
            lambda t, server=server, job=job: self._finish(server, job, t),
            kind=f"finish:{job.job_id}",
        )

    def _finish(self, server: Server, job: "Job", now: float) -> None:
        """Our finish event fired: complete the job, or fail it."""
        self.finish_events.pop(job.job_id, None)
        spec = self.spec
        if (
            spec.job_failure_prob > 0.0
            and self.fail_rng.random() < spec.job_failure_prob
        ):
            server.kill_job(job, now)
            self.runtime.requeue(job, self.site_index, now)
            return
        self.runtime.attempts.pop(job.job_id, None)
        server._on_job_finish(job, now)

    # -- crash / recovery -----------------------------------------------

    def crash(self, server: Server, now: float, recovery: float) -> None:
        """Take a server down: kill its work, requeue it, schedule recovery.

        Overlapping crash windows collapse first-crash-wins: a crash on
        an already-down server is a no-op, so the earliest scheduled
        recovery reopens it.
        """
        sid = server.server_id
        if sid in self.down:
            return
        self.down.add(sid)
        self._down_since[sid] = now
        self.crashes += 1
        _count("faults.crashes")
        server.set_capacity(now, 0.0)
        victims = list(server.running.values())
        for job in victims:
            handle = self.finish_events.pop(job.job_id, None)
            if handle is not None:
                handle.cancel()
            server.kill_job(job, now)
            self.jobs_killed += 1
        queued = server.take_pending(now)
        if (
            server.state is PowerState.ACTIVE
            and not server.running
            and not server.pending
        ):
            server._enter_idle(now)
        for job in victims:
            self.runtime.requeue(job, self.site_index, now)
        for job in queued:
            self.runtime.requeue(job, self.site_index, now)
        server.events.schedule(
            now + recovery,
            lambda t, server=server: self.recover(server, t),
            kind=f"recover:{self.site_index}.{sid}",
        )

    def recover(self, server: Server, now: float) -> None:
        sid = server.server_id
        if sid not in self.down:
            return
        self.down.discard(sid)
        self.downtime += now - self._down_since.pop(sid)
        server.set_capacity(now, 1.0)

    def availability(self, final_time: float, num_servers: int) -> float:
        """Fraction of server-time up over the run, in [0, 1]."""
        if final_time <= 0.0 or num_servers <= 0:
            return 1.0
        total_down = self.downtime + sum(
            final_time - since for since in self._down_since.values()
        )
        return max(0.0, 1.0 - total_down / (num_servers * final_time))


class FaultRuntime:
    """Fault orchestration across the whole federation.

    Owns the per-site states, the retry ledger, and the degraded
    routing path; installed onto the engine by :func:`install_faults`.
    """

    def __init__(
        self,
        engine: "FederationEngine",
        plans: Sequence[SiteFaultPlan | None],
    ) -> None:
        if len(plans) != len(engine.sites):
            raise ValueError(
                f"got {len(plans)} fault plans for {len(engine.sites)} sites"
            )
        self.engine = engine
        self.states = [SiteFaultState(i, plan) for i, plan in enumerate(plans)]
        for state in self.states:
            state.runtime = self
        #: Retry counts by job id (absent = fresh job).
        self.attempts: dict[int, int] = {}
        self.broker_fallbacks = 0
        self.rerouted = 0

    # -- installation ---------------------------------------------------

    def install(self) -> None:
        engine = self.engine
        engine.faults = self
        for index, site in enumerate(engine.sites):
            state = self.states[index]
            for server in site.cluster.servers:
                server.faults = state
                server.on_finish = self._finish_handler(index)
            if state.plan is not None:
                servers = site.cluster.servers
                for event in state.plan.crashes:
                    server = servers[event.server_id]
                    engine.events.schedule(
                        event.time,
                        lambda t, state=state, server=server, rec=event.recovery: (
                            state.crash(server, t, rec)
                        ),
                        kind=f"crash:{index}.{event.server_id}",
                    )

    def _finish_handler(self, index: int):
        """Completion hook twin of the engine's, with broker containment.

        Same effects as the engine's uninstrumented handler (ledger
        sync, metrics, broker hooks); the broker callbacks alone are
        wrapped so a diverged learner cannot abort the run.
        """
        engine = self.engine
        site = engine.sites[index]

        def handle(job: "Job", now: float) -> None:
            site.cluster.sync(now)
            site.metrics.on_completion(job, now, site.cluster.total_energy())
            try:
                site.broker.on_job_finish(job, site.cluster, now)
            except Exception:
                self._broker_fallback()
            if engine.broker is not None:
                try:
                    engine.broker.on_job_finish(job, engine.sites, index, now)
                except Exception:
                    self._broker_fallback()

        return handle

    def _broker_fallback(self) -> None:
        self.broker_fallbacks += 1
        _count("faults.broker_fallbacks")

    # -- degraded routing -----------------------------------------------

    def handle_arrival(self, job: "Job", home: int, now: float) -> None:
        self._route(job, home, now, arrival=True)

    def _route(self, job: "Job", home: int, now: float, arrival: bool) -> None:
        """Dispatch one job, degrading around brokers and downed capacity."""
        engine = self.engine
        sites = engine.sites
        target: int | None
        if engine.broker is not None:
            try:
                target = engine.broker.select_site(job, sites, home, now)
            except Exception:
                target = None
            if target is not None and not 0 <= target < len(sites):
                target = None
            if target is None:
                self._broker_fallback()
                target = self._fallback_site(home)
        else:
            target = home
        state = self.states[target]
        if len(state.down) >= len(sites[target].cluster) and len(sites) > 1:
            # Dark site: steer to the least-loaded site with live servers
            # (if every site is dark, queue at the target anyway — work
            # starts once recovery restores capacity).
            rerouted_to = self._fallback_site(target)
            if rerouted_to != target:
                self.rerouted += 1
                _count("faults.rerouted")
                target = rerouted_to
                state = self.states[target]
        site = sites[target]
        if arrival:
            site.metrics.on_arrival(job, now)
        site.cluster.sync(now)
        index: int | None
        try:
            index = site.broker.select_server(job, site.cluster, now)
        except Exception:
            index = None
        if index is not None and not 0 <= index < len(site.cluster):
            index = None
        if index is None:
            self._broker_fallback()
            index = self._fallback_server(site, state)
        elif index in state.down:
            self.rerouted += 1
            _count("faults.rerouted")
            index = self._fallback_server(site, state)
        site.cluster[index].assign(job, now)

    def _fallback_site(self, home: int) -> int:
        """Least-loaded site with at least one live server (else home)."""
        best: int | None = None
        best_load = 0.0
        for i, site in enumerate(self.engine.sites):
            if len(self.states[i].down) >= len(site.cluster):
                continue
            load = float(site.cluster.ledger.in_system.sum())
            if best is None or load < best_load:
                best, best_load = i, load
        return home if best is None else best

    def _fallback_server(self, site: "Site", state: SiteFaultState) -> int:
        """Least-loaded live server (lowest id wins ties; 0 if all down)."""
        best: int | None = None
        best_load = 0
        for server in site.cluster.servers:
            if server.server_id in state.down:
                continue
            load = server.jobs_in_system
            if best is None or load < best_load:
                best, best_load = server.server_id, load
        return 0 if best is None else best

    # -- retry ledger ---------------------------------------------------

    def requeue(self, job: "Job", site_index: int, now: float) -> None:
        """Re-enqueue a killed/failed job, or fail it past the budget."""
        spec = self.states[site_index].spec
        site = self.engine.sites[site_index]
        n = self.attempts.get(job.job_id, 0) + 1
        if n > spec.max_retries:
            self.attempts.pop(job.job_id, None)
            site.metrics.on_failure(job, now)
            _count("faults.jobs_failed")
            return
        self.attempts[job.job_id] = n
        site.metrics.on_retry(job, now)
        _count("faults.retries")
        delay = spec.retry_backoff_s * (2.0 ** (n - 1))
        self.engine.events.schedule(
            now + delay,
            lambda t, job=job, home=site_index: self._route(
                job, home, t, arrival=False
            ),
            kind=f"retry:{job.job_id}",
        )

    # -- result payload helpers -----------------------------------------

    def site_availability(self, index: int, final_time: float) -> float:
        site = self.engine.sites[index]
        return self.states[index].availability(final_time, len(site.cluster))

    def fleet_availability(self, final_time: float) -> float:
        """Server-time-weighted availability across every site."""
        total = sum(len(site.cluster) for site in self.engine.sites)
        if total <= 0:
            return 1.0
        weighted = sum(
            self.site_availability(i, final_time) * len(site.cluster)
            for i, site in enumerate(self.engine.sites)
        )
        return weighted / total

    @property
    def total_crashes(self) -> int:
        return sum(state.crashes for state in self.states)

    @property
    def total_jobs_killed(self) -> int:
        return sum(state.jobs_killed for state in self.states)

    @property
    def total_stragglers(self) -> int:
        return sum(state.stragglers for state in self.states)


def install_faults(
    engine: "FederationEngine", plans: Sequence[SiteFaultPlan | None]
) -> FaultRuntime:
    """Attach a fault runtime to ``engine`` (one plan per site, None ok)."""
    runtime = FaultRuntime(engine, plans)
    runtime.install()
    return runtime
