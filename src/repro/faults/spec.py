"""Fault-injection specifications.

Pure, frozen dataclasses with no dependency on the rest of the
package, so :mod:`repro.scenarios.specs` can embed them in scenario
content keys without import cycles. A :class:`FaultSpec` describes the
*unplanned* failure dimension of a scenario — server crashes beyond
planned churn, per-job failure probability, straggler slowdowns, and
federation site outage windows — all resolved deterministically from
the cell seed (see :mod:`repro.faults.plan`).

The null spec (all rates zero, no outages) is the default everywhere
and must be indistinguishable from not configuring faults at all:
zero-fault runs stay bit-identical to the fault-unaware engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SiteOutageSpec:
    """A planned-in-spec, unplanned-in-simulation site-wide outage.

    Expressed as fractions of the run horizon (like
    ``FlashCrowdSpec`` / ``CapacityWindowSpec``) so one spec scales
    with ``--jobs``. During the window every server at ``site`` is
    crashed: running jobs are killed and re-enqueued through the
    retry path, and arrivals are routed to surviving sites.
    """

    site: int
    start_fraction: float
    duration_fraction: float

    def __post_init__(self) -> None:
        if self.site < 0:
            raise ValueError(f"site index must be >= 0, got {self.site}")
        if not 0.0 <= self.start_fraction < 1.0:
            raise ValueError(
                f"start_fraction must be in [0, 1), got {self.start_fraction}"
            )
        if not 0.0 < self.duration_fraction <= 1.0:
            raise ValueError(
                f"duration_fraction must be in (0, 1], got {self.duration_fraction}"
            )


@dataclass(frozen=True)
class FaultSpec:
    """Seeded unplanned-failure model for a scenario or a single site.

    ``crashes_per_server`` is the *expected* number of unplanned
    crashes each server suffers over the run horizon (a Poisson count
    per server, uniform crash times). A crash kills every running job
    on the server (each re-enqueues with a retry budget and
    exponential backoff) and takes its capacity to zero until it
    recovers ``crash_recovery_fraction`` of the horizon later — unlike
    planned ``CapacityWindowSpec`` churn, which drains gracefully and
    never kills work.

    ``job_failure_prob`` fails a job at its would-be finish time
    (the work is lost and the job re-enqueues); ``straggler_prob``
    stretches a job's service time by ``straggler_factor`` instead.
    Both are drawn per job start from seed-derived streams.
    """

    crashes_per_server: float = 0.0
    crash_recovery_fraction: float = 0.03
    job_failure_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_factor: float = 2.0
    max_retries: int = 3
    retry_backoff_s: float = 30.0
    site_outages: tuple[SiteOutageSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.crashes_per_server < 0.0:
            raise ValueError(
                f"crashes_per_server must be >= 0, got {self.crashes_per_server}"
            )
        if not 0.0 < self.crash_recovery_fraction <= 1.0:
            raise ValueError(
                "crash_recovery_fraction must be in (0, 1], got "
                f"{self.crash_recovery_fraction}"
            )
        for name in ("job_failure_prob", "straggler_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff_s <= 0.0:
            raise ValueError(
                f"retry_backoff_s must be > 0, got {self.retry_backoff_s}"
            )
        if not isinstance(self.site_outages, tuple):
            object.__setattr__(self, "site_outages", tuple(self.site_outages))

    def is_null(self) -> bool:
        """True when this spec injects nothing at all."""
        return (
            self.crashes_per_server == 0.0
            and self.job_failure_prob == 0.0
            and self.straggler_prob == 0.0
            and not self.site_outages
        )
