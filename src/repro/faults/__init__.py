"""Deterministic, seeded fault injection for the simulation stack.

Three layers, matching the package's usual spec → plan → engine split:

* :mod:`repro.faults.spec` — pure frozen dataclasses
  (:class:`FaultSpec`, :class:`SiteOutageSpec`) embedded in scenario
  content keys;
* :mod:`repro.faults.plan` — seed-derived resolution of a spec into a
  concrete crash schedule per site;
* :mod:`repro.faults.inject` — the engine runtime (kill/requeue,
  degraded routing, broker containment, availability accounting).
"""

from repro.faults.inject import FaultRuntime, SiteFaultState, install_faults
from repro.faults.plan import (
    CrashEvent,
    SiteFaultPlan,
    build_site_plan,
    derive_fault_seed,
    scenario_fault_plans,
)
from repro.faults.spec import FaultSpec, SiteOutageSpec

__all__ = [
    "CrashEvent",
    "FaultRuntime",
    "FaultSpec",
    "SiteFaultPlan",
    "SiteFaultState",
    "SiteOutageSpec",
    "build_site_plan",
    "derive_fault_seed",
    "install_faults",
    "scenario_fault_plans",
]
