"""Resolve a :class:`FaultSpec` into a concrete, seeded fault plan.

A plan is the bridge between the declarative spec layer and the
engine-side runtime (:mod:`repro.faults.inject`): crash times are
drawn *here*, once, from seeds derived independently of the workload
and policy streams, so adding faults to a scenario never perturbs its
arrival process — and the same ``(spec, seed)`` pair always yields the
same schedule, which is what makes faulted cells content-keyable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.faults.spec import FaultSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.specs import ScenarioSpec

#: Domain tags keeping fault randomness out of workload/policy streams.
_FAULT_DOMAIN = 0xFA17
_CRASH_DOMAIN = 0xC4A54


def derive_fault_seed(seed: int) -> int:
    """A fault-domain seed independent of workload/eval/policy seeds."""
    return int(np.random.SeedSequence((seed, _FAULT_DOMAIN)).generate_state(1)[0])


@dataclass(frozen=True)
class CrashEvent:
    """One unplanned server crash: down at ``time``, back ``recovery`` later."""

    time: float
    server_id: int
    recovery: float


@dataclass(frozen=True)
class SiteFaultPlan:
    """A fully-resolved fault schedule for one site.

    ``crashes`` covers both Poisson-drawn server crashes and expanded
    site outage windows; runtime per-job draws (failures, stragglers)
    use streams derived from ``seed`` at simulation time.
    """

    spec: FaultSpec
    seed: int
    crashes: tuple[CrashEvent, ...] = field(default_factory=tuple)


def build_site_plan(
    spec: FaultSpec,
    num_servers: int,
    horizon: float,
    seed: int,
    outages: tuple[tuple[float, float], ...] = (),
) -> SiteFaultPlan:
    """Draw the crash schedule for one site.

    ``outages`` are ``(start_fraction, duration_fraction)`` windows for
    *this* site; each expands to one crash per server so the whole site
    goes dark for the window.
    """
    crashes: list[CrashEvent] = []
    if spec.crashes_per_server > 0.0 and num_servers > 0:
        rng = np.random.default_rng(np.random.SeedSequence((seed, _CRASH_DOMAIN)))
        recovery = spec.crash_recovery_fraction * horizon
        for server_id in range(num_servers):
            count = int(rng.poisson(spec.crashes_per_server))
            if count == 0:
                continue
            times = np.sort(rng.uniform(0.0, horizon, count))
            crashes.extend(
                CrashEvent(float(t), server_id, recovery) for t in times
            )
    for start_fraction, duration_fraction in outages:
        start = start_fraction * horizon
        duration = duration_fraction * horizon
        crashes.extend(
            CrashEvent(start, server_id, duration)
            for server_id in range(num_servers)
        )
    crashes.sort(key=lambda c: (c.time, c.server_id))
    return SiteFaultPlan(spec=spec, seed=seed, crashes=tuple(crashes))


def scenario_fault_plans(
    spec: "ScenarioSpec", n_jobs: int, seed: int
) -> list[SiteFaultPlan | None] | None:
    """Per-site fault plans for a scenario cell, or None when fault-free.

    Federated scenarios resolve one plan per site (a site's own
    ``SiteSpec.faults`` overrides the scenario-level spec); site outage
    windows always come from the scenario-level spec, which is the only
    place that can see every site index.
    """
    horizon = spec.horizon_for(n_jobs)
    if spec.sites:
        scenario_faults = spec.faults
        site_specs = [site.faults or scenario_faults for site in spec.sites]
        outage_map: dict[int, list[tuple[float, float]]] = {}
        if scenario_faults is not None:
            for outage in scenario_faults.site_outages:
                outage_map.setdefault(outage.site, []).append(
                    (outage.start_fraction, outage.duration_fraction)
                )
        if all(s is None or s.is_null() for s in site_specs) and not outage_map:
            return None
        site_seeds = np.random.SeedSequence(derive_fault_seed(seed)).spawn(
            len(spec.sites)
        )
        plans: list[SiteFaultPlan | None] = []
        for index, (site, effective) in enumerate(zip(spec.sites, site_specs)):
            outages = tuple(outage_map.get(index, ()))
            # Outage windows are scenario-level routing (they live in
            # ``outage_map``), so a spec that is null apart from outages
            # targeting *other* sites leaves this site fault-free.
            local_null = effective is None or replace(
                effective, site_outages=()
            ).is_null()
            if local_null and not outages:
                plans.append(None)
                continue
            effective = effective or FaultSpec()
            plans.append(
                build_site_plan(
                    effective,
                    site.fleet.num_servers,
                    horizon,
                    int(site_seeds[index].generate_state(1)[0]),
                    outages=outages,
                )
            )
        return plans
    if spec.faults is None or spec.faults.is_null():
        return None
    return [
        build_site_plan(
            spec.faults,
            spec.fleet.num_servers,
            horizon,
            derive_fault_seed(seed),
        )
    ]
