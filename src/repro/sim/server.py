"""Power-managed server with an FCFS job queue.

State machine (Sec. III of the paper):

    SLEEP --arrival--> BOOTING --Ton--> ACTIVE
    ACTIVE --queue drained--> IDLE          (DPM decision epoch, case 1)
    IDLE --arrival--> ACTIVE                (decision epoch, case 2)
    IDLE --timeout--> SHUTTING_DOWN --Toff--> SLEEP
    SLEEP --arrival--> BOOTING              (decision epoch, case 3)
    SHUTTING_DOWN --arrival--> (queued; reboot right after sleep is reached)

Jobs are granted resources strictly first-come-first-serve with
head-of-line blocking: if the queue head does not fit in the remaining
capacity it waits, and everything behind it waits too.

Energy, queue-length, utilization and overload *time integrals* are
maintained exactly by accounting for the elapsed interval at every state
or utilization change point.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.job import CPU, Job
from repro.sim.power import PowerModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.interfaces import PowerPolicy

_EPS = 1e-9


class PowerState(enum.Enum):
    """Power mode of a server."""

    SLEEP = "sleep"
    BOOTING = "booting"
    ACTIVE = "active"
    IDLE = "idle"
    SHUTTING_DOWN = "shutting_down"

    @property
    def is_on(self) -> bool:
        """True when the server can execute jobs (active or idle)."""
        return self in (PowerState.ACTIVE, PowerState.IDLE)


class Server:
    """One physical machine in the cluster.

    Parameters
    ----------
    server_id:
        Index within the cluster.
    power_model:
        Power/transition characteristics.
    events:
        The shared simulation event queue.
    policy:
        The local-tier DPM policy controlling this server.
    num_resources:
        Number of resource dimensions D (default 3: CPU, mem, disk).
    overload_threshold:
        CPU utilization above which the server counts as a hot spot for
        the reliability term of the global reward.
    initially_on:
        Start in IDLE (True) or SLEEP (False, the default — the paper's
        Fig. 4 example starts asleep).
    """

    def __init__(
        self,
        server_id: int,
        power_model: PowerModel,
        events: EventQueue,
        policy: "PowerPolicy",
        num_resources: int = 3,
        overload_threshold: float = 0.9,
        initially_on: bool = False,
    ) -> None:
        if num_resources < 1:
            raise ValueError("need at least one resource dimension")
        if not 0.0 < overload_threshold <= 1.0:
            raise ValueError(f"overload_threshold must be in (0, 1], got {overload_threshold}")
        self.server_id = int(server_id)
        self.power_model = power_model
        self.events = events
        self.policy = policy
        self.num_resources = int(num_resources)
        self.overload_threshold = float(overload_threshold)

        self.state = PowerState.IDLE if initially_on else PowerState.SLEEP
        self.capacity = np.ones(self.num_resources)
        self.used = np.zeros(self.num_resources)
        self.pending: deque[Job] = deque()
        self.running: dict[int, Job] = {}

        # Exact time integrals, updated at every change point.
        self.energy_joules = 0.0
        self.queue_integral = 0.0  # waiting jobs x seconds
        self.system_integral = 0.0  # (waiting + running) jobs x seconds
        self.util_integral = 0.0  # CPU-utilization x seconds
        self.overload_integral = 0.0  # max(0, cpu - threshold) x seconds
        self._last_account = 0.0

        # Bookkeeping.
        self.jobs_assigned = 0
        self.jobs_completed = 0
        self.last_arrival_time: float | None = None
        self.wakeups = 0  # sleep->boot transitions
        self.idle_entries = 0  # DPM case-1 decision epochs

        self._timeout_event: ScheduledEvent | None = None
        self._transition_event: ScheduledEvent | None = None
        #: Set by the engine: called as ``on_finish(job, now)`` at completion.
        self.on_finish: Callable[[Job, float], None] | None = None

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------

    @property
    def cpu_utilization(self) -> float:
        """Current CPU utilization in [0, 1]."""
        return float(min(self.used[CPU], 1.0))

    @property
    def queue_length(self) -> int:
        """Number of assigned-but-not-started jobs."""
        return len(self.pending)

    @property
    def jobs_in_system(self) -> int:
        """Waiting plus running jobs."""
        return len(self.pending) + len(self.running)

    def current_power(self) -> float:
        """Instantaneous power draw in watts, by state and utilization."""
        if self.state is PowerState.SLEEP:
            return self.power_model.sleep_power
        if self.state in (PowerState.BOOTING, PowerState.SHUTTING_DOWN):
            return float(self.power_model.transition_power)
        if self.state is PowerState.IDLE:
            return self.power_model.active_power(0.0)
        return self.power_model.active_power(self.cpu_utilization)

    def remaining(self) -> np.ndarray:
        """Free capacity per resource dimension."""
        return self.capacity - self.used

    @property
    def capacity_fraction(self) -> float:
        """Current capacity scale in [0, 1] (1 = fully available)."""
        return float(self.capacity[CPU])

    def set_capacity(self, now: float, fraction: float) -> None:
        """Scale available capacity (maintenance drain / failure / restore).

        ``fraction`` is the usable share of every resource dimension:
        0 models a failed or fully drained server, values in (0, 1) a
        partial drain, and 1 restores full capacity. Running jobs are
        never killed — a drain is graceful: ``used`` may exceed the new
        capacity until jobs finish, and queued work waits (head-of-line)
        until capacity returns. Restoring capacity starts any queued
        jobs that now fit.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"capacity fraction must be in [0, 1], got {fraction}")
        self.account(now)
        self.capacity = np.full(self.num_resources, fraction)
        if self.state is PowerState.ACTIVE:
            self._try_start_jobs(now)

    def fits(self, job: Job) -> bool:
        """Whether ``job`` fits in the current free capacity."""
        demand = np.asarray(job.resources[: self.num_resources])
        return bool(np.all(self.used + demand <= self.capacity + _EPS))

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def account(self, now: float) -> None:
        """Integrate all per-time metrics up to ``now``.

        Idempotent at a fixed ``now``; must be called before any state or
        utilization change.
        """
        dt = now - self._last_account
        if dt < -_EPS:
            raise RuntimeError(
                f"server {self.server_id}: accounting time went backwards "
                f"({now} < {self._last_account})"
            )
        if dt <= 0.0:
            self._last_account = now
            return
        self.energy_joules += self.current_power() * dt
        self.queue_integral += len(self.pending) * dt
        self.system_integral += self.jobs_in_system * dt
        cpu = self.cpu_utilization if self.state is PowerState.ACTIVE else 0.0
        self.util_integral += cpu * dt
        self.overload_integral += max(0.0, cpu - self.overload_threshold) * dt
        self._last_account = now

    # ------------------------------------------------------------------
    # Job flow
    # ------------------------------------------------------------------

    def assign(self, job: Job, now: float) -> None:
        """Accept a job dispatched by the broker at time ``now``."""
        self.account(now)
        job.server_id = self.server_id
        self.pending.append(job)
        self.jobs_assigned += 1
        self.last_arrival_time = now
        self.policy.on_job_assigned(self, job, now)

        if self.state is PowerState.ACTIVE:
            self._try_start_jobs(now)
        elif self.state is PowerState.IDLE:
            self._cancel_timeout()
            self.state = PowerState.ACTIVE
            self.policy.on_active(self, now, from_sleep=False)
            self._try_start_jobs(now)
        elif self.state is PowerState.SLEEP:
            self._begin_boot(now)
            self.policy.on_active(self, now, from_sleep=True)
        # BOOTING / SHUTTING_DOWN: the job waits in the queue; the pending
        # transition completes first (Fig. 4a semantics).

    def _try_start_jobs(self, now: float) -> None:
        """Start queued jobs FCFS while the head fits (head-of-line blocking)."""
        while self.pending and self.fits(self.pending[0]):
            job = self.pending.popleft()
            demand = np.asarray(job.resources[: self.num_resources])
            self.used += demand
            job.start_time = now
            self.running[job.job_id] = job
            finish_time = now + job.duration
            self.events.schedule(
                finish_time,
                lambda t, job=job: self._on_job_finish(job, t),
                kind=f"finish:{job.job_id}",
            )

    def _on_job_finish(self, job: Job, now: float) -> None:
        self.account(now)
        del self.running[job.job_id]
        demand = np.asarray(job.resources[: self.num_resources])
        self.used = np.maximum(self.used - demand, 0.0)
        job.finish_time = now
        self.jobs_completed += 1
        self._try_start_jobs(now)
        if self.on_finish is not None:
            self.on_finish(job, now)
        if not self.running and not self.pending and self.state is PowerState.ACTIVE:
            self._enter_idle(now)

    # ------------------------------------------------------------------
    # Power management
    # ------------------------------------------------------------------

    def _enter_idle(self, now: float) -> None:
        """Decision epoch case 1: queue drained, ask the policy for a timeout."""
        self.state = PowerState.IDLE
        self.idle_entries += 1
        timeout = float(self.policy.on_idle(self, now))
        if math.isnan(timeout) or timeout < 0.0:
            raise ValueError(
                f"policy returned invalid timeout {timeout} for server {self.server_id}"
            )
        if timeout == 0.0:
            self._begin_shutdown(now)
        elif not math.isinf(timeout):
            self._timeout_event = self.events.schedule_in(
                timeout,
                self._on_timeout,
                kind=f"timeout:{self.server_id}",
            )
        # timeout == inf: stay idle until the next arrival (always-on).

    def _on_timeout(self, now: float) -> None:
        self._timeout_event = None
        if self.state is not PowerState.IDLE:
            return  # stale: a job arrived at the same instant
        self.account(now)
        self._begin_shutdown(now)

    def _begin_shutdown(self, now: float) -> None:
        self.state = PowerState.SHUTTING_DOWN
        self._transition_event = self.events.schedule_in(
            self.power_model.t_off,
            self._on_shutdown_complete,
            kind=f"sleep:{self.server_id}",
        )

    def _on_shutdown_complete(self, now: float) -> None:
        self.account(now)
        self._transition_event = None
        self.state = PowerState.SLEEP
        if self.pending:
            # Jobs arrived while shutting down: reboot immediately.
            self._begin_boot(now)

    def _begin_boot(self, now: float) -> None:
        self.state = PowerState.BOOTING
        self.wakeups += 1
        self._transition_event = self.events.schedule_in(
            self.power_model.t_on,
            self._on_boot_complete,
            kind=f"boot:{self.server_id}",
        )

    def _on_boot_complete(self, now: float) -> None:
        self.account(now)
        self._transition_event = None
        self.state = PowerState.ACTIVE
        self._try_start_jobs(now)
        if not self.running and not self.pending:
            self._enter_idle(now)

    def _cancel_timeout(self) -> None:
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None

    def finalize(self, now: float) -> None:
        """Account trailing time and notify the policy that the run ended."""
        self.account(now)
        self.policy.on_run_end(self, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Server(id={self.server_id}, state={self.state.value}, "
            f"running={len(self.running)}, pending={len(self.pending)}, "
            f"cpu={self.cpu_utilization:.2f})"
        )
