"""Power-managed server with an FCFS job queue.

State machine (Sec. III of the paper):

    SLEEP --arrival--> BOOTING --Ton--> ACTIVE
    ACTIVE --queue drained--> IDLE          (DPM decision epoch, case 1)
    IDLE --arrival--> ACTIVE                (decision epoch, case 2)
    IDLE --timeout--> SHUTTING_DOWN --Toff--> SLEEP
    SLEEP --arrival--> BOOTING              (decision epoch, case 3)
    SHUTTING_DOWN --arrival--> (queued; reboot right after sleep is reached)

Jobs are granted resources strictly first-come-first-serve with
head-of-line blocking: if the queue head does not fit in the remaining
capacity it waits, and everything behind it waits too.

Energy, queue-length, utilization and overload *time integrals* are
maintained exactly by accounting for the elapsed interval at every state
or utilization change point.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.job import CPU, Job
from repro.sim.ledger import ClusterLedger
from repro.sim.power import PowerModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.interfaces import PowerPolicy

_EPS = 1e-9


class PowerState(enum.Enum):
    """Power mode of a server."""

    SLEEP = "sleep"
    BOOTING = "booting"
    ACTIVE = "active"
    IDLE = "idle"
    SHUTTING_DOWN = "shutting_down"

    @property
    def is_on(self) -> bool:
        """True when the server can execute jobs (active or idle)."""
        return self in (PowerState.ACTIVE, PowerState.IDLE)


class Server:
    """One physical machine in the cluster.

    Parameters
    ----------
    server_id:
        Index within the cluster.
    power_model:
        Power/transition characteristics.
    events:
        The shared simulation event queue.
    policy:
        The local-tier DPM policy controlling this server.
    num_resources:
        Number of resource dimensions D (default 3: CPU, mem, disk).
    overload_threshold:
        CPU utilization above which the server counts as a hot spot for
        the reliability term of the global reward.
    initially_on:
        Start in IDLE (True) or SLEEP (False, the default — the paper's
        Fig. 4 example starts asleep).
    ledger, ledger_index:
        The :class:`~repro.sim.ledger.ClusterLedger` row this server
        writes its observables and time integrals into. A cluster passes
        its shared ledger; a standalone server allocates a private
        one-row ledger, so the public attributes behave identically.
    """

    def __init__(
        self,
        server_id: int,
        power_model: PowerModel,
        events: EventQueue,
        policy: "PowerPolicy",
        num_resources: int = 3,
        overload_threshold: float = 0.9,
        initially_on: bool = False,
        ledger: ClusterLedger | None = None,
        ledger_index: int = 0,
    ) -> None:
        if num_resources < 1:
            raise ValueError("need at least one resource dimension")
        if not 0.0 < overload_threshold <= 1.0:
            raise ValueError(
                f"overload_threshold must be in (0, 1], got {overload_threshold}"
            )
        self.server_id = int(server_id)
        self.power_model = power_model
        self.events = events
        self.policy = policy
        self.num_resources = int(num_resources)
        self.overload_threshold = float(overload_threshold)

        if ledger is None:
            ledger = ClusterLedger(1, self.num_resources)
            ledger_index = 0
        self._ledger = ledger
        self._index = int(ledger_index)

        self._state = PowerState.IDLE if initially_on else PowerState.SLEEP
        self.capacity = np.ones(self.num_resources)
        #: Resources in use — a view into the ledger's utilization matrix,
        #: mutated strictly in place.
        self.used = ledger.util[self._index]
        self.pending: deque[Job] = deque()
        self.running: dict[int, Job] = {}

        # Bookkeeping.
        self.jobs_assigned = 0
        self.jobs_completed = 0
        self.last_arrival_time: float | None = None
        self.wakeups = 0  # sleep->boot transitions
        self.idle_entries = 0  # DPM case-1 decision epochs

        self._timeout_event: ScheduledEvent | None = None
        self._transition_event: ScheduledEvent | None = None
        #: Set by the engine: called as ``on_finish(job, now)`` at completion.
        self.on_finish: Callable[[Job, float], None] | None = None
        #: Set by the fault runtime: a per-site ``SiteFaultState`` that
        #: owns job-finish scheduling (stragglers, failures) when faults
        #: are injected. ``None`` keeps the fault-free fast path.
        self.faults = None
        self._refresh()

    # ------------------------------------------------------------------
    # Ledger-backed state
    # ------------------------------------------------------------------

    @property
    def state(self) -> PowerState:
        """Power mode; assignment refreshes the ledger observables."""
        return self._state

    @state.setter
    def state(self, value: PowerState) -> None:
        self._state = value
        self._refresh()

    def _refresh(self) -> None:
        """Re-derive this row's ledger observables after a change point.

        Must run *after* :meth:`account`-then-mutate sequences so the
        rates in the ledger describe the interval that starts now.
        """
        i = self._index
        ledger = self._ledger
        state = self._state
        ledger.on[i] = 1.0 if state.is_on else 0.0
        ledger.queue[i] = len(self.pending)
        ledger.in_system[i] = len(self.pending) + len(self.running)
        cpu = self.cpu_utilization if state is PowerState.ACTIVE else 0.0
        ledger.active_cpu[i] = cpu
        ledger.overload_excess[i] = max(0.0, cpu - self.overload_threshold)
        ledger.power[i] = self.current_power()

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------

    @property
    def energy_joules(self) -> float:
        """Exact energy integral in joules."""
        return float(self._ledger.energy[self._index])

    @energy_joules.setter
    def energy_joules(self, value: float) -> None:
        self._ledger.energy[self._index] = value

    @property
    def queue_integral(self) -> float:
        """Waiting jobs × seconds."""
        return float(self._ledger.queue_int[self._index])

    @queue_integral.setter
    def queue_integral(self, value: float) -> None:
        self._ledger.queue_int[self._index] = value

    @property
    def system_integral(self) -> float:
        """(Waiting + running) jobs × seconds."""
        return float(self._ledger.system_int[self._index])

    @system_integral.setter
    def system_integral(self, value: float) -> None:
        self._ledger.system_int[self._index] = value

    @property
    def util_integral(self) -> float:
        """CPU-utilization × seconds."""
        return float(self._ledger.util_int[self._index])

    @util_integral.setter
    def util_integral(self, value: float) -> None:
        self._ledger.util_int[self._index] = value

    @property
    def overload_integral(self) -> float:
        """max(0, cpu − threshold) × seconds."""
        return float(self._ledger.overload_int[self._index])

    @overload_integral.setter
    def overload_integral(self, value: float) -> None:
        self._ledger.overload_int[self._index] = value

    @property
    def _last_account(self) -> float:
        return float(self._ledger.last_account[self._index])

    @_last_account.setter
    def _last_account(self, value: float) -> None:
        self._ledger.last_account[self._index] = value

    @property
    def cpu_utilization(self) -> float:
        """Current CPU utilization in [0, 1]."""
        return float(min(self.used[CPU], 1.0))

    @property
    def queue_length(self) -> int:
        """Number of assigned-but-not-started jobs."""
        return len(self.pending)

    @property
    def jobs_in_system(self) -> int:
        """Waiting plus running jobs."""
        return len(self.pending) + len(self.running)

    def current_power(self) -> float:
        """Instantaneous power draw in watts, by state and utilization."""
        if self.state is PowerState.SLEEP:
            return self.power_model.sleep_power
        if self.state in (PowerState.BOOTING, PowerState.SHUTTING_DOWN):
            return float(self.power_model.transition_power)
        if self.state is PowerState.IDLE:
            return self.power_model.active_power(0.0)
        return self.power_model.active_power(self.cpu_utilization)

    def remaining(self) -> np.ndarray:
        """Free capacity per resource dimension."""
        return self.capacity - self.used

    @property
    def capacity_fraction(self) -> float:
        """Current capacity scale in [0, 1] (1 = fully available)."""
        return float(self.capacity[CPU])

    def set_capacity(self, now: float, fraction: float) -> None:
        """Scale available capacity (maintenance drain / failure / restore).

        ``fraction`` is the usable share of every resource dimension:
        0 models a failed or fully drained server, values in (0, 1) a
        partial drain, and 1 restores full capacity. Running jobs are
        never killed — a drain is graceful: even when the new capacity
        drops below a running job's demand, the job runs to completion
        and ``used`` may exceed capacity until it finishes; queued work
        waits (head-of-line) until capacity returns. Restoring capacity
        starts any queued jobs that now fit. Callers that need forced
        eviction (an unplanned crash rather than a planned drain) use
        :meth:`kill_job`, which releases resources immediately and
        leaves re-enqueueing to the fault runtime.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"capacity fraction must be in [0, 1], got {fraction}")
        self.account(now)
        self.capacity = np.full(self.num_resources, fraction)
        if self.state is PowerState.ACTIVE:
            self._try_start_jobs(now)
        else:
            self._refresh()

    def fits(self, job: Job) -> bool:
        """Whether ``job`` fits in the current free capacity."""
        demand = np.asarray(job.resources[: self.num_resources])
        return bool(np.all(self.used + demand <= self.capacity + _EPS))

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def account(self, now: float) -> None:
        """Integrate all per-time metrics up to ``now``.

        Idempotent at a fixed ``now``; must be called before any state or
        utilization change. Uses the rates maintained in the ledger row
        (kept current by ``_refresh`` at every change point), so a
        cluster-wide vectorized :meth:`~repro.sim.ledger.ClusterLedger.sync`
        performs element-wise exactly this arithmetic.
        """
        i = self._index
        ledger = self._ledger
        dt = now - ledger.last_account[i]
        if dt < -_EPS:
            raise RuntimeError(
                f"server {self.server_id}: accounting time went backwards "
                f"({now} < {ledger.last_account[i]})"
            )
        if dt <= 0.0:
            ledger.last_account[i] = now
            return
        ledger.energy[i] += ledger.power[i] * dt
        ledger.queue_int[i] += ledger.queue[i] * dt
        ledger.system_int[i] += ledger.in_system[i] * dt
        ledger.util_int[i] += ledger.active_cpu[i] * dt
        ledger.overload_int[i] += ledger.overload_excess[i] * dt
        ledger.last_account[i] = now

    # ------------------------------------------------------------------
    # Job flow
    # ------------------------------------------------------------------

    def assign(self, job: Job, now: float) -> None:
        """Accept a job dispatched by the broker at time ``now``."""
        self.account(now)
        job.server_id = self.server_id
        self.pending.append(job)
        self.jobs_assigned += 1
        self.last_arrival_time = now
        self.policy.on_job_assigned(self, job, now)

        if self.state is PowerState.ACTIVE:
            self._try_start_jobs(now)
        elif self.state is PowerState.IDLE:
            self._cancel_timeout()
            self.state = PowerState.ACTIVE
            self.policy.on_active(self, now, from_sleep=False)
            self._try_start_jobs(now)
        elif self.state is PowerState.SLEEP:
            self._begin_boot(now)
            self.policy.on_active(self, now, from_sleep=True)
        else:
            # BOOTING / SHUTTING_DOWN: the job waits in the queue; the
            # pending transition completes first (Fig. 4a semantics). No
            # state change happened, so refresh the queue depth here.
            self._refresh()

    def _try_start_jobs(self, now: float) -> None:
        """Start queued jobs FCFS while the head fits (head-of-line blocking)."""
        while self.pending and self.fits(self.pending[0]):
            job = self.pending.popleft()
            demand = np.asarray(job.resources[: self.num_resources])
            self.used += demand
            job.start_time = now
            self.running[job.job_id] = job
            if self.faults is None:
                finish_time = now + job.duration
                self.events.schedule(
                    finish_time,
                    lambda t, job=job: self._on_job_finish(job, t),
                    kind=f"finish:{job.job_id}",
                )
            else:
                # The fault runtime owns the finish event: it may
                # stretch the duration (straggler) or turn the finish
                # into a failure, and it keeps a handle so a crash can
                # cancel it. With a null spec it schedules the identical
                # event (same time, same kind, same effects).
                self.faults.start_job(self, job, now)
        self._refresh()

    def _on_job_finish(self, job: Job, now: float) -> None:
        self.account(now)
        del self.running[job.job_id]
        demand = np.asarray(job.resources[: self.num_resources])
        np.maximum(self.used - demand, 0.0, out=self.used)
        job.finish_time = now
        self.jobs_completed += 1
        self._try_start_jobs(now)
        if self.on_finish is not None:
            self.on_finish(job, now)
        if not self.running and not self.pending and self.state is PowerState.ACTIVE:
            self._enter_idle(now)

    def kill_job(self, job: Job, now: float) -> None:
        """Forcibly evict a running job (crash / failed-at-finish path).

        The mirror of :meth:`_on_job_finish` without the completion:
        resources are released and the queue is re-examined, but the job
        is not counted completed, no finish time is stamped, and the
        engine's ``on_finish`` hook does not fire. The caller decides
        the job's fate (typically re-enqueue through the fault runtime's
        retry path). The caller must also cancel or supersede any finish
        event still scheduled for the job.
        """
        self.account(now)
        del self.running[job.job_id]
        demand = np.asarray(job.resources[: self.num_resources])
        np.maximum(self.used - demand, 0.0, out=self.used)
        self._try_start_jobs(now)
        if not self.running and not self.pending and self.state is PowerState.ACTIVE:
            self._enter_idle(now)

    def take_pending(self, now: float) -> list[Job]:
        """Drain the waiting queue (crash path) and return the removed jobs."""
        self.account(now)
        jobs = list(self.pending)
        self.pending.clear()
        self._refresh()
        return jobs

    # ------------------------------------------------------------------
    # Power management
    # ------------------------------------------------------------------

    def _enter_idle(self, now: float) -> None:
        """Decision epoch case 1: queue drained, ask the policy for a timeout."""
        self.state = PowerState.IDLE
        self.idle_entries += 1
        timeout = float(self.policy.on_idle(self, now))
        if math.isnan(timeout) or timeout < 0.0:
            raise ValueError(
                f"policy returned invalid timeout {timeout} for server {self.server_id}"
            )
        if timeout == 0.0:
            self._begin_shutdown(now)
        elif not math.isinf(timeout):
            self._timeout_event = self.events.schedule_in(
                timeout,
                self._on_timeout,
                kind=f"timeout:{self.server_id}",
            )
        # timeout == inf: stay idle until the next arrival (always-on).

    def _on_timeout(self, now: float) -> None:
        self._timeout_event = None
        if self.state is not PowerState.IDLE:
            return  # stale: a job arrived at the same instant
        self.account(now)
        self._begin_shutdown(now)

    def _begin_shutdown(self, now: float) -> None:
        self.state = PowerState.SHUTTING_DOWN
        self._transition_event = self.events.schedule_in(
            self.power_model.t_off,
            self._on_shutdown_complete,
            kind=f"sleep:{self.server_id}",
        )

    def _on_shutdown_complete(self, now: float) -> None:
        self.account(now)
        self._transition_event = None
        self.state = PowerState.SLEEP
        if self.pending:
            # Jobs arrived while shutting down: reboot immediately.
            self._begin_boot(now)

    def _begin_boot(self, now: float) -> None:
        self.state = PowerState.BOOTING
        self.wakeups += 1
        self._transition_event = self.events.schedule_in(
            self.power_model.t_on,
            self._on_boot_complete,
            kind=f"boot:{self.server_id}",
        )

    def _on_boot_complete(self, now: float) -> None:
        self.account(now)
        self._transition_event = None
        self.state = PowerState.ACTIVE
        self._try_start_jobs(now)
        if not self.running and not self.pending:
            self._enter_idle(now)

    def _cancel_timeout(self) -> None:
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None

    def finalize(self, now: float) -> None:
        """Account trailing time and notify the policy that the run ended."""
        self.account(now)
        self.policy.on_run_end(self, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Server(id={self.server_id}, state={self.state.value}, "
            f"running={len(self.running)}, pending={len(self.pending)}, "
            f"cpu={self.cpu_utilization:.2f})"
        )
