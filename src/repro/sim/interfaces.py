"""Control interfaces between the simulator and the three tiers.

The simulator is policy-agnostic: a :class:`FederationBroker` decides
which *site* of a federation serves each arriving job (the tier above
the paper's hierarchy), a :class:`Broker` decides which server within a
cluster receives it (the paper's global tier / job broker), and a
:class:`PowerPolicy` decides the DPM timeout whenever a server goes idle
(the paper's local tier). Concrete learning controllers live in
``repro.core``; simple baselines in ``repro.core.baselines`` and
``repro.core.federation``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.cluster import Cluster
    from repro.sim.federation import Site
    from repro.sim.job import Job
    from repro.sim.server import Server


class Broker:
    """Decides the target server for each arriving job.

    ``select_server`` is the only required method; the lifecycle hooks are
    optional and default to no-ops.
    """

    #: Set True on brokers that open telemetry spans internally (e.g. the
    #: DRL tiers' ``qnet.train_step``). The federation engine then pushes
    #: parent span frames around broker calls so those inner spans
    #: attribute under ``site.dispatch`` / ``fed.route``; for the common
    #: span-free broker it skips that bookkeeping on the hot path.
    obs_spans: bool = False

    def select_server(self, job: "Job", cluster: "Cluster", now: float) -> int:
        """Return the index of the server that receives ``job``."""
        raise NotImplementedError

    def on_job_finish(self, job: "Job", cluster: "Cluster", now: float) -> None:
        """Called when any job completes (optional hook)."""

    def on_run_end(self, cluster: "Cluster", now: float) -> None:
        """Called once when the simulation finishes (optional hook)."""


class FederationBroker:
    """Decides the target *site* for each arriving job (federation tier).

    The broker-above-brokers of a multi-cluster
    :class:`~repro.sim.federation.FederationEngine`: every arrival first
    passes through :meth:`select_site`, and only then through the chosen
    site's own cluster-tier :class:`Broker`. Implementations that
    inspect cluster state should call ``site.cluster.sync(now)`` first —
    syncing is exact and idempotent, so observing never perturbs the
    energy/latency accounts.

    ``select_site`` is the only required method; the lifecycle hooks are
    optional and default to no-ops.
    """

    #: See :attr:`Broker.obs_spans` — True on brokers whose decisions
    #: open telemetry spans of their own.
    obs_spans: bool = False

    def select_site(
        self, job: "Job", sites: Sequence["Site"], home: int, now: float
    ) -> int:
        """Return the index of the site that serves ``job``.

        ``home`` is the index of the site whose workload stream emitted
        the job (the static-routing baseline returns it unchanged).
        """
        raise NotImplementedError

    def on_job_finish(
        self, job: "Job", sites: Sequence["Site"], site_index: int, now: float
    ) -> None:
        """Called when any job completes anywhere in the fleet (optional)."""

    def on_run_end(self, sites: Sequence["Site"], now: float) -> None:
        """Called once when the simulation finishes (optional hook)."""


class PowerPolicy:
    """Per-server dynamic power management policy.

    The simulator calls :meth:`on_idle` at the paper's decision epoch
    case (1) — the server just became idle with an empty queue — and the
    policy answers with a timeout in seconds:

    * ``0.0`` — shut down immediately,
    * ``math.inf`` — never shut down (always-on),
    * anything in between — sleep if no job arrives within the timeout.

    :meth:`on_active` covers decision epochs (2) and (3) — a job arrived
    while the server was idle or asleep — where there is only one possible
    action but learning policies still perform their value update.
    """

    #: Convenience constant for "never sleep".
    NEVER = math.inf

    def on_idle(self, server: "Server", now: float) -> float:
        """Return the DPM timeout for an idle server (decision epoch 1)."""
        raise NotImplementedError

    def on_active(self, server: "Server", now: float, from_sleep: bool) -> None:
        """A job arrived while idle (epoch 2) or asleep (epoch 3)."""

    def on_job_assigned(self, server: "Server", job: "Job", now: float) -> None:
        """Called on *every* job assignment to this policy's server.

        This is the workload-predictor feed: the local tier observes the
        inter-arrival time sequence produced by the global tier's
        allocations through this hook.
        """

    def on_run_end(self, server: "Server", now: float) -> None:
        """Called once per server when the simulation finishes."""
