"""Contiguous per-server simulation state (struct-of-arrays).

The ledger holds every per-server observable and exact time integral the
simulator maintains — utilization, power state, queue depth, power draw,
and the energy / jobs-in-system / overload integrals — as ``(M, ...)``
arrays shared by the cluster and its servers. Servers update their own
row scalar-wise at their change points (assign / start / finish / sleep /
wake), while cluster-wide operations become single vector expressions:

* :meth:`ClusterLedger.sync` integrates *all* servers to ``now`` in a
  handful of array ops instead of an O(M) Python loop of per-server
  ``account`` calls;
* aggregate reads (total energy, VM-seconds, overload) are ``ndarray.sum``
  reductions;
* the DRL state encoder consumes the utilization / power-state / queue
  arrays by slicing, with no per-server object traversal.

Element-wise, the vectorized integration performs exactly the arithmetic
of the scalar per-server path (``integral[i] += rate[i] * dt[i]``), so
incrementally-maintained values match a recompute from the per-server
change-point accounting.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-9


class ClusterLedger:
    """Array-backed state for ``num_servers`` servers.

    Observables (maintained by each server's ``_refresh`` at every change
    point; rates in effect since ``last_account``):

    - ``util`` — ``(M, D)`` resources in use (servers' ``used`` rows are
      views into this matrix);
    - ``on`` — 1.0 where the server can execute (ACTIVE or IDLE);
    - ``queue`` / ``in_system`` — waiting and waiting+running job counts;
    - ``power`` — instantaneous draw in watts;
    - ``active_cpu`` — CPU utilization while ACTIVE, else 0;
    - ``overload_excess`` — ``max(0, active_cpu - threshold)``.

    Exact time integrals (advanced by ``account``/:meth:`sync`):
    ``energy``, ``queue_int``, ``system_int``, ``util_int``,
    ``overload_int``, with per-server ``last_account`` stamps.
    """

    __slots__ = (
        "util",
        "on",
        "queue",
        "in_system",
        "power",
        "active_cpu",
        "overload_excess",
        "energy",
        "queue_int",
        "system_int",
        "util_int",
        "overload_int",
        "last_account",
    )

    def __init__(self, num_servers: int, num_resources: int) -> None:
        m = int(num_servers)
        self.util = np.zeros((m, int(num_resources)))
        self.on = np.zeros(m)
        self.queue = np.zeros(m)
        self.in_system = np.zeros(m)
        self.power = np.zeros(m)
        self.active_cpu = np.zeros(m)
        self.overload_excess = np.zeros(m)
        self.energy = np.zeros(m)
        self.queue_int = np.zeros(m)
        self.system_int = np.zeros(m)
        self.util_int = np.zeros(m)
        self.overload_int = np.zeros(m)
        self.last_account = np.zeros(m)

    def sync(self, now: float) -> None:
        """Integrate every server's time metrics up to ``now`` at once.

        Raises
        ------
        RuntimeError
            If any server's accounting clock is ahead of ``now``.
        """
        dt = now - self.last_account
        bad = np.flatnonzero(dt < -_EPS)
        if bad.size:
            raise RuntimeError(
                f"server {int(bad[0])}: accounting time went backwards "
                f"({now} < {self.last_account[bad[0]]})"
            )
        np.maximum(dt, 0.0, out=dt)
        self.energy += self.power * dt
        self.queue_int += self.queue * dt
        self.system_int += self.in_system * dt
        self.util_int += self.active_cpu * dt
        self.overload_int += self.overload_excess * dt
        self.last_account[:] = now
