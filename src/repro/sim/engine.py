"""Simulation engine: feeds jobs to the broker and drains the event queue.

The engine realizes the paper's continuous-time, event-driven decision
framework: every job arrival is a global-tier decision epoch (the broker
picks a server), and every server-side idle entry / wake-up is a
local-tier decision epoch (handled inside :class:`~repro.sim.server.Server`
via its policy). Between epochs, the simulated world evolves purely
through scheduled events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.sim.churn import CapacityEvent, schedule_capacity_events
from repro.sim.cluster import Cluster
from repro.sim.events import EventQueue
from repro.sim.interfaces import Broker, PowerPolicy
from repro.sim.job import Job
from repro.sim.metrics import MetricsCollector
from repro.sim.power import PowerModel, TariffModel


@dataclass
class SimulationResult:
    """Outcome of a run: metrics plus the final cluster for inspection."""

    metrics: MetricsCollector
    cluster: Cluster
    final_time: float

    @property
    def total_energy_kwh(self) -> float:
        return self.metrics.total_energy_kwh()

    @property
    def accumulated_latency(self) -> float:
        return self.metrics.acc_latency

    @property
    def mean_latency(self) -> float:
        return self.metrics.mean_latency

    @property
    def average_power_watts(self) -> float:
        return self.metrics.average_power_watts()


class ClusterEngine:
    """Wires a broker, a cluster, and a job stream together.

    Parameters
    ----------
    cluster:
        The server cluster (with DPM policies already attached).
    broker:
        The global-tier job dispatcher.
    metrics:
        Optional pre-configured collector.
    """

    def __init__(
        self,
        cluster: Cluster,
        broker: Broker,
        metrics: MetricsCollector | None = None,
    ) -> None:
        self.cluster = cluster
        self.broker = broker
        self.events = cluster.events
        self.metrics = metrics if metrics is not None else MetricsCollector()
        for server in cluster.servers:
            server.on_finish = self._handle_finish

    def _handle_finish(self, job: Job, now: float) -> None:
        self.cluster.sync(now)
        self.metrics.on_completion(job, now, self.cluster.total_energy())
        self.broker.on_job_finish(job, self.cluster, now)

    def _handle_arrival(self, job: Job, now: float) -> None:
        self.metrics.on_arrival(job, now)
        self.cluster.sync(now)
        index = self.broker.select_server(job, self.cluster, now)
        if not 0 <= index < len(self.cluster):
            raise ValueError(
                f"broker chose server {index} outside [0, {len(self.cluster)})"
            )
        self.cluster[index].assign(job, now)

    def run(
        self,
        jobs: Iterable[Job] | Sequence[Job],
        max_jobs: int | None = None,
        max_events: int | None = None,
    ) -> SimulationResult:
        """Simulate the job stream to completion.

        Jobs must be ordered by non-decreasing arrival time (the paper's
        traces are). Arrivals are scheduled lazily one at a time, so the
        stream may be a generator of arbitrary length.

        Parameters
        ----------
        jobs:
            The trace to replay.
        max_jobs:
            Stop feeding arrivals after this many jobs (the simulation
            still drains in-flight work).
        max_events:
            Safety valve on total processed events.

        Raises
        ------
        ValueError
            If arrival times decrease along the stream.
        """
        iterator = iter(jobs)
        fed = 0
        last_arrival = -1.0

        def feed_next() -> None:
            nonlocal fed, last_arrival
            if max_jobs is not None and fed >= max_jobs:
                return
            job = next(iterator, None)
            if job is None:
                return
            if job.arrival_time < last_arrival:
                raise ValueError(
                    f"job {job.job_id} arrives at {job.arrival_time}, before "
                    f"the previous arrival at {last_arrival}; traces must be "
                    "sorted by arrival time"
                )
            last_arrival = job.arrival_time
            fed += 1
            self.events.schedule(
                job.arrival_time,
                lambda t, job=job: on_arrival_event(job, t),
                kind=f"arrival:{job.job_id}",
            )

        def on_arrival_event(job: Job, now: float) -> None:
            self._handle_arrival(job, now)
            feed_next()

        feed_next()
        self.events.run_until_empty(max_events=max_events)
        final_time = max(self.events.now, self.metrics.final_time)
        self.cluster.finalize(final_time)
        self.broker.on_run_end(self.cluster, final_time)
        self.cluster.sync(final_time)
        self.metrics.close(final_time, self.cluster.total_energy())
        return SimulationResult(self.metrics, self.cluster, final_time)


def build_simulation(
    num_servers: int,
    broker: Broker,
    policies: Sequence[PowerPolicy] | PowerPolicy,
    power_model: PowerModel | Sequence[PowerModel] | None = None,
    num_resources: int = 3,
    overload_threshold: float = 0.9,
    initially_on: bool = False,
    record_every: int = 100,
    keep_jobs: bool = False,
    capacity_events: Iterable[CapacityEvent] = (),
    tariff: TariffModel | None = None,
) -> ClusterEngine:
    """Convenience constructor for the common engine wiring.

    ``power_model`` may be a per-server sequence (heterogeneous fleet);
    ``capacity_events`` are pre-scheduled churn events (failures or
    maintenance drains) that fire during the run; ``tariff`` attaches a
    price/carbon signal so the metrics also report cost and CO₂.
    """
    events = EventQueue()
    cluster = Cluster(
        num_servers=num_servers,
        power_model=power_model if power_model is not None else PowerModel(),
        events=events,
        policies=policies,
        num_resources=num_resources,
        overload_threshold=overload_threshold,
        initially_on=initially_on,
    )
    schedule_capacity_events(cluster, capacity_events)
    metrics = MetricsCollector(
        record_every=record_every, keep_jobs=keep_jobs, tariff=tariff
    )
    return ClusterEngine(cluster, broker, metrics)
