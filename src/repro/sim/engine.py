"""Simulation engine: feeds jobs to the broker and drains the event queue.

The engine realizes the paper's continuous-time, event-driven decision
framework: every job arrival is a global-tier decision epoch (the broker
picks a server), and every server-side idle entry / wake-up is a
local-tier decision epoch (handled inside :class:`~repro.sim.server.Server`
via its policy). Between epochs, the simulated world evolves purely
through scheduled events.

Since the federation refactor, :class:`ClusterEngine` is the
single-site special case of
:class:`~repro.sim.federation.FederationEngine`: it wraps its cluster in
one :class:`~repro.sim.federation.Site` and delegates the run loop, so
the single-cluster simulator and a federation of one are the same code
path (and therefore bit-identical).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.sim.churn import CapacityEvent, schedule_capacity_events
from repro.sim.cluster import Cluster
from repro.sim.events import EventQueue
from repro.sim.federation import FederationEngine, Site
from repro.sim.interfaces import Broker, PowerPolicy
from repro.sim.job import Job
from repro.sim.metrics import MetricsCollector
from repro.sim.power import PowerModel, TariffModel


@dataclass
class SimulationResult:
    """Outcome of a run: metrics plus the final cluster for inspection."""

    metrics: MetricsCollector
    cluster: Cluster
    final_time: float
    #: The fault runtime when the run was fault-injected, else ``None``
    #: (exposes availability / broker-fallback tallies to reporters).
    faults: object | None = None

    @property
    def total_energy_kwh(self) -> float:
        return self.metrics.total_energy_kwh()

    @property
    def accumulated_latency(self) -> float:
        return self.metrics.acc_latency

    @property
    def mean_latency(self) -> float:
        return self.metrics.mean_latency

    @property
    def average_power_watts(self) -> float:
        return self.metrics.average_power_watts()


class ClusterEngine:
    """Wires a broker, a cluster, and a job stream together.

    Parameters
    ----------
    cluster:
        The server cluster (with DPM policies already attached).
    broker:
        The global-tier job dispatcher.
    metrics:
        Optional pre-configured collector.
    """

    def __init__(
        self,
        cluster: Cluster,
        broker: Broker,
        metrics: MetricsCollector | None = None,
    ) -> None:
        self.cluster = cluster
        self.broker = broker
        self.events = cluster.events
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self._federation = FederationEngine(
            [Site(name="cluster", cluster=cluster, broker=broker, metrics=self.metrics)]
        )

    def run(
        self,
        jobs: Iterable[Job] | Sequence[Job],
        max_jobs: int | None = None,
        max_events: int | None = None,
    ) -> SimulationResult:
        """Simulate the job stream to completion.

        Jobs must be ordered by non-decreasing arrival time (the paper's
        traces are). Arrivals are scheduled lazily one at a time, so the
        stream may be a generator of arbitrary length. Delegates to the
        single-site federation built at construction (no federation
        broker: every job stays "home").

        Parameters
        ----------
        jobs:
            The trace to replay.
        max_jobs:
            Stop feeding arrivals after this many jobs (the simulation
            still drains in-flight work).
        max_events:
            Safety valve on total processed events.

        Raises
        ------
        ValueError
            If arrival times decrease along the stream.
        """
        result = self._federation.run(
            [jobs], max_jobs=max_jobs, max_events=max_events
        )
        return SimulationResult(
            self.metrics,
            self.cluster,
            result.final_time,
            faults=self._federation.faults,
        )


def build_simulation(
    num_servers: int,
    broker: Broker,
    policies: Sequence[PowerPolicy] | PowerPolicy,
    power_model: PowerModel | Sequence[PowerModel] | None = None,
    num_resources: int = 3,
    overload_threshold: float = 0.9,
    initially_on: bool = False,
    record_every: int = 100,
    keep_jobs: bool = False,
    capacity_events: Iterable[CapacityEvent] = (),
    tariff: TariffModel | None = None,
    faults=None,
) -> ClusterEngine:
    """Convenience constructor for the common engine wiring.

    ``power_model`` may be a per-server sequence (heterogeneous fleet);
    ``capacity_events`` are pre-scheduled churn events (failures or
    maintenance drains) that fire during the run; ``tariff`` attaches a
    price/carbon signal so the metrics also report cost and CO₂;
    ``faults`` is an optional
    :class:`~repro.faults.plan.SiteFaultPlan` installing seeded
    unplanned-failure injection (crashes, job failures, stragglers).
    """
    events = EventQueue()
    cluster = Cluster(
        num_servers=num_servers,
        power_model=power_model if power_model is not None else PowerModel(),
        events=events,
        policies=policies,
        num_resources=num_resources,
        overload_threshold=overload_threshold,
        initially_on=initially_on,
    )
    schedule_capacity_events(cluster, capacity_events)
    metrics = MetricsCollector(
        record_every=record_every, keep_jobs=keep_jobs, tariff=tariff
    )
    engine = ClusterEngine(cluster, broker, metrics)
    if faults is not None:
        from repro.faults.inject import install_faults

        install_faults(engine._federation, [faults])
    return engine
