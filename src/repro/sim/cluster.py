"""Cluster: the set of M servers plus cluster-wide observables.

The cluster aggregates the exact per-server time integrals (energy, jobs
in system, overload) that the global tier's reward function (Eqn. 4)
consumes, and exposes the raw utilization matrix that the DRL state
encoder reads.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sim.events import EventQueue
from repro.sim.interfaces import PowerPolicy
from repro.sim.ledger import ClusterLedger
from repro.sim.power import PowerModel
from repro.sim.server import PowerState, Server


class Cluster:
    """A server cluster, homogeneous or mixed-fleet.

    Parameters
    ----------
    num_servers:
        M, the number of physical machines.
    power_model:
        Power characteristics — a single :class:`PowerModel` shared by
        every server (the paper's homogeneous cluster) or a sequence of
        one model per server (heterogeneous fleet).
    events:
        The simulation event queue shared by all servers.
    policies:
        One DPM policy per server (distributed local tier). A single
        policy instance may be passed to share it across servers
        (appropriate for stateless baselines such as fixed timeouts).
    num_resources:
        Resource dimensions D.
    overload_threshold:
        Hot-spot threshold for the reliability objective.
    initially_on:
        Whether servers start IDLE instead of SLEEP.
    """

    def __init__(
        self,
        num_servers: int,
        power_model: PowerModel | Sequence[PowerModel],
        events: EventQueue,
        policies: Sequence[PowerPolicy] | PowerPolicy,
        num_resources: int = 3,
        overload_threshold: float = 0.9,
        initially_on: bool = False,
    ) -> None:
        if num_servers < 1:
            raise ValueError(f"num_servers must be positive, got {num_servers}")
        if isinstance(policies, PowerPolicy):
            policies = [policies] * num_servers
        if len(policies) != num_servers:
            raise ValueError(
                f"got {len(policies)} policies for {num_servers} servers"
            )
        if isinstance(power_model, PowerModel):
            power_models: Sequence[PowerModel] = [power_model] * num_servers
        else:
            power_models = list(power_model)
            if len(power_models) != num_servers:
                raise ValueError(
                    f"got {len(power_models)} power models for {num_servers} servers"
                )
        self.events = events
        #: Reference model for cluster-level scales (first server's model).
        self.power_model = power_models[0]
        self.power_models = tuple(power_models)
        self.num_resources = int(num_resources)
        #: Contiguous per-server observables and time integrals; every
        #: server writes its own row, so cluster aggregates and the DRL
        #: state snapshot are array reductions/slices, never per-server
        #: Python scans.
        self.ledger = ClusterLedger(num_servers, num_resources)
        self.servers = [
            Server(
                server_id=i,
                power_model=power_models[i],
                events=events,
                policy=policies[i],
                num_resources=num_resources,
                overload_threshold=overload_threshold,
                initially_on=initially_on,
                ledger=self.ledger,
                ledger_index=i,
            )
            for i in range(num_servers)
        ]

    def __len__(self) -> int:
        return len(self.servers)

    def __getitem__(self, index: int) -> Server:
        return self.servers[index]

    def sync(self, now: float) -> None:
        """Bring every server's time integrals up to ``now`` (vectorized)."""
        self.ledger.sync(now)

    # ------------------------------------------------------------------
    # Aggregates (callers should sync() first for exact mid-run values)
    # ------------------------------------------------------------------

    def total_energy(self) -> float:
        """Total cluster energy in joules."""
        return float(self.ledger.energy.sum())

    def total_power(self) -> float:
        """Instantaneous cluster power draw in watts."""
        return float(self.ledger.power.sum())

    def jobs_in_system(self) -> int:
        """Jobs currently waiting or running anywhere in the cluster."""
        return int(self.ledger.in_system.sum())

    def system_integral(self) -> float:
        """Time integral of the number of jobs in the system (VM-seconds)."""
        return float(self.ledger.system_int.sum())

    def overload_integral(self) -> float:
        """Time integral of the cluster hot-spot measure."""
        return float(self.ledger.overload_int.sum())

    def num_active_servers(self) -> int:
        """Servers currently on (active or idle)."""
        return int(self.ledger.on.sum())

    def num_sleeping_servers(self) -> int:
        return sum(1 for s in self.servers if s.state is PowerState.SLEEP)

    # ------------------------------------------------------------------
    # State observation for the global tier
    # ------------------------------------------------------------------

    def utilization_matrix(self) -> np.ndarray:
        """Raw state: an ``(M, D)`` matrix of per-server resource usage.

        This is the ``u_mp`` block of the paper's global state vector.
        Returns a copy; the encoder hot path uses :meth:`state_views`.
        """
        return self.ledger.util.copy()

    def power_state_vector(self) -> np.ndarray:
        """Per-server on/off indicator (1 = can execute immediately)."""
        return self.ledger.on.copy()

    def queue_vector(self) -> np.ndarray:
        """Per-server number of waiting jobs."""
        return self.ledger.queue.copy()

    def state_views(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy ``(utilization, power_state, queue)`` snapshot views.

        The returned arrays are the ledger's live buffers — treat them as
        read-only and consume them before the simulation advances.
        """
        ledger = self.ledger
        return ledger.util, ledger.on, ledger.queue

    def finalize(self, now: float) -> None:
        """Finalize all servers at the end of a run."""
        for server in self.servers:
            server.finalize(now)
