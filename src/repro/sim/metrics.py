"""Metrics collection for simulation runs.

Collects exactly what the paper's evaluation reports:

* per-job latency (Fig. 3 definition: completion minus arrival),
* accumulated job latency versus the number of jobs (Figs. 8a / 9a),
* accumulated energy versus the number of jobs (Figs. 8b / 9b),
* totals at a given job count — energy (kWh), latency (1e6 s), and
  average power (W) — for Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.job import Job

JOULES_PER_KWH = 3.6e6


@dataclass(frozen=True)
class SeriesPoint:
    """One sample of the accumulated-metric curves.

    ``n_completed`` jobs have finished by simulated time ``time``;
    ``acc_latency`` is the sum of their latencies (seconds) and
    ``energy_joules`` the cluster energy consumed so far.
    """

    n_completed: int
    time: float
    acc_latency: float
    energy_joules: float

    @property
    def energy_kwh(self) -> float:
        return self.energy_joules / JOULES_PER_KWH

    @property
    def average_power_watts(self) -> float:
        """Mean cluster power from t=0 to this point."""
        if self.time <= 0.0:
            return 0.0
        return self.energy_joules / self.time


@dataclass
class MetricsCollector:
    """Accumulates job latencies and energy/latency series during a run.

    Parameters
    ----------
    record_every:
        Sample the series every this many job completions (1 records every
        completion; larger values bound memory on 100k-job runs).
    keep_jobs:
        Retain references to completed jobs (for per-job analysis).
    """

    record_every: int = 100
    keep_jobs: bool = False

    n_arrived: int = 0
    n_completed: int = 0
    acc_latency: float = 0.0
    acc_wait: float = 0.0
    max_latency: float = 0.0
    series: list[SeriesPoint] = field(default_factory=list)
    completed_jobs: list[Job] = field(default_factory=list)
    final_time: float = 0.0

    def __post_init__(self) -> None:
        if self.record_every < 1:
            raise ValueError(f"record_every must be >= 1, got {self.record_every}")

    def on_arrival(self, job: Job, now: float) -> None:
        self.n_arrived += 1

    def on_completion(self, job: Job, now: float, cluster_energy: float) -> None:
        """Record a completed job; ``cluster_energy`` is synced total joules."""
        self.n_completed += 1
        latency = job.latency
        self.acc_latency += latency
        self.acc_wait += job.wait_time
        self.max_latency = max(self.max_latency, latency)
        self.final_time = now
        if self.keep_jobs:
            self.completed_jobs.append(job)
        if self.n_completed % self.record_every == 0 or self.n_completed == 1:
            self.series.append(
                SeriesPoint(self.n_completed, now, self.acc_latency, cluster_energy)
            )

    def close(self, now: float, cluster_energy: float) -> None:
        """Append a final series point if the last completion wasn't sampled."""
        if not self.series or self.series[-1].n_completed != self.n_completed:
            self.series.append(
                SeriesPoint(self.n_completed, self.final_time, self.acc_latency, cluster_energy)
            )

    # ------------------------------------------------------------------
    # Summary statistics (Table I quantities)
    # ------------------------------------------------------------------

    @property
    def mean_latency(self) -> float:
        """Average per-job latency in seconds."""
        if self.n_completed == 0:
            return 0.0
        return self.acc_latency / self.n_completed

    @property
    def mean_wait(self) -> float:
        """Average per-job queueing (pre-start) delay in seconds."""
        if self.n_completed == 0:
            return 0.0
        return self.acc_wait / self.n_completed

    def total_energy_kwh(self) -> float:
        """Cluster energy at the last recorded point, in kWh."""
        if not self.series:
            return 0.0
        return self.series[-1].energy_kwh

    def average_power_watts(self) -> float:
        """Run-average cluster power at the last recorded point."""
        if not self.series:
            return 0.0
        return self.series[-1].average_power_watts

    def latency_series(self) -> list[tuple[int, float]]:
        """(n_completed, accumulated latency seconds) pairs — Fig. 8a/9a."""
        return [(p.n_completed, p.acc_latency) for p in self.series]

    def energy_series(self) -> list[tuple[int, float]]:
        """(n_completed, energy kWh) pairs — Fig. 8b/9b."""
        return [(p.n_completed, p.energy_kwh) for p in self.series]
