"""Metrics collection for simulation runs.

Collects exactly what the paper's evaluation reports:

* per-job latency (Fig. 3 definition: completion minus arrival),
* accumulated job latency versus the number of jobs (Figs. 8a / 9a),
* accumulated energy versus the number of jobs (Figs. 8b / 9b),
* totals at a given job count — energy (kWh), latency (1e6 s), and
  average power (W) — for Table I.

Plus one extension beyond the paper: when a
:class:`~repro.sim.power.TariffModel` is attached, the collector also
integrates electricity **cost** ($) and grid **CO₂** (kg) over the same
timeline. The tariff integral is exact per accounting interval (the
interval between consecutive completions, over which cluster power is
treated as constant — the same resolution at which energy itself is
sampled into the series).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.job import Job
from repro.sim.power import TariffModel

JOULES_PER_KWH = 3.6e6
GRAMS_PER_KG = 1e3


@dataclass(frozen=True)
class SeriesPoint:
    """One sample of the accumulated-metric curves.

    ``n_completed`` jobs have finished by simulated time ``time``;
    ``acc_latency`` is the sum of their latencies (seconds),
    ``energy_joules`` the cluster energy consumed so far, and
    ``cost_usd`` / ``co2_g`` the tariff-weighted cost and emissions
    accumulated so far (zero when the run carries no tariff).
    """

    n_completed: int
    time: float
    acc_latency: float
    energy_joules: float
    cost_usd: float = 0.0
    co2_g: float = 0.0

    @property
    def energy_kwh(self) -> float:
        return self.energy_joules / JOULES_PER_KWH

    @property
    def co2_kg(self) -> float:
        return self.co2_g / GRAMS_PER_KG

    @property
    def average_power_watts(self) -> float:
        """Mean cluster power from t=0 to this point."""
        if self.time <= 0.0:
            return 0.0
        return self.energy_joules / self.time


@dataclass
class MetricsCollector:
    """Accumulates job latencies and energy/latency series during a run.

    Parameters
    ----------
    record_every:
        Sample the series every this many job completions (1 records every
        completion; larger values bound memory on 100k-job runs).
    keep_jobs:
        Retain references to completed jobs (for per-job analysis).
    tariff:
        Optional electricity price / carbon-intensity signal. When set,
        every accounting interval's energy delta is weighted by the
        tariff's exact mean price and carbon over that interval, growing
        ``acc_cost_usd`` / ``acc_co2_g`` (and the per-point series).
    """

    record_every: int = 100
    keep_jobs: bool = False
    tariff: TariffModel | None = None

    n_arrived: int = 0
    n_completed: int = 0
    n_failed: int = 0
    n_retries: int = 0
    acc_latency: float = 0.0
    acc_wait: float = 0.0
    max_latency: float = 0.0
    acc_cost_usd: float = 0.0
    acc_co2_g: float = 0.0
    series: list[SeriesPoint] = field(default_factory=list)
    completed_jobs: list[Job] = field(default_factory=list)
    final_time: float = 0.0

    _tariff_time: float = field(default=0.0, init=False, repr=False)
    _tariff_energy: float = field(default=0.0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.record_every < 1:
            raise ValueError(f"record_every must be >= 1, got {self.record_every}")

    def _settle_tariff(self, now: float, cluster_energy: float) -> None:
        """Weight the interval's energy delta by the tariff's exact means."""
        if self.tariff is None:
            return
        delta = cluster_energy - self._tariff_energy
        if delta > 0.0:
            self.acc_cost_usd += self.tariff.energy_cost(
                delta, self._tariff_time, now
            )
            self.acc_co2_g += self.tariff.energy_co2(delta, self._tariff_time, now)
        self._tariff_time = now
        self._tariff_energy = cluster_energy

    def on_arrival(self, job: Job, now: float) -> None:
        self.n_arrived += 1

    def on_retry(self, job: Job, now: float) -> None:
        """A killed or failed job re-entered the queue (fault path)."""
        self.n_retries += 1

    def on_failure(self, job: Job, now: float) -> None:
        """A job exhausted its retry budget and was dropped (fault path).

        Only the counter moves — failures do not advance ``final_time``
        or the series, which track completions.
        """
        self.n_failed += 1

    def on_completion(self, job: Job, now: float, cluster_energy: float) -> None:
        """Record a completed job; ``cluster_energy`` is synced total joules."""
        self.n_completed += 1
        latency = job.latency
        self.acc_latency += latency
        self.acc_wait += job.wait_time
        self.max_latency = max(self.max_latency, latency)
        self.final_time = now
        self._settle_tariff(now, cluster_energy)
        if self.keep_jobs:
            self.completed_jobs.append(job)
        if self.n_completed % self.record_every == 0 or self.n_completed == 1:
            self.series.append(
                SeriesPoint(
                    self.n_completed,
                    now,
                    self.acc_latency,
                    cluster_energy,
                    self.acc_cost_usd,
                    self.acc_co2_g,
                )
            )

    def close(self, now: float, cluster_energy: float) -> None:
        """Append a final series point if the last completion wasn't sampled.

        The point is stamped at ``now`` — the close time — not at
        ``final_time`` (the last completion): ``cluster_energy`` is the
        total synced at ``now``, and a point pairing close-time energy
        with completion-time timestamps would overstate average power
        whenever the run drains idle tail time past the last completion.
        """
        self._settle_tariff(now, cluster_energy)
        if not self.series or self.series[-1].n_completed != self.n_completed:
            self.series.append(
                SeriesPoint(
                    self.n_completed,
                    now,
                    self.acc_latency,
                    cluster_energy,
                    self.acc_cost_usd,
                    self.acc_co2_g,
                )
            )

    # ------------------------------------------------------------------
    # Summary statistics (Table I quantities)
    # ------------------------------------------------------------------

    @property
    def goodput(self) -> float:
        """Completed share of terminally-resolved jobs, in [0, 1]."""
        resolved = self.n_completed + self.n_failed
        if resolved == 0:
            return 1.0
        return self.n_completed / resolved

    @property
    def mean_latency(self) -> float:
        """Average per-job latency in seconds."""
        if self.n_completed == 0:
            return 0.0
        return self.acc_latency / self.n_completed

    @property
    def mean_wait(self) -> float:
        """Average per-job queueing (pre-start) delay in seconds."""
        if self.n_completed == 0:
            return 0.0
        return self.acc_wait / self.n_completed

    def total_energy_kwh(self) -> float:
        """Cluster energy at the last recorded point, in kWh."""
        if not self.series:
            return 0.0
        return self.series[-1].energy_kwh

    def total_cost_usd(self) -> float:
        """Tariff-weighted electricity cost settled so far, in $."""
        return self.acc_cost_usd

    def total_co2_kg(self) -> float:
        """Tariff-weighted emissions settled so far, in kg."""
        return self.acc_co2_g / GRAMS_PER_KG

    def average_power_watts(self) -> float:
        """Run-average cluster power at the last recorded point."""
        if not self.series:
            return 0.0
        return self.series[-1].average_power_watts

    def latency_series(self) -> list[tuple[int, float]]:
        """(n_completed, accumulated latency seconds) pairs — Fig. 8a/9a."""
        return [(p.n_completed, p.acc_latency) for p in self.series]

    def energy_series(self) -> list[tuple[int, float]]:
        """(n_completed, energy kWh) pairs — Fig. 8b/9b."""
        return [(p.n_completed, p.energy_kwh) for p in self.series]

    def cost_series(self) -> list[tuple[int, float]]:
        """(n_completed, accumulated cost $) pairs."""
        return [(p.n_completed, p.cost_usd) for p in self.series]

    def co2_series(self) -> list[tuple[int, float]]:
        """(n_completed, accumulated CO₂ kg) pairs."""
        return [(p.n_completed, p.co2_kg) for p in self.series]
