"""Federation: several sites (clusters) simulated on one event clock.

The paper's hierarchy stops at one cluster — a global tier dispatches
jobs to servers, a local tier manages per-server power. This module adds
the tier above it: a :class:`Site` bundles one cluster with its own
cluster-tier :class:`~repro.sim.interfaces.Broker`, its own
:class:`~repro.sim.metrics.MetricsCollector`, and (optionally) its own
:class:`~repro.sim.power.TariffModel`, so sites may differ in fleet,
power models, and electricity prices; a :class:`FederationEngine` merges
the sites' home job streams into one time-ordered feed and routes every
arrival through a :class:`~repro.sim.interfaces.FederationBroker` before
the chosen site's own broker places it on a server.

The single-cluster :class:`~repro.sim.engine.ClusterEngine` is the
degenerate case: one site, no federation broker. It delegates here, so a
federation of one is *bit-identical* to the single-cluster simulator —
same event order, same accounts — which is what makes the refactor safe
(and is asserted by the equivalence test suite).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.obs import telemetry as obs
from repro.sim.cluster import Cluster
from repro.sim.events import EventQueue
from repro.sim.interfaces import Broker, FederationBroker
from repro.sim.job import Job
from repro.sim.metrics import MetricsCollector, SeriesPoint
from repro.sim.power import TariffModel


@dataclass
class Site:
    """One member cluster of a federation.

    Parameters
    ----------
    name:
        Site label (e.g. a region); cosmetic, used in reports.
    cluster:
        The site's server cluster. All sites of one federation must be
        built on the *same* :class:`~repro.sim.events.EventQueue`.
    broker:
        The site's cluster-tier dispatcher (the paper's global tier).
    metrics:
        Per-site collector; built automatically (carrying ``tariff``)
        when omitted.
    tariff:
        The site's electricity price / carbon signal. Sites in different
        markets or time zones carry different tariffs (see
        :meth:`~repro.sim.power.TariffModel.shifted`).
    """

    name: str
    cluster: Cluster
    broker: Broker
    metrics: MetricsCollector | None = None
    tariff: TariffModel | None = None

    def __post_init__(self) -> None:
        if self.metrics is None:
            self.metrics = MetricsCollector(tariff=self.tariff)
        elif self.tariff is None:
            self.tariff = self.metrics.tariff

    @property
    def num_servers(self) -> int:
        return len(self.cluster)


@dataclass
class FederationResult:
    """Outcome of a federated run: per-site metrics plus fleet totals."""

    sites: list[Site]
    final_time: float
    fleet_series: list[SeriesPoint] = field(default_factory=list)

    @property
    def n_completed(self) -> int:
        return sum(site.metrics.n_completed for site in self.sites)

    @property
    def total_energy_kwh(self) -> float:
        return sum(site.metrics.total_energy_kwh() for site in self.sites)

    @property
    def accumulated_latency(self) -> float:
        return sum(site.metrics.acc_latency for site in self.sites)

    @property
    def mean_latency(self) -> float:
        n = self.n_completed
        return self.accumulated_latency / n if n else 0.0

    @property
    def total_cost_usd(self) -> float:
        return sum(site.metrics.total_cost_usd() for site in self.sites)

    @property
    def total_co2_kg(self) -> float:
        return sum(site.metrics.total_co2_kg() for site in self.sites)

    @property
    def average_power_watts(self) -> float:
        """Fleet power averaged to the last sample point.

        Same definition as
        :meth:`~repro.sim.metrics.MetricsCollector.average_power_watts`
        — total joules at the last recorded series point over that
        point's time — evaluated on the merged fleet series, so a
        federation of one reproduces the single-cluster value exactly.
        """
        if not self.fleet_series:
            return 0.0
        return self.fleet_series[-1].average_power_watts


def merge_site_series(sites: Sequence[Site]) -> list[SeriesPoint]:
    """Fleet-wide accumulated series from the per-site series.

    Walks every site's sample points in time order (ties resolved by
    site index) carrying each site's latest cumulative values, so each
    output point is the exact fleet total at that sample instant. A
    federation of one reproduces the site's own series unchanged.
    """
    if len(sites) == 1:
        return list(sites[0].metrics.series)
    tagged = sorted(
        (
            (point.time, i, point)
            for i, site in enumerate(sites)
            for point in site.metrics.series
        ),
        key=lambda rec: (rec[0], rec[1]),
    )
    latest: list[SeriesPoint | None] = [None] * len(sites)
    merged: list[SeriesPoint] = []
    for _, i, point in tagged:
        latest[i] = point
        live = [p for p in latest if p is not None]
        merged.append(
            SeriesPoint(
                n_completed=sum(p.n_completed for p in live),
                time=point.time,
                acc_latency=sum(p.acc_latency for p in live),
                energy_joules=sum(p.energy_joules for p in live),
                cost_usd=sum(p.cost_usd for p in live),
                co2_g=sum(p.co2_g for p in live),
            )
        )
    return merged


class FederationEngine:
    """Simulates a fleet of sites against per-site job streams.

    The generalization of the single-cluster engine: all sites share one
    :class:`~repro.sim.events.EventQueue` (one continuous clock), their
    home job streams are merged into a single time-ordered feed, and
    each arrival is routed first by the federation ``broker`` (tier 0),
    then by the chosen site's cluster broker (tier 1), while each
    server's power policy (tier 2) keeps managing sleep states.

    Parameters
    ----------
    sites:
        The member sites. Every site's cluster must share the first
        site's event queue.
    broker:
        The federation-tier dispatcher. ``None`` routes every job to its
        home site without any broker call — the zero-overhead static
        baseline, and exactly what the single-cluster engine delegates
        with.
    """

    def __init__(
        self,
        sites: Sequence[Site],
        broker: FederationBroker | None = None,
    ) -> None:
        if not sites:
            raise ValueError("a federation needs at least one site")
        self.sites = list(sites)
        self.broker = broker
        self.events = self.sites[0].cluster.events
        for site in self.sites:
            if site.cluster.events is not self.events:
                raise ValueError(
                    f"site {site.name!r} was built on a different EventQueue; "
                    "all sites of a federation share one event clock"
                )
        for index, site in enumerate(self.sites):
            for server in site.cluster.servers:
                server.on_finish = self._finish_handler(index)
        #: Set by :func:`repro.faults.inject.install_faults`; ``None``
        #: (the default) keeps the fault-free fast path untouched.
        self.faults = None
        # Per-event tallies and span aggregates of the instrumented
        # paths, flushed into the active collector once per run — a
        # counter-dict or span-stat update per event would be a
        # measurable fraction of a cheap broker's whole event. The
        # ``_obs_*_acc`` lists accumulate ``[calls, total_s, child_s,
        # max_s]`` (childless phases drop the ``child_s`` slot); the
        # ``_obs_*_frame`` spans are reused stack frames so broker-
        # internal spans still attribute as children without a per-event
        # allocation. Parent child-time is still charged per call, so
        # self-time accounting stays exact.
        self._obs_arrived = 0
        self._obs_completed = 0
        self._obs_fed_decisions = 0
        self._obs_fed_remote = 0
        self._obs_cluster_decisions = 0
        self._obs_route_acc = [0, 0.0, 0.0, 0.0]
        self._obs_dispatch_acc = [0, 0.0, 0.0, 0.0]
        self._obs_hooks_acc = [0, 0.0, 0.0, 0.0]
        self._obs_settle_acc = [0, 0.0, 0.0]
        self._obs_feed_acc = [0, 0.0, 0.0]
        self._obs_route_frame = obs._Span(None, "fed.route")
        self._obs_dispatch_frame = obs._Span(None, "site.dispatch")
        self._obs_hooks_frame = obs._Span(None, "site.finish_hooks")
        # Whether broker calls need parent span frames pushed around them
        # (only brokers that open spans of their own — see
        # ``Broker.obs_spans``); recomputed per run.
        self._obs_use_frames = True
        self._obs_gauge_names = [f"queue.{site.name}" for site in self.sites]

    def _finish_handler(self, index: int):
        site = self.sites[index]

        def handle(job: Job, now: float) -> None:
            tel = obs.active()
            if tel is None:
                site.cluster.sync(now)
                site.metrics.on_completion(job, now, site.cluster.total_energy())
                site.broker.on_job_finish(job, site.cluster, now)
                if self.broker is not None:
                    self.broker.on_job_finish(job, self.sites, index, now)
                return
            # Instrumented twin of the block above: the settle phase is
            # the per-event accounting (ledger sync + metrics), the hook
            # phase the brokers' finish callbacks. Hand-fused like
            # :meth:`_drain_instrumented` — three clock reads cover both
            # phases and the throughput mark, stats batch into the
            # engine's accumulators; the arithmetic matches
            # ``span("site.settle")`` + ``span("site.finish_hooks")``.
            clock = tel._clock
            stack = tel._stack
            t0 = clock()
            site.cluster.sync(now)
            site.metrics.on_completion(job, now, site.cluster.total_energy())
            t1 = clock()
            dt = t1 - t0
            acc = self._obs_settle_acc
            acc[0] += 1
            acc[1] += dt
            if dt > acc[2]:
                acc[2] = dt
            self._obs_completed += 1
            frames = self._obs_use_frames
            if frames:
                hooks = self._obs_hooks_frame
                hooks._child_s = 0.0
                stack.append(hooks)
            try:
                site.broker.on_job_finish(job, site.cluster, now)
                if self.broker is not None:
                    self.broker.on_job_finish(job, self.sites, index, now)
            finally:
                t2 = clock()
                dt = t2 - t1
                acc = self._obs_hooks_acc
                acc[0] += 1
                acc[1] += dt
                if frames:
                    stack.pop()
                    acc[2] += hooks._child_s
                if dt > acc[3]:
                    acc[3] = dt
            marks = tel._marks.get("jobs")
            if marks is None:
                marks = tel._marks["jobs"] = deque(maxlen=obs._MARK_CAPACITY)
            marks.append(t2)

        return handle

    def _handle_arrival(self, job: Job, home: int, now: float) -> None:
        if self.faults is not None:
            # The fault runtime owns routing: it degrades around downed
            # servers/sites and contains broker exceptions. Faulted runs
            # keep loop-level telemetry but skip the per-arrival
            # instrumented spans (route/settle/dispatch).
            self.faults.handle_arrival(job, home, now)
            return
        tel = obs.active()
        if tel is not None:
            self._handle_arrival_instrumented(tel, job, home, now)
            return
        if self.broker is not None:
            target = self.broker.select_site(job, self.sites, home, now)
            if not 0 <= target < len(self.sites):
                raise ValueError(
                    f"federation broker chose site {target} outside "
                    f"[0, {len(self.sites)})"
                )
        else:
            target = home
        site = self.sites[target]
        site.metrics.on_arrival(job, now)
        site.cluster.sync(now)
        index = site.broker.select_server(job, site.cluster, now)
        if not 0 <= index < len(site.cluster):
            raise ValueError(
                f"broker chose server {index} outside [0, {len(site.cluster)})"
            )
        site.cluster[index].assign(job, now)

    def _handle_arrival_instrumented(
        self, tel: "obs.Telemetry", job: Job, home: int, now: float
    ) -> None:
        """Span-annotated twin of :meth:`_handle_arrival`.

        Identical control flow and side effects — telemetry only reads
        the clock — so profiled and unprofiled runs stay bit-identical
        (asserted by the parity tests). Phases: ``fed.route`` is the
        federation broker's site decision, ``site.settle`` the chosen
        site's arrival accounting + ledger sync, ``site.dispatch`` the
        cluster broker's server decision plus the assignment.
        Accounting is hand-fused
        (see :meth:`_drain_instrumented`): settle's end doubles as
        dispatch's start, counters and span stats batch on the engine,
        and route/dispatch span frames are pushed only for brokers that
        declare ``obs_spans`` (the DRL tiers), so their inner spans
        (``qnet.train_step``) attribute as children without taxing the
        span-free baselines.
        """
        clock = tel._clock
        stack = tel._stack
        frames = self._obs_use_frames
        self._obs_arrived += 1
        if self.broker is not None:
            if frames:
                route = self._obs_route_frame
                route._child_s = 0.0
                stack.append(route)
            t0 = clock()
            try:
                target = self.broker.select_site(job, self.sites, home, now)
            finally:
                t1 = clock()
                dt = t1 - t0
                acc = self._obs_route_acc
                acc[0] += 1
                acc[1] += dt
                if frames:
                    stack.pop()
                    acc[2] += route._child_s
                if dt > acc[3]:
                    acc[3] = dt
            self._obs_fed_decisions += 1
            if target != home:
                self._obs_fed_remote += 1
            if not 0 <= target < len(self.sites):
                raise ValueError(
                    f"federation broker chose site {target} outside "
                    f"[0, {len(self.sites)})"
                )
        else:
            target = home
            t1 = clock()
        # The settle phase starts at the route decision's end (fused
        # clock read) and covers the arrival accounting + ledger sync.
        site = self.sites[target]
        site.metrics.on_arrival(job, now)
        site.cluster.sync(now)
        t2 = clock()
        dt = t2 - t1
        acc = self._obs_settle_acc
        acc[0] += 1
        acc[1] += dt
        if dt > acc[2]:
            acc[2] = dt
        if frames:
            dispatch = self._obs_dispatch_frame
            dispatch._child_s = 0.0
            stack.append(dispatch)
        try:
            index = site.broker.select_server(job, site.cluster, now)
            if not 0 <= index < len(site.cluster):
                raise ValueError(
                    f"broker chose server {index} outside [0, {len(site.cluster)})"
                )
            site.cluster[index].assign(job, now)
        finally:
            dt = clock() - t2
            acc = self._obs_dispatch_acc
            acc[0] += 1
            acc[1] += dt
            if frames:
                stack.pop()
                acc[2] += dispatch._child_s
            if dt > acc[3]:
                acc[3] = dt
        self._obs_cluster_decisions += 1

    def _merged_feed(
        self, streams: Sequence[Iterable[Job]]
    ) -> Iterator[tuple[float, int, Job]]:
        """One time-ordered feed over the per-site home streams.

        Each stream must be sorted by arrival time (validated exactly
        like the single-cluster engine); ties across sites resolve to
        the lower site index. ``heapq.merge`` keeps the merge lazy, so
        streams may be generators of arbitrary length.
        """

        def tagged(index: int, stream: Iterable[Job]) -> Iterator:
            last = -1.0
            for job in stream:
                if job.arrival_time < last:
                    raise ValueError(
                        f"job {job.job_id} arrives at {job.arrival_time}, "
                        f"before the previous arrival at {last}; traces must "
                        "be sorted by arrival time"
                    )
                last = job.arrival_time
                yield (job.arrival_time, index, job)

        return heapq.merge(
            *(tagged(i, stream) for i, stream in enumerate(streams)),
            key=lambda rec: (rec[0], rec[1]),
        )

    def run(
        self,
        streams: Sequence[Iterable[Job]],
        max_jobs: int | None = None,
        max_events: int | None = None,
    ) -> FederationResult:
        """Simulate all home streams to completion.

        Parameters
        ----------
        streams:
            One job iterable per site (``streams[i]`` is site ``i``'s
            home stream); each must be sorted by arrival time.
        max_jobs:
            Stop feeding after this many arrivals fleet-wide (in-flight
            work still drains).
        max_events:
            Safety valve on total processed events.

        Raises
        ------
        ValueError
            If the stream count differs from the site count, or any
            stream's arrival times decrease.
        """
        if len(streams) != len(self.sites):
            raise ValueError(
                f"got {len(streams)} job streams for {len(self.sites)} sites"
            )
        feed = self._merged_feed(streams)
        fed = 0
        tel = obs.active()

        def feed_next() -> None:
            nonlocal fed
            if max_jobs is not None and fed >= max_jobs:
                return
            if tel is None:
                item = next(feed, None)
            else:
                # Childless leaf, timed inline and batch-accumulated
                # (one merge-heap step per arrival; a context manager
                # would dwarf it).
                clock = tel._clock
                t0 = clock()
                item = next(feed, None)
                dt = clock() - t0
                acc = self._obs_feed_acc
                acc[0] += 1
                acc[1] += dt
                if dt > acc[2]:
                    acc[2] = dt
                tel._stack[-1]._child_s += dt
            if item is None:
                return
            arrival, home, job = item
            fed += 1
            self.events.schedule(
                arrival,
                lambda t, job=job, home=home: on_arrival_event(job, home, t),
                kind=f"arrival:{job.job_id}",
            )

        def on_arrival_event(job: Job, home: int, now: float) -> None:
            self._handle_arrival(job, home, now)
            feed_next()

        if tel is None:
            feed_next()
            self.events.run_until_empty(max_events=max_events)
            return self._finalize()
        self._obs_use_frames = bool(
            getattr(self.broker, "obs_spans", False)
            or any(
                getattr(site.broker, "obs_spans", False) for site in self.sites
            )
        )
        self._obs_arrived = 0
        self._obs_completed = 0
        self._obs_fed_decisions = 0
        self._obs_fed_remote = 0
        self._obs_cluster_decisions = 0
        for acc in (
            self._obs_route_acc,
            self._obs_dispatch_acc,
            self._obs_hooks_acc,
        ):
            acc[0] = 0
            acc[1] = acc[2] = acc[3] = 0.0
        for acc in (self._obs_settle_acc, self._obs_feed_acc):
            acc[0] = 0
            acc[1] = acc[2] = 0.0
        try:
            with tel.span("run"):
                feed_next()
                self._drain_instrumented(tel, max_events)
                with tel.span("run.finalize"):
                    result = self._finalize()
        finally:
            self._flush_obs(tel)
        return result

    def _flush_obs(self, tel: "obs.Telemetry") -> None:
        """Fold the run's batched tallies and span aggregates in.

        The handler phases' parent (``loop.event``) was charged in bulk
        from these same accumulators in :meth:`_drain_instrumented`'s
        epilogue, so folding the stats afterwards keeps self-time
        accounting exact; only the stat bookkeeping was deferred.
        """
        for name, n in (
            ("jobs.arrived", self._obs_arrived),
            ("jobs.completed", self._obs_completed),
            ("fed.decisions", self._obs_fed_decisions),
            ("fed.remote_routed", self._obs_fed_remote),
            ("cluster.decisions", self._obs_cluster_decisions),
        ):
            if n:
                tel.counter(name, n)
        if self._obs_completed:
            # One "jobs" mark was appended per completion (see the
            # finish handler); settle their rolling-rate count in bulk.
            tel._mark_counts["jobs"] = (
                tel._mark_counts.get("jobs", 0) + self._obs_completed
            )
        for name, acc in (
            ("fed.route", self._obs_route_acc),
            ("site.dispatch", self._obs_dispatch_acc),
            ("site.finish_hooks", self._obs_hooks_acc),
        ):
            tel.fold(name, acc[0], acc[1], acc[1] - acc[2], acc[3])
        for name, acc in (
            ("site.settle", self._obs_settle_acc),
            ("run.feed", self._obs_feed_acc),
        ):
            tel.fold(name, acc[0], acc[1], acc[1], acc[2])

    def _finalize(self) -> FederationResult:
        """Close the accounts after the event queue drains."""
        final_time = self.events.now
        for site in self.sites:
            final_time = max(final_time, site.metrics.final_time)
        for site in self.sites:
            site.cluster.finalize(final_time)
            site.broker.on_run_end(site.cluster, final_time)
            site.cluster.sync(final_time)
            site.metrics.close(final_time, site.cluster.total_energy())
        if self.broker is not None:
            self.broker.on_run_end(self.sites, final_time)
        return FederationResult(
            sites=self.sites,
            final_time=final_time,
            fleet_series=merge_site_series(self.sites),
        )

    #: Event-loop gauges are sampled every this many processed events.
    GAUGE_EVERY = 64

    def _drain_instrumented(
        self, tel: "obs.Telemetry", max_events: int | None
    ) -> int:
        """Profiled twin of :meth:`EventQueue.run_until_empty`.

        Same drain semantics (time-ordered pops, ``max_events`` valve),
        with the loop's phases timed: ``loop.event`` (the callback,
        whose children are the route/dispatch/settle spans),
        ``loop.gauges`` (the every-:data:`GAUGE_EVERY`-events queue
        sampling), and ``loop.pop`` — the heap pops plus the loop's own
        bookkeeping, computed as the *residual* of the drain's wall time
        so it costs nothing per event (its ``max`` is therefore not
        tracked and reports 0).

        The accounting is hand-inlined — two clock reads per event (the
        pop's end doubles as the callback span's start, whose end
        doubles as the throughput mark), one reused ``_Span`` frame
        instead of a per-event allocation, and stat updates written out
        longhand. This is what keeps the enabled overhead inside the
        guard test's budget on brokers whose per-event work is only a
        few microseconds; the arithmetic is identical to
        :meth:`Telemetry.record` + ``span("loop.event")``.
        """
        events = self.events
        sites = self.sites
        clock = tel._clock
        stack = tel._stack
        parent = stack[-1]  # the enclosing "run" span, constant here
        event_span = obs._Span(None, "loop.event")  # reused frame
        marks = tel._marks.get("events")
        if marks is None:
            marks = tel._marks["events"] = deque(maxlen=obs._MARK_CAPACITY)
        ev_calls = executed = empty_pop = samples = 0
        ev_total = ev_child = ev_max = 0.0
        sample_s = 0.0
        t_start = clock()
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    return executed
                event = events.pop()
                t1 = clock()
                if event is None:
                    empty_pop = 1
                    return executed
                event_span._child_s = 0.0
                stack.append(event_span)
                try:
                    event.callback(event.time)
                finally:
                    t2 = clock()
                    dt = t2 - t1
                    stack.pop()
                    ev_calls += 1
                    ev_total += dt
                    ev_child += event_span._child_s
                    if dt > ev_max:
                        ev_max = dt
                executed += 1
                marks.append(t2)
                if executed % self.GAUGE_EVERY == 0:
                    tel.gauge("events.queue_depth", len(events))
                    for site, gauge_name in zip(sites, self._obs_gauge_names):
                        tel.gauge(
                            gauge_name, float(site.cluster.ledger.queue.sum())
                        )
                    samples += 1
                    sample_s += clock() - t2
        finally:
            # Loop phases live directly under "run": one parent charge
            # for the whole drain, and loop.pop as the wall-time
            # residual — every instant of the drain lands in exactly
            # one of the three phases, so self-times still partition.
            # The handler phases (route/settle/dispatch/hooks) run only
            # inside event callbacks, so their child-time charge against
            # loop.event batches too: the accumulators' totals, added
            # once here instead of five list-index writes per job.
            loop_s = clock() - t_start
            pop_total = loop_s - ev_total - sample_s
            if pop_total < 0.0:  # clock granularity safety net
                pop_total = 0.0
            ev_child += (
                self._obs_route_acc[1]
                + self._obs_settle_acc[1]
                + self._obs_dispatch_acc[1]
                + self._obs_hooks_acc[1]
            )
            tel.fold("loop.pop", executed + empty_pop, pop_total, pop_total, 0.0)
            tel.fold("loop.event", ev_calls, ev_total, ev_total - ev_child, ev_max)
            if samples:
                tel.fold("loop.gauges", samples, sample_s, sample_s, 0.0)
            parent._child_s += loop_s
            if executed:
                tel._mark_counts["events"] = (
                    tel._mark_counts.get("events", 0) + executed
                )


def build_federation(
    site_args: Sequence[dict],
    broker: FederationBroker | None = None,
    events: EventQueue | None = None,
) -> FederationEngine:
    """Convenience constructor: one shared clock, one cluster per site.

    ``site_args`` holds one dict per site with the keys of
    :func:`~repro.sim.engine.build_simulation` minus ``broker`` (passed
    as ``"broker"``) plus ``"name"`` and optional ``"tariff"`` /
    ``"record_every"`` / ``"keep_jobs"``; every cluster is built on the
    shared ``events`` queue.
    """
    from repro.sim.power import PowerModel

    events = events if events is not None else EventQueue()
    sites: list[Site] = []
    for i, args in enumerate(site_args):
        args = dict(args)
        name = args.pop("name", f"site{i}")
        tariff = args.pop("tariff", None)
        metrics = MetricsCollector(
            record_every=args.pop("record_every", 100),
            keep_jobs=args.pop("keep_jobs", False),
            tariff=tariff,
        )
        cluster = Cluster(
            num_servers=args.pop("num_servers"),
            power_model=args.pop("power_model", None) or PowerModel(),
            events=events,
            policies=args.pop("policies"),
            num_resources=args.pop("num_resources", 3),
            overload_threshold=args.pop("overload_threshold", 0.9),
            initially_on=args.pop("initially_on", False),
        )
        site_broker = args.pop("broker")
        if args:
            raise ValueError(f"unknown site arguments {sorted(args)}")
        sites.append(
            Site(
                name=name,
                cluster=cluster,
                broker=site_broker,
                metrics=metrics,
                tariff=tariff,
            )
        )
    return FederationEngine(sites, broker)
