"""Federation: several sites (clusters) simulated on one event clock.

The paper's hierarchy stops at one cluster — a global tier dispatches
jobs to servers, a local tier manages per-server power. This module adds
the tier above it: a :class:`Site` bundles one cluster with its own
cluster-tier :class:`~repro.sim.interfaces.Broker`, its own
:class:`~repro.sim.metrics.MetricsCollector`, and (optionally) its own
:class:`~repro.sim.power.TariffModel`, so sites may differ in fleet,
power models, and electricity prices; a :class:`FederationEngine` merges
the sites' home job streams into one time-ordered feed and routes every
arrival through a :class:`~repro.sim.interfaces.FederationBroker` before
the chosen site's own broker places it on a server.

The single-cluster :class:`~repro.sim.engine.ClusterEngine` is the
degenerate case: one site, no federation broker. It delegates here, so a
federation of one is *bit-identical* to the single-cluster simulator —
same event order, same accounts — which is what makes the refactor safe
(and is asserted by the equivalence test suite).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.sim.cluster import Cluster
from repro.sim.events import EventQueue
from repro.sim.interfaces import Broker, FederationBroker
from repro.sim.job import Job
from repro.sim.metrics import MetricsCollector, SeriesPoint
from repro.sim.power import TariffModel


@dataclass
class Site:
    """One member cluster of a federation.

    Parameters
    ----------
    name:
        Site label (e.g. a region); cosmetic, used in reports.
    cluster:
        The site's server cluster. All sites of one federation must be
        built on the *same* :class:`~repro.sim.events.EventQueue`.
    broker:
        The site's cluster-tier dispatcher (the paper's global tier).
    metrics:
        Per-site collector; built automatically (carrying ``tariff``)
        when omitted.
    tariff:
        The site's electricity price / carbon signal. Sites in different
        markets or time zones carry different tariffs (see
        :meth:`~repro.sim.power.TariffModel.shifted`).
    """

    name: str
    cluster: Cluster
    broker: Broker
    metrics: MetricsCollector | None = None
    tariff: TariffModel | None = None

    def __post_init__(self) -> None:
        if self.metrics is None:
            self.metrics = MetricsCollector(tariff=self.tariff)
        elif self.tariff is None:
            self.tariff = self.metrics.tariff

    @property
    def num_servers(self) -> int:
        return len(self.cluster)


@dataclass
class FederationResult:
    """Outcome of a federated run: per-site metrics plus fleet totals."""

    sites: list[Site]
    final_time: float
    fleet_series: list[SeriesPoint] = field(default_factory=list)

    @property
    def n_completed(self) -> int:
        return sum(site.metrics.n_completed for site in self.sites)

    @property
    def total_energy_kwh(self) -> float:
        return sum(site.metrics.total_energy_kwh() for site in self.sites)

    @property
    def accumulated_latency(self) -> float:
        return sum(site.metrics.acc_latency for site in self.sites)

    @property
    def mean_latency(self) -> float:
        n = self.n_completed
        return self.accumulated_latency / n if n else 0.0

    @property
    def total_cost_usd(self) -> float:
        return sum(site.metrics.total_cost_usd() for site in self.sites)

    @property
    def total_co2_kg(self) -> float:
        return sum(site.metrics.total_co2_kg() for site in self.sites)

    @property
    def average_power_watts(self) -> float:
        """Fleet power averaged to the last sample point.

        Same definition as
        :meth:`~repro.sim.metrics.MetricsCollector.average_power_watts`
        — total joules at the last recorded series point over that
        point's time — evaluated on the merged fleet series, so a
        federation of one reproduces the single-cluster value exactly.
        """
        if not self.fleet_series:
            return 0.0
        return self.fleet_series[-1].average_power_watts


def merge_site_series(sites: Sequence[Site]) -> list[SeriesPoint]:
    """Fleet-wide accumulated series from the per-site series.

    Walks every site's sample points in time order (ties resolved by
    site index) carrying each site's latest cumulative values, so each
    output point is the exact fleet total at that sample instant. A
    federation of one reproduces the site's own series unchanged.
    """
    if len(sites) == 1:
        return list(sites[0].metrics.series)
    tagged = sorted(
        (
            (point.time, i, point)
            for i, site in enumerate(sites)
            for point in site.metrics.series
        ),
        key=lambda rec: (rec[0], rec[1]),
    )
    latest: list[SeriesPoint | None] = [None] * len(sites)
    merged: list[SeriesPoint] = []
    for _, i, point in tagged:
        latest[i] = point
        live = [p for p in latest if p is not None]
        merged.append(
            SeriesPoint(
                n_completed=sum(p.n_completed for p in live),
                time=point.time,
                acc_latency=sum(p.acc_latency for p in live),
                energy_joules=sum(p.energy_joules for p in live),
                cost_usd=sum(p.cost_usd for p in live),
                co2_g=sum(p.co2_g for p in live),
            )
        )
    return merged


class FederationEngine:
    """Simulates a fleet of sites against per-site job streams.

    The generalization of the single-cluster engine: all sites share one
    :class:`~repro.sim.events.EventQueue` (one continuous clock), their
    home job streams are merged into a single time-ordered feed, and
    each arrival is routed first by the federation ``broker`` (tier 0),
    then by the chosen site's cluster broker (tier 1), while each
    server's power policy (tier 2) keeps managing sleep states.

    Parameters
    ----------
    sites:
        The member sites. Every site's cluster must share the first
        site's event queue.
    broker:
        The federation-tier dispatcher. ``None`` routes every job to its
        home site without any broker call — the zero-overhead static
        baseline, and exactly what the single-cluster engine delegates
        with.
    """

    def __init__(
        self,
        sites: Sequence[Site],
        broker: FederationBroker | None = None,
    ) -> None:
        if not sites:
            raise ValueError("a federation needs at least one site")
        self.sites = list(sites)
        self.broker = broker
        self.events = self.sites[0].cluster.events
        for site in self.sites:
            if site.cluster.events is not self.events:
                raise ValueError(
                    f"site {site.name!r} was built on a different EventQueue; "
                    "all sites of a federation share one event clock"
                )
        for index, site in enumerate(self.sites):
            for server in site.cluster.servers:
                server.on_finish = self._finish_handler(index)

    def _finish_handler(self, index: int):
        site = self.sites[index]

        def handle(job: Job, now: float) -> None:
            site.cluster.sync(now)
            site.metrics.on_completion(job, now, site.cluster.total_energy())
            site.broker.on_job_finish(job, site.cluster, now)
            if self.broker is not None:
                self.broker.on_job_finish(job, self.sites, index, now)

        return handle

    def _handle_arrival(self, job: Job, home: int, now: float) -> None:
        if self.broker is not None:
            target = self.broker.select_site(job, self.sites, home, now)
            if not 0 <= target < len(self.sites):
                raise ValueError(
                    f"federation broker chose site {target} outside "
                    f"[0, {len(self.sites)})"
                )
        else:
            target = home
        site = self.sites[target]
        site.metrics.on_arrival(job, now)
        site.cluster.sync(now)
        index = site.broker.select_server(job, site.cluster, now)
        if not 0 <= index < len(site.cluster):
            raise ValueError(
                f"broker chose server {index} outside [0, {len(site.cluster)})"
            )
        site.cluster[index].assign(job, now)

    def _merged_feed(
        self, streams: Sequence[Iterable[Job]]
    ) -> Iterator[tuple[float, int, Job]]:
        """One time-ordered feed over the per-site home streams.

        Each stream must be sorted by arrival time (validated exactly
        like the single-cluster engine); ties across sites resolve to
        the lower site index. ``heapq.merge`` keeps the merge lazy, so
        streams may be generators of arbitrary length.
        """

        def tagged(index: int, stream: Iterable[Job]) -> Iterator:
            last = -1.0
            for job in stream:
                if job.arrival_time < last:
                    raise ValueError(
                        f"job {job.job_id} arrives at {job.arrival_time}, "
                        f"before the previous arrival at {last}; traces must "
                        "be sorted by arrival time"
                    )
                last = job.arrival_time
                yield (job.arrival_time, index, job)

        return heapq.merge(
            *(tagged(i, stream) for i, stream in enumerate(streams)),
            key=lambda rec: (rec[0], rec[1]),
        )

    def run(
        self,
        streams: Sequence[Iterable[Job]],
        max_jobs: int | None = None,
        max_events: int | None = None,
    ) -> FederationResult:
        """Simulate all home streams to completion.

        Parameters
        ----------
        streams:
            One job iterable per site (``streams[i]`` is site ``i``'s
            home stream); each must be sorted by arrival time.
        max_jobs:
            Stop feeding after this many arrivals fleet-wide (in-flight
            work still drains).
        max_events:
            Safety valve on total processed events.

        Raises
        ------
        ValueError
            If the stream count differs from the site count, or any
            stream's arrival times decrease.
        """
        if len(streams) != len(self.sites):
            raise ValueError(
                f"got {len(streams)} job streams for {len(self.sites)} sites"
            )
        feed = self._merged_feed(streams)
        fed = 0

        def feed_next() -> None:
            nonlocal fed
            if max_jobs is not None and fed >= max_jobs:
                return
            item = next(feed, None)
            if item is None:
                return
            arrival, home, job = item
            fed += 1
            self.events.schedule(
                arrival,
                lambda t, job=job, home=home: on_arrival_event(job, home, t),
                kind=f"arrival:{job.job_id}",
            )

        def on_arrival_event(job: Job, home: int, now: float) -> None:
            self._handle_arrival(job, home, now)
            feed_next()

        feed_next()
        self.events.run_until_empty(max_events=max_events)
        final_time = self.events.now
        for site in self.sites:
            final_time = max(final_time, site.metrics.final_time)
        for site in self.sites:
            site.cluster.finalize(final_time)
            site.broker.on_run_end(site.cluster, final_time)
            site.cluster.sync(final_time)
            site.metrics.close(final_time, site.cluster.total_energy())
        if self.broker is not None:
            self.broker.on_run_end(self.sites, final_time)
        return FederationResult(
            sites=self.sites,
            final_time=final_time,
            fleet_series=merge_site_series(self.sites),
        )


def build_federation(
    site_args: Sequence[dict],
    broker: FederationBroker | None = None,
    events: EventQueue | None = None,
) -> FederationEngine:
    """Convenience constructor: one shared clock, one cluster per site.

    ``site_args`` holds one dict per site with the keys of
    :func:`~repro.sim.engine.build_simulation` minus ``broker`` (passed
    as ``"broker"``) plus ``"name"`` and optional ``"tariff"`` /
    ``"record_every"`` / ``"keep_jobs"``; every cluster is built on the
    shared ``events`` queue.
    """
    from repro.sim.power import PowerModel

    events = events if events is not None else EventQueue()
    sites: list[Site] = []
    for i, args in enumerate(site_args):
        args = dict(args)
        name = args.pop("name", f"site{i}")
        tariff = args.pop("tariff", None)
        metrics = MetricsCollector(
            record_every=args.pop("record_every", 100),
            keep_jobs=args.pop("keep_jobs", False),
            tariff=tariff,
        )
        cluster = Cluster(
            num_servers=args.pop("num_servers"),
            power_model=args.pop("power_model", None) or PowerModel(),
            events=events,
            policies=args.pop("policies"),
            num_resources=args.pop("num_resources", 3),
            overload_threshold=args.pop("overload_threshold", 0.9),
            initially_on=args.pop("initially_on", False),
        )
        site_broker = args.pop("broker")
        if args:
            raise ValueError(f"unknown site arguments {sorted(args)}")
        sites.append(
            Site(
                name=name,
                cluster=cluster,
                broker=site_broker,
                metrics=metrics,
                tariff=tariff,
            )
        )
    return FederationEngine(sites, broker)
