"""Discrete-event simulator for a cluster of power-managed servers.

This is the substrate the paper evaluates on: a continuous-time,
event-driven simulation of ``M`` homogeneous servers, each offering ``D``
resource types, serving VM (job) requests dispatched by a job broker.
Servers queue assigned jobs FCFS with head-of-line blocking, can sleep to
save power (zero consumption) at the cost of ``Ton``/``Toff`` transition
delays, and consume ``P(x) = P(0) + (P(100) - P(0)) (2x - x^1.4)`` watts
while active at CPU utilization ``x`` (Fan, Weber & Barroso).

Energy is integrated exactly: power is piecewise per Eqn. (3) between
utilization change points, and every change point is an event.
"""

from repro.sim.churn import CapacityEvent, schedule_capacity_events
from repro.sim.cluster import Cluster
from repro.sim.engine import ClusterEngine, SimulationResult, build_simulation
from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.federation import (
    FederationEngine,
    FederationResult,
    Site,
    build_federation,
    merge_site_series,
)
from repro.sim.interfaces import Broker, FederationBroker, PowerPolicy
from repro.sim.job import Job
from repro.sim.metrics import MetricsCollector, SeriesPoint
from repro.sim.power import PowerModel
from repro.sim.server import PowerState, Server

__all__ = [
    "CapacityEvent",
    "schedule_capacity_events",
    "Cluster",
    "ClusterEngine",
    "SimulationResult",
    "build_simulation",
    "EventQueue",
    "ScheduledEvent",
    "FederationEngine",
    "FederationResult",
    "Site",
    "build_federation",
    "merge_site_series",
    "Broker",
    "FederationBroker",
    "PowerPolicy",
    "Job",
    "MetricsCollector",
    "SeriesPoint",
    "PowerModel",
    "PowerState",
    "Server",
]
