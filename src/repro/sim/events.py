"""Continuous-time event queue.

A simple binary-heap priority queue of ``(time, sequence, event)`` where
the sequence number breaks ties deterministically in insertion order.
Events carry a callback; cancellation is lazy (a cancelled event is popped
and skipped), which keeps DPM timeout handling O(log n). A live-event
counter is maintained on schedule/cancel/pop so ``len(queue)`` is O(1)
instead of a scan over a heap full of cancelled tombstones.
"""

from __future__ import annotations

import heapq
from typing import Callable


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "cancelled", "kind", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[float], None],
        kind: str = "",
        queue: "EventQueue | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.kind = kind
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped (idempotent)."""
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue._live -= 1

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"ScheduledEvent(t={self.time:.3f}, kind={self.kind!r}{state})"


class EventQueue:
    """Time-ordered queue of :class:`ScheduledEvent`."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = 0
        self._live = 0  # scheduled minus (cancelled + popped): O(1) len()
        self.now = 0.0

    def __len__(self) -> int:
        return self._live

    def schedule(
        self,
        time: float,
        callback: Callable[[float], None],
        kind: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback(time)`` at absolute simulated ``time``.

        Raises
        ------
        ValueError
            If ``time`` is in the simulated past.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} before now ({self.now})")
        event = ScheduledEvent(time, self._seq, callback, kind, queue=self)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[float], None],
        kind: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback, kind)

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def pop(self) -> ScheduledEvent | None:
        """Pop and return the next live event, advancing ``now``.

        Returns None when no live events remain.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self.now:
                # The heappop above already removed the event; settle the
                # live counter before surfacing the corruption, or a
                # caller that catches this sees len() overcount forever
                # (a `while len(queue)` drain would then spin on pops
                # returning None).
                self._live -= 1
                event._queue = None
                raise RuntimeError(
                    f"event {event!r} is in the past (now={self.now})"
                )
            self._live -= 1
            event._queue = None  # no longer queued: a late cancel() is a no-op
            self.now = event.time
            return event
        return None

    def run_until_empty(self, max_events: int | None = None) -> int:
        """Drain the queue, invoking callbacks in time order.

        Returns the number of events executed. ``max_events`` is a safety
        valve against runaway schedules.
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                return executed
            event = self.pop()
            if event is None:
                return executed
            event.callback(event.time)
            executed += 1
