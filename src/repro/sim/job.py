"""Job (VM request) model.

A job is what the paper extracts from the Google cluster-usage traces:
an arrival time, a duration (pure execution time once resources are
granted), and a resource demand vector (CPU, memory, disk — normalized by
the capacity of one server). Latency is completion minus arrival and
therefore includes queueing delay and any server boot delay (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Resource vector index conventions used across the library.
CPU, MEM, DISK = 0, 1, 2
RESOURCE_NAMES = ("cpu", "mem", "disk")


@dataclass
class Job:
    """A VM (job) request.

    Parameters
    ----------
    job_id:
        Unique identifier within a trace.
    arrival_time:
        Simulated arrival time in seconds.
    duration:
        Execution time in seconds once resources are granted (paper: jobs
        between 1 minute and 2 hours).
    resources:
        Demand per resource type, each in ``(0, 1]`` as a fraction of one
        server's capacity.
    """

    job_id: int
    arrival_time: float
    duration: float
    resources: tuple[float, ...]

    # Runtime fields filled in by the simulator.
    server_id: int | None = field(default=None, compare=False)
    start_time: float | None = field(default=None, compare=False)
    finish_time: float | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError(f"job {self.job_id}: negative arrival time")
        if self.duration <= 0:
            raise ValueError(f"job {self.job_id}: duration must be positive")
        if not self.resources:
            raise ValueError(f"job {self.job_id}: empty resource vector")
        for name, demand in zip(RESOURCE_NAMES, self.resources):
            if not 0.0 < demand <= 1.0:
                raise ValueError(
                    f"job {self.job_id}: {name} demand {demand} outside (0, 1]"
                )

    @property
    def cpu(self) -> float:
        """CPU demand as a fraction of one server."""
        return self.resources[CPU]

    @property
    def completed(self) -> bool:
        return self.finish_time is not None

    @property
    def latency(self) -> float:
        """Arrival-to-completion time (queueing + boot wait + execution).

        Raises
        ------
        RuntimeError
            If the job has not completed yet.
        """
        if self.finish_time is None:
            raise RuntimeError(f"job {self.job_id} has not completed")
        return self.finish_time - self.arrival_time

    @property
    def wait_time(self) -> float:
        """Arrival-to-start time (latency minus pure execution)."""
        if self.start_time is None:
            raise RuntimeError(f"job {self.job_id} has not started")
        return self.start_time - self.arrival_time

    def reset(self) -> None:
        """Clear runtime fields so the job can be replayed in a new run."""
        self.server_id = None
        self.start_time = None
        self.finish_time = None

    def copy(self) -> "Job":
        """Fresh, un-run copy of this job."""
        return Job(self.job_id, self.arrival_time, self.duration, self.resources)
