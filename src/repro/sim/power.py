"""Server power model (Eqn. 3, after Fan, Weber & Barroso).

Active power at CPU utilization ``x`` is

    P(x) = P(0%) + (P(100%) - P(0%)) * (2x - x^1.4)

with the paper's defaults P(0%) = 87 W (idle) and P(100%) = 145 W (peak).
Sleep power is zero; power during sleep<->active transitions exceeds
P(0%) and defaults to P(100%) here (the paper only bounds it below).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PowerModel:
    """Power characteristics of one server.

    Parameters
    ----------
    idle_power:
        P(0%), watts consumed while active with zero utilization.
    peak_power:
        P(100%), watts at full CPU load.
    exponent:
        The sub-linear exponent of the utilization curve (paper: 1.4).
    t_on, t_off:
        Sleep-to-active and active-to-sleep transition times, seconds
        (paper: 30 s each).
    transition_power:
        Watts during a power-mode transition; defaults to ``peak_power``.
    sleep_power:
        Watts while asleep (paper: 0).
    """

    idle_power: float = 87.0
    peak_power: float = 145.0
    exponent: float = 1.4
    t_on: float = 30.0
    t_off: float = 30.0
    transition_power: float | None = None
    sleep_power: float = 0.0

    def __post_init__(self) -> None:
        if self.idle_power < 0 or self.peak_power < self.idle_power:
            raise ValueError(
                f"need 0 <= idle_power <= peak_power, got "
                f"{self.idle_power}, {self.peak_power}"
            )
        if self.exponent <= 1.0:
            raise ValueError(f"exponent must exceed 1, got {self.exponent}")
        if self.t_on < 0 or self.t_off < 0:
            raise ValueError("transition times must be non-negative")
        if self.sleep_power < 0:
            raise ValueError("sleep_power must be non-negative")
        if self.transition_power is None:
            object.__setattr__(self, "transition_power", self.peak_power)
        elif self.transition_power < self.idle_power:
            raise ValueError(
                "transition_power must be at least idle_power "
                f"({self.transition_power} < {self.idle_power})"
            )

    def active_power(self, utilization: float) -> float:
        """P(x) for CPU utilization ``x`` in [0, 1] (Eqn. 3).

        Utilization is clamped into [0, 1]; callers may momentarily
        over-subscribe by floating-point epsilon.
        """
        x = min(max(utilization, 0.0), 1.0)
        dynamic = 2.0 * x - x**self.exponent
        return self.idle_power + (self.peak_power - self.idle_power) * dynamic

    def energy(self, utilization: float, dt: float) -> float:
        """Joules consumed over ``dt`` seconds at constant utilization."""
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        return self.active_power(utilization) * dt
