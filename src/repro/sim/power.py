"""Server power model (Eqn. 3, after Fan, Weber & Barroso) and tariffs.

Active power at CPU utilization ``x`` is

    P(x) = P(0%) + (P(100%) - P(0%)) * (2x - x^1.4)

with the paper's defaults P(0%) = 87 W (idle) and P(100%) = 145 W (peak).
Sleep power is zero; power during sleep<->active transitions exceeds
P(0%) and defaults to P(100%) here (the paper only bounds it below).

:class:`TariffModel` extends the energy account with *when* the joules
were drawn: electricity price ($/kWh) and grid carbon intensity
(gCO₂/kWh) as periodic piecewise-constant signals — flat, time-of-use
windows, or a CSV-driven intensity curve — integrated exactly over any
simulated interval. The simulation itself is tariff-blind; tariffs only
shape the cost/CO₂ series the metrics layer reports.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass, replace
from pathlib import Path


@dataclass(frozen=True)
class PowerModel:
    """Power characteristics of one server.

    Parameters
    ----------
    idle_power:
        P(0%), watts consumed while active with zero utilization.
    peak_power:
        P(100%), watts at full CPU load.
    exponent:
        The sub-linear exponent of the utilization curve (paper: 1.4).
    t_on, t_off:
        Sleep-to-active and active-to-sleep transition times, seconds
        (paper: 30 s each).
    transition_power:
        Watts during a power-mode transition; defaults to ``peak_power``.
    sleep_power:
        Watts while asleep (paper: 0).
    """

    idle_power: float = 87.0
    peak_power: float = 145.0
    exponent: float = 1.4
    t_on: float = 30.0
    t_off: float = 30.0
    transition_power: float | None = None
    sleep_power: float = 0.0

    def __post_init__(self) -> None:
        if self.idle_power < 0 or self.peak_power < self.idle_power:
            raise ValueError(
                f"need 0 <= idle_power <= peak_power, got "
                f"{self.idle_power}, {self.peak_power}"
            )
        if self.exponent <= 1.0:
            raise ValueError(f"exponent must exceed 1, got {self.exponent}")
        if self.t_on < 0 or self.t_off < 0:
            raise ValueError("transition times must be non-negative")
        if self.sleep_power < 0:
            raise ValueError("sleep_power must be non-negative")
        if self.transition_power is None:
            object.__setattr__(self, "transition_power", self.peak_power)
        elif self.transition_power < self.idle_power:
            raise ValueError(
                "transition_power must be at least idle_power "
                f"({self.transition_power} < {self.idle_power})"
            )

    def active_power(self, utilization: float) -> float:
        """P(x) for CPU utilization ``x`` in [0, 1] (Eqn. 3).

        Utilization is clamped into [0, 1]; callers may momentarily
        over-subscribe by floating-point epsilon.
        """
        x = min(max(utilization, 0.0), 1.0)
        dynamic = 2.0 * x - x**self.exponent
        return self.idle_power + (self.peak_power - self.idle_power) * dynamic

    def energy(self, utilization: float, dt: float) -> float:
        """Joules consumed over ``dt`` seconds at constant utilization."""
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        return self.active_power(utilization) * dt


_JOULES_PER_KWH = 3.6e6

#: A window is ``(start_s, end_s, value)`` within one tariff period.
Window = tuple[float, float, float]


def _validate_windows(name: str, windows: tuple[Window, ...], period: float) -> None:
    prev_end = 0.0
    for start, end, value in windows:
        if not 0.0 <= start < end <= period:
            raise ValueError(
                f"{name} window ({start}, {end}) must satisfy "
                f"0 <= start < end <= period ({period})"
            )
        if start < prev_end:
            raise ValueError(
                f"{name} windows must be sorted and non-overlapping; "
                f"window starting at {start} overlaps the previous one"
            )
        if value < 0.0 or math.isnan(value):
            raise ValueError(f"{name} window value must be non-negative, got {value}")
        prev_end = end


def _step_at(windows: tuple[Window, ...], base: float, local_t: float) -> float:
    for start, end, value in windows:
        if start <= local_t < end:
            return value
    return base


def _step_integral(
    windows: tuple[Window, ...], base: float, period: float, t: float
) -> float:
    """Integral of the periodic step signal from time 0 to ``t`` (t >= 0)."""
    per_period = base * period + sum((e - s) * (v - base) for s, e, v in windows)
    full, rest = divmod(t, period)
    partial = base * rest
    for start, end, value in windows:
        overlap = min(rest, end) - min(rest, start)
        partial += overlap * (value - base)
    return full * per_period + partial


@dataclass(frozen=True)
class TariffModel:
    """Time-varying electricity price and grid carbon intensity.

    Both signals are periodic piecewise-constant step functions: a
    baseline value overridden inside zero or more windows per period.
    That covers the three shapes the scenario suite needs — flat
    (defaults), time-of-use price plans (:meth:`time_of_use`), and
    measured carbon-intensity curves loaded from CSV (:meth:`from_csv`)
    — while keeping interval integrals exact (no sampling error in the
    cost/CO₂ accounts).

    Parameters
    ----------
    price:
        Baseline electricity price in $/kWh.
    carbon:
        Baseline grid carbon intensity in gCO₂/kWh (the default, 400,
        is a typical mixed-fossil grid average).
    price_windows, carbon_windows:
        ``(start_s, end_s, value)`` overrides within one period; sorted
        and non-overlapping.
    period:
        Signal period in seconds (default: one day).
    t_offset:
        Shift applied to simulation time before the periodic lookup —
        ``signal(t)`` reads the curve at ``t + t_offset``. Lets trace
        shards evaluate the tariff in absolute experiment time (see
        :meth:`shifted`), or a run start at an arbitrary hour of day.
    """

    price: float = 0.10
    carbon: float = 400.0
    price_windows: tuple[Window, ...] = ()
    carbon_windows: tuple[Window, ...] = ()
    period: float = 86_400.0
    t_offset: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise ValueError(f"period must be positive, got {self.period}")
        if self.price < 0.0 or math.isnan(self.price):
            raise ValueError(f"price must be non-negative, got {self.price}")
        if self.carbon < 0.0 or math.isnan(self.carbon):
            raise ValueError(f"carbon must be non-negative, got {self.carbon}")
        # Normalize to plain sorted tuples so equality, hashing, and
        # content keys are representation-independent.
        for name in ("price_windows", "carbon_windows"):
            windows = tuple(
                (float(s), float(e), float(v)) for s, e, v in getattr(self, name)
            )
            object.__setattr__(self, name, windows)
            _validate_windows(name, windows, self.period)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def flat(cls, price: float = 0.10, carbon: float = 400.0) -> "TariffModel":
        """Constant price and carbon intensity."""
        return cls(price=price, carbon=carbon)

    @classmethod
    def time_of_use(
        cls,
        peak_start_hour: float,
        peak_end_hour: float,
        peak_price: float,
        offpeak_price: float,
        carbon: float = 400.0,
    ) -> "TariffModel":
        """Daily time-of-use plan: ``peak_price`` inside the peak window."""
        if not 0.0 <= peak_start_hour < peak_end_hour <= 24.0:
            raise ValueError(
                f"need 0 <= peak_start_hour < peak_end_hour <= 24, got "
                f"({peak_start_hour}, {peak_end_hour})"
            )
        return cls(
            price=offpeak_price,
            carbon=carbon,
            price_windows=(
                (peak_start_hour * 3600.0, peak_end_hour * 3600.0, peak_price),
            ),
        )

    @classmethod
    def from_csv(
        cls,
        path: str | Path,
        price: float = 0.10,
        period: float = 86_400.0,
    ) -> "TariffModel":
        """Carbon-intensity (and optionally price) step curve from a CSV.

        The file needs a ``time_s,carbon_g_per_kwh`` header (an optional
        third ``price_usd_per_kwh`` column also drives the price signal);
        each row holds from its ``time_s`` until the next row's, the last
        row until the end of the period. The first row must start at 0 so
        the whole period is covered.

        Raises
        ------
        ValueError
            On a malformed header, unparseable row, or times that are
            not strictly increasing within ``[0, period)``.
        """
        path = Path(path)
        rows: list[tuple[float, float, float | None]] = []
        with path.open(newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header is None or [h.strip() for h in header[:2]] != [
                "time_s",
                "carbon_g_per_kwh",
            ]:
                raise ValueError(
                    f"{path}: expected header 'time_s,carbon_g_per_kwh"
                    f"[,price_usd_per_kwh]', got {header!r}"
                )
            with_price = len(header) > 2
            for lineno, row in enumerate(reader, start=2):
                if not row:
                    continue
                try:
                    t = float(row[0])
                    c = float(row[1])
                    p = float(row[2]) if with_price else None
                except (ValueError, IndexError):
                    raise ValueError(f"{path}:{lineno}: unparseable tariff row {row!r}")
                rows.append((t, c, p))
        if not rows:
            raise ValueError(f"{path}: tariff curve has no rows")
        if rows[0][0] != 0.0:
            raise ValueError(f"{path}: the first row must start at time_s = 0")
        times = [t for t, _, _ in rows]
        if any(b <= a for a, b in zip(times, times[1:])) or times[-1] >= period:
            raise ValueError(
                f"{path}: times must be strictly increasing within [0, {period})"
            )
        edges = times[1:] + [period]
        carbon_windows = tuple((t, end, c) for (t, c, _), end in zip(rows, edges))
        price_windows: tuple[Window, ...] = ()
        if rows[0][2] is not None:
            price_windows = tuple((t, end, p) for (t, _, p), end in zip(rows, edges))
        return cls(
            price=price,
            carbon=rows[0][1],
            price_windows=price_windows,
            carbon_windows=carbon_windows,
            period=period,
        )

    def shifted(self, dt: float) -> "TariffModel":
        """This tariff evaluated ``dt`` seconds later (for trace shards)."""
        return replace(self, t_offset=self.t_offset + dt)

    # ------------------------------------------------------------------
    # Signal lookups and exact interval integrals
    # ------------------------------------------------------------------

    def price_at(self, t: float) -> float:
        """Electricity price ($/kWh) at simulated time ``t``."""
        return _step_at(
            self.price_windows, self.price, (t + self.t_offset) % self.period
        )

    def carbon_at(self, t: float) -> float:
        """Grid carbon intensity (gCO₂/kWh) at simulated time ``t``."""
        return _step_at(
            self.carbon_windows, self.carbon, (t + self.t_offset) % self.period
        )

    def _mean(
        self, windows: tuple[Window, ...], base: float, t0: float, t1: float
    ) -> float:
        if t1 <= t0:
            return _step_at(windows, base, (t0 + self.t_offset) % self.period)
        a, b = t0 + self.t_offset, t1 + self.t_offset
        shift = 0.0
        if a < 0.0:  # lift into non-negative time; the signal is periodic
            shift = math.ceil(-a / self.period) * self.period
        upper = _step_integral(windows, base, self.period, b + shift)
        lower = _step_integral(windows, base, self.period, a + shift)
        return (upper - lower) / (t1 - t0)

    def mean_price(self, t0: float, t1: float) -> float:
        """Exact mean price ($/kWh) over ``[t0, t1]``."""
        return self._mean(self.price_windows, self.price, t0, t1)

    def mean_carbon(self, t0: float, t1: float) -> float:
        """Exact mean carbon intensity (gCO₂/kWh) over ``[t0, t1]``."""
        return self._mean(self.carbon_windows, self.carbon, t0, t1)

    def energy_cost(self, joules: float, t0: float, t1: float) -> float:
        """Cost ($) of ``joules`` drawn at constant power over ``[t0, t1]``."""
        return joules / _JOULES_PER_KWH * self.mean_price(t0, t1)

    def energy_co2(self, joules: float, t0: float, t1: float) -> float:
        """Emissions (gCO₂) of ``joules`` drawn evenly over ``[t0, t1]``."""
        return joules / _JOULES_PER_KWH * self.mean_carbon(t0, t1)
