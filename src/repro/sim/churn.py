"""Scheduled capacity churn: server failures and maintenance drains.

Real fleets lose capacity on a schedule the controller does not choose —
kernel reboots, hardware swaps, rolling maintenance waves. This module
models those as *capacity events*: at ``time`` a server's usable capacity
drops to ``fraction`` of nominal, and ``duration`` seconds later it is
restored. Drains are graceful (running jobs finish; queued work waits),
matching how production maintenance cordons a machine rather than
killing its tenants.

Events are scheduled on the cluster's own :class:`~repro.sim.events.EventQueue`
before (or during) a run, so they interleave deterministically with job
arrivals and DPM timeouts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.cluster import Cluster


@dataclass(frozen=True)
class CapacityEvent:
    """One scheduled capacity change on one server.

    Parameters
    ----------
    time:
        Absolute simulated time (seconds) the drain begins.
    server_id:
        Index of the affected server within the cluster.
    duration:
        Seconds until full capacity is restored.
    fraction:
        Usable capacity share during the event (0 = failure/full drain).
    """

    time: float
    server_id: int
    duration: float
    fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"time must be non-negative, got {self.time}")
        if self.server_id < 0:
            raise ValueError(f"server_id must be non-negative, got {self.server_id}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if not 0.0 <= self.fraction < 1.0:
            raise ValueError(f"fraction must be in [0, 1), got {self.fraction}")


def schedule_capacity_events(
    cluster: "Cluster", capacity_events: Iterable[CapacityEvent]
) -> int:
    """Schedule drain/restore callbacks for every event; returns the count.

    Overlapping events on the same server are applied in time order; the
    restore always resets capacity to 1.0 (nominal), so the last restore
    wins — builders of churn schedules should keep per-server events
    disjoint if partial drains must compose.
    """
    count = 0
    for event in capacity_events:
        if event.server_id >= len(cluster):
            raise ValueError(
                f"capacity event targets server {event.server_id} but the "
                f"cluster has {len(cluster)} servers"
            )
        server = cluster[event.server_id]
        cluster.events.schedule(
            event.time,
            lambda t, s=server, f=event.fraction: s.set_capacity(t, f),
            kind=f"drain:{event.server_id}",
        )
        cluster.events.schedule(
            event.time + event.duration,
            lambda t, s=server: s.set_capacity(t, 1.0),
            kind=f"restore:{event.server_id}",
        )
        count += 2
    return count
