"""Fig. 10: the power/latency trade-off frontier.

The paper sweeps the local tier's weight ``w`` to trace the hierarchical
framework's trade-off curve between average per-job latency and average
per-job energy, and compares against the DRL-based allocation tier paired
with fixed timeout values (30, 60, 90 s). The proposed framework should
dominate: its curve encloses the smallest area against the axes.

:func:`run_tradeoff` regenerates all four curves;
:func:`frontier_savings` computes the paper's two headline comparisons —
maximum latency saving at equal energy and maximum energy saving at equal
latency — by interpolating along the baseline curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import ExperimentConfig
from repro.harness.report import format_csv
from repro.harness.runner import RunResult, make_system, run_system
from repro.harness.table1 import default_config, make_traces

#: Default sweep of the local-tier weight w (power vs. latency).
DEFAULT_W_SWEEP = (0.1, 0.3, 0.5, 0.7, 0.9)
#: The paper's fixed timeout baselines, in seconds.
DEFAULT_TIMEOUTS = (30.0, 60.0, 90.0)


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of a trade-off curve."""

    curve: str
    parameter: float  # w for hierarchical, timeout seconds for baselines
    mean_latency: float  # seconds per job
    energy_per_job_wh: float  # watt-hours per job

    @classmethod
    def from_result(
        cls, curve: str, parameter: float, result: RunResult
    ) -> "TradeoffPoint":
        return cls(
            curve=curve,
            parameter=parameter,
            mean_latency=result.mean_latency,
            energy_per_job_wh=result.energy_per_job_wh,
        )


def run_tradeoff(
    n_jobs: int = 3_000,
    num_servers: int = 30,
    seed: int = 0,
    w_sweep: tuple[float, ...] = DEFAULT_W_SWEEP,
    timeouts: tuple[float, ...] = DEFAULT_TIMEOUTS,
    config: ExperimentConfig | None = None,
    **make_kwargs,
) -> list[TradeoffPoint]:
    """Regenerate the Fig. 10 curves.

    Returns hierarchical points (curve ``"hierarchical"``, one per ``w``)
    and fixed-timeout points (curve ``"fixed-T"``, one per timeout).
    """
    config = config if config is not None else default_config(num_servers, seed=seed)
    eval_jobs, train_traces = make_traces(n_jobs, num_servers, seed)
    if "global_prototype" not in make_kwargs:
        # One shared DRL allocation tier for every point — the paper's
        # setup pairs the same global tier with different local tiers.
        from repro.harness.runner import train_global_prototype

        proto_kwargs = {
            k: make_kwargs[k]
            for k in ("pretrain", "online_epochs", "seed")
            if k in make_kwargs
        }
        make_kwargs["global_prototype"] = train_global_prototype(
            config, train_traces, **proto_kwargs
        )
    points: list[TradeoffPoint] = []
    for w in w_sweep:
        system = make_system(
            "hierarchical", config, train_traces, local_w=w, **make_kwargs
        )
        result = run_system(system, eval_jobs)
        points.append(TradeoffPoint.from_result("hierarchical", w, result))
    for timeout in timeouts:
        system = make_system(
            f"drl+fixed-{timeout:g}", config, train_traces, **make_kwargs
        )
        result = run_system(system, eval_jobs)
        points.append(TradeoffPoint.from_result(f"fixed-{timeout:g}", timeout, result))
    return points


def curve(points: list[TradeoffPoint], name: str) -> list[TradeoffPoint]:
    """The points of one named curve, sorted by energy.

    ``name`` matches exactly, or as a dash-prefix — ``"fixed"`` selects
    the union of ``fixed-30`` / ``fixed-60`` / ``fixed-90``, the combined
    fixed-timeout frontier the paper's Fig. 10 compares against.
    """
    selected = [
        p for p in points if p.curve == name or p.curve.startswith(name + "-")
    ]
    return sorted(selected, key=lambda p: p.energy_per_job_wh)


def pareto_front(points: list[TradeoffPoint]) -> list[TradeoffPoint]:
    """Non-dominated subset (minimizing both latency and energy)."""
    ordered = sorted(points, key=lambda p: (p.energy_per_job_wh, p.mean_latency))
    front: list[TradeoffPoint] = []
    best_latency = float("inf")
    for point in ordered:
        if point.mean_latency < best_latency:
            front.append(point)
            best_latency = point.mean_latency
    return front


def _interp(x: float, xs: np.ndarray, ys: np.ndarray) -> float | None:
    """Linear interpolation with None outside the hull."""
    if x < xs.min() or x > xs.max():
        return None
    return float(np.interp(x, xs, ys))


def frontier_savings(
    points: list[TradeoffPoint],
    ours: str = "hierarchical",
    baseline: str = "fixed",
) -> dict[str, float]:
    """The paper's two savings numbers between two curves.

    * ``latency_saving`` — maximum relative latency reduction at equal
      per-job energy (paper: up to 16.16 % vs. the fixed-90 baseline);
    * ``energy_saving`` — maximum relative energy reduction at equal
      latency (paper: up to 16.20 %).

    Savings are computed at our curve's sample points against linear
    interpolation of the baseline curve; points outside the baseline's
    hull are skipped. Returns zero savings when the curves do not
    overlap.
    """
    our_points = curve(points, ours)
    base_points = curve(points, baseline)
    if not our_points or not base_points:
        raise ValueError(f"missing curve: {ours!r} or {baseline!r}")
    base_e = np.array([p.energy_per_job_wh for p in base_points])
    base_l = np.array([p.mean_latency for p in base_points])
    lat_order = np.argsort(base_l)

    latency_saving = 0.0
    energy_saving = 0.0
    for point in our_points:
        base_latency = _interp(point.energy_per_job_wh, base_e, base_l)
        if base_latency is not None and base_latency > 0:
            latency_saving = max(
                latency_saving, (base_latency - point.mean_latency) / base_latency
            )
        base_energy = _interp(
            point.mean_latency, base_l[lat_order], base_e[lat_order]
        )
        if base_energy is not None and base_energy > 0:
            energy_saving = max(
                energy_saving, (base_energy - point.energy_per_job_wh) / base_energy
            )
    return {"latency_saving": latency_saving, "energy_saving": energy_saving}


def render_tradeoff_csv(points: list[TradeoffPoint]) -> str:
    """CSV text of all trade-off points."""
    rows = [
        [p.curve, p.parameter, f"{p.energy_per_job_wh:.4f}", f"{p.mean_latency:.2f}"]
        for p in points
    ]
    return format_csv(
        ["curve", "parameter", "energy_wh_per_job", "mean_latency_s"], rows
    )
