"""Figs. 8 and 9: accumulated latency and energy versus number of jobs.

Each figure has two panels — (a) accumulated job latency and (b) energy
usage, both against the number of (completed) jobs — for three systems:
the proposed hierarchical framework, DRL-based resource allocation only,
and the round-robin baseline. Fig. 8 is M = 30; Fig. 9 is M = 40.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.report import format_csv
from repro.harness.runner import RunResult, standard_protocol
from repro.harness.table1 import TABLE1_SYSTEMS, default_config, make_traces


@dataclass(frozen=True)
class FigureSeries:
    """Both panels of one figure, keyed by system name."""

    num_servers: int
    latency: dict[str, tuple[tuple[int, float], ...]]  # (a): jobs -> acc latency s
    energy: dict[str, tuple[tuple[int, float], ...]]  # (b): jobs -> energy kWh

    def systems(self) -> list[str]:
        return list(self.latency)


def _run_figure(
    num_servers: int,
    n_jobs: int,
    seed: int,
    systems: tuple[str, ...],
    record_every: int,
    **make_kwargs,
) -> FigureSeries:
    config = default_config(num_servers, seed=seed)
    eval_jobs, train_traces = make_traces(n_jobs, num_servers, seed)
    results: dict[str, RunResult] = standard_protocol(
        systems,
        eval_jobs,
        config,
        train_traces,
        record_every=record_every,
        **make_kwargs,
    )
    return FigureSeries(
        num_servers=num_servers,
        latency={name: results[name].latency_series for name in systems},
        energy={name: results[name].energy_series for name in systems},
    )


def run_figure8(
    n_jobs: int = 5_000,
    seed: int = 0,
    systems: tuple[str, ...] = TABLE1_SYSTEMS,
    record_every: int = 200,
    **make_kwargs,
) -> FigureSeries:
    """Fig. 8: M = 30 latency/energy curves (paper: 95 000 jobs)."""
    return _run_figure(30, n_jobs, seed, systems, record_every, **make_kwargs)


def run_figure9(
    n_jobs: int = 5_000,
    seed: int = 0,
    systems: tuple[str, ...] = TABLE1_SYSTEMS,
    record_every: int = 200,
    **make_kwargs,
) -> FigureSeries:
    """Fig. 9: M = 40 latency/energy curves (paper: 95 000 jobs)."""
    return _run_figure(40, n_jobs, seed, systems, record_every, **make_kwargs)


def render_series_csv(figure: FigureSeries, panel: str) -> str:
    """CSV text of one panel (``"latency"`` or ``"energy"``).

    Columns: n_jobs plus one column per system. Rows are aligned on each
    system's own sample points; systems complete jobs at different times,
    so each (system, n) pair appears as its own row.
    """
    if panel not in ("latency", "energy"):
        raise ValueError(f"panel must be 'latency' or 'energy', got {panel!r}")
    series = figure.latency if panel == "latency" else figure.energy
    rows = []
    for name, points in series.items():
        for n, value in points:
            rows.append([name, n, repr(float(value))])
    unit = "acc_latency_s" if panel == "latency" else "energy_kwh"
    return format_csv(["system", "n_jobs", unit], rows)
