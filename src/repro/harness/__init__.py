"""Experiment harness: regenerates every table and figure of Sec. VII.

* :mod:`repro.harness.runner` — named-system construction, the paper's
  offline-then-online training protocol, and single-run execution.
* :mod:`repro.harness.table1` — Table I (energy / accumulated latency /
  average power at a fixed job count, M = 30 and 40).
* :mod:`repro.harness.figures` — Figs. 8 and 9 (accumulated latency and
  energy versus the number of jobs).
* :mod:`repro.harness.tradeoff` — Fig. 10 (average latency vs. average
  energy per job: hierarchical w-sweep against fixed-timeout baselines).
* :mod:`repro.harness.claims` — the paper's headline percentage claims,
  recomputed from our measurements.
* :mod:`repro.harness.report` — plain-text table/CSV rendering.
"""

from repro.harness.claims import ClaimReport, evaluate_claims
from repro.harness.figures import (
    FigureSeries,
    render_series_csv,
    run_figure8,
    run_figure9,
)
from repro.harness.report import format_table
from repro.harness.runner import (
    RunResult,
    clone_global_broker,
    make_scenario_system,
    make_system,
    needs_global_tier,
    run_system,
    standard_protocol,
    SYSTEM_DESCRIPTIONS,
    SYSTEM_NAMES,
    train_global_prototype,
)
from repro.harness.table1 import Table1Row, render_table1, run_table1
from repro.harness.tradeoff import TradeoffPoint, render_tradeoff_csv, run_tradeoff

__all__ = [
    "ClaimReport",
    "evaluate_claims",
    "FigureSeries",
    "run_figure8",
    "run_figure9",
    "render_series_csv",
    "format_table",
    "RunResult",
    "clone_global_broker",
    "make_scenario_system",
    "make_system",
    "needs_global_tier",
    "run_system",
    "standard_protocol",
    "SYSTEM_DESCRIPTIONS",
    "SYSTEM_NAMES",
    "train_global_prototype",
    "Table1Row",
    "render_table1",
    "run_table1",
    "TradeoffPoint",
    "render_tradeoff_csv",
    "run_tradeoff",
]
