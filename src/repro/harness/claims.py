"""The paper's headline claims, recomputed from our measurements.

Sec. VII claims, for the 30-machine / 95 000-job case:

* the hierarchical framework saves **53.97 %** power and energy versus
  round-robin;
* it saves **16.12 %** power/energy and **16.67 %** latency versus
  DRL-only (M = 40: 59.99 %, 17.89 %, 13.32 %);
* on the trade-off frontier it saves up to **16.16 %** latency at equal
  energy and **16.20 %** energy at equal latency versus fixed timeouts.

We do not expect to match these numbers on a different substrate — the
*shape* assertions (who wins, roughly what factor, see DESIGN.md §3) are
what :func:`evaluate_claims` checks and EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.table1 import Table1Row


@dataclass(frozen=True)
class ClaimReport:
    """Relative savings of the hierarchical framework for one cluster size."""

    num_servers: int
    energy_saving_vs_round_robin: float
    power_saving_vs_round_robin: float
    energy_saving_vs_drl: float
    latency_saving_vs_drl: float
    latency_cost_vs_round_robin: float

    def summary(self) -> str:
        return (
            f"M={self.num_servers}: "
            f"energy vs round-robin {self.energy_saving_vs_round_robin:+.1%}, "
            f"power vs round-robin {self.power_saving_vs_round_robin:+.1%}, "
            f"energy vs DRL-only {self.energy_saving_vs_drl:+.1%}, "
            f"latency vs DRL-only {self.latency_saving_vs_drl:+.1%}, "
            f"latency vs round-robin {self.latency_cost_vs_round_robin:+.1%}"
        )


def _row(rows: list[Table1Row], system: str, num_servers: int) -> Table1Row:
    for row in rows:
        if row.system == system and row.num_servers == num_servers:
            return row
    raise ValueError(f"no Table-I row for {system!r} with M={num_servers}")


def _saving(baseline: float, ours: float) -> float:
    """Relative reduction; positive means we are better (smaller)."""
    if baseline <= 0:
        return 0.0
    return (baseline - ours) / baseline


def evaluate_claims(rows: list[Table1Row], num_servers: int = 30) -> ClaimReport:
    """Compute the paper's Table-I-derived percentage claims from our rows.

    Raises
    ------
    ValueError
        If any of the three systems is missing for ``num_servers``.
    """
    round_robin = _row(rows, "round-robin", num_servers)
    drl = _row(rows, "drl-only", num_servers)
    hier = _row(rows, "hierarchical", num_servers)
    return ClaimReport(
        num_servers=num_servers,
        energy_saving_vs_round_robin=_saving(round_robin.energy_kwh, hier.energy_kwh),
        power_saving_vs_round_robin=_saving(round_robin.power_w, hier.power_w),
        energy_saving_vs_drl=_saving(drl.energy_kwh, hier.energy_kwh),
        latency_saving_vs_drl=_saving(drl.latency_1e6_s, hier.latency_1e6_s),
        latency_cost_vs_round_robin=_saving(
            round_robin.latency_1e6_s, hier.latency_1e6_s
        ),
    )
