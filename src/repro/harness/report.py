"""Plain-text rendering helpers for harness outputs."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table.

    Numeric cells are right-aligned; everything is stringified with
    ``str`` (pre-format floats upstream for custom precision).
    """
    table = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in table:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = [fmt_row(list(headers)), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in table)
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as simple CSV text (no quoting; numeric payloads)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(str(cell) for cell in row))
    return "\n".join(lines)
