"""Named-system construction and the paper's training/evaluation protocol.

Sec. VII-A's protocol, scaled to laptop budgets: the global tier is
pre-trained offline (experience collection under round-robin, autoencoder
reconstruction pre-training, Sub-Q regression on SMDP targets), refined
with online ε-greedy deep Q-learning over training segments, and then —
because the framework is an *online adaptive* controller — keeps learning
through the evaluation trace itself.

To compare local tiers apples-to-apples (Table I and Fig. 10 pair the
*same* DRL allocation tier with different power managers), the harness
trains one **global prototype** per experiment and clones its Q-network
into every DRL-based system, so differences between ``drl-only``,
``drl+fixed-T`` and ``hierarchical`` come from the local tier, not from
global-training variance.

Systems are addressed by name so benchmarks, tests and examples share one
construction path:

=================  =====================================================
``round-robin``    RoundRobinBroker + always-on servers (paper baseline)
``random``         RandomBroker + always-on
``least-loaded``   LeastLoadedBroker + always-on
``packing``        PackingBroker + immediate sleep (greedy comparator)
``drl-only``       DRL global tier + ad-hoc immediate sleep (Fig. 4a)
``drl+fixed-T``    DRL global tier + fixed timeout T seconds (Fig. 10)
``hierarchical``   full framework: DRL global tier + RL/LSTM local tier
=================  =====================================================
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.core.baselines import (
    AlwaysOnPolicy,
    FixedTimeoutPolicy,
    ImmediateSleepPolicy,
    LeastLoadedBroker,
    PackingBroker,
    RandomBroker,
)
from repro.core.config import ExperimentConfig
from repro.core.global_tier import DRLGlobalBroker, offline_pretrain
from repro.core.hierarchical import (
    HierarchicalSystem,
    build_drl_only,
    build_hierarchical,
    build_round_robin,
    pretrain_predictor,
)
from repro.core.predictor import WorkloadPredictor
from repro.obs import telemetry as obs
from repro.sim.churn import CapacityEvent
from repro.sim.job import Job
from repro.sim.power import TariffModel

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.scenarios.specs import ScenarioSpec

SYSTEM_NAMES = (
    "round-robin",
    "random",
    "least-loaded",
    "packing",
    "drl-only",
    "hierarchical",
)

#: One-line description per named system (``python -m repro systems``).
SYSTEM_DESCRIPTIONS = {
    "round-robin": "Round-robin dispatch, servers always on (paper baseline)",
    "random": "Uniform-random dispatch, servers always on",
    "least-loaded": "Dispatch to the least CPU-loaded server, always on",
    "packing": "Greedy first-fit packing with immediate sleep",
    "drl-only": "DRL global tier with ad-hoc immediate sleep (Fig. 4a)",
    "drl+fixed-T": "DRL global tier with a fixed local timeout of T seconds",
    "hierarchical": "Full framework: DRL global tier + RL/LSTM local tier",
}

_FIXED_RE = re.compile(r"^drl\+fixed-(\d+(?:\.\d+)?)$")

#: System names whose broker is the DRL global tier.
_DRL_PREFIXES = ("drl-only", "drl+fixed-", "hierarchical")


@dataclass(frozen=True)
class RunResult:
    """Flattened outcome of one evaluation run."""

    name: str
    num_servers: int
    n_jobs: int
    energy_kwh: float
    acc_latency: float
    mean_latency: float
    average_power: float
    final_time: float
    latency_series: tuple[tuple[int, float], ...]
    energy_series: tuple[tuple[int, float], ...]
    # Electricity-aware extensions (zero / empty without a tariff).
    cost_usd: float = 0.0
    co2_kg: float = 0.0
    cost_series: tuple[tuple[int, float], ...] = ()
    co2_series: tuple[tuple[int, float], ...] = ()
    #: Telemetry snapshot of the run (profiled runs only, else None).
    telemetry: dict | None = None
    # Fault-injection extensions (defaults hold for fault-free runs).
    failed_jobs: int = 0
    retries: int = 0
    goodput: float = 1.0
    availability: float = 1.0
    broker_fallbacks: int = 0

    @property
    def acc_latency_1e6(self) -> float:
        """Accumulated latency in the paper's Table-I unit (1e6 seconds)."""
        return self.acc_latency / 1e6

    @property
    def energy_per_job_wh(self) -> float:
        """Average energy per completed job in watt-hours (Fig. 10 x-axis)."""
        if self.n_jobs == 0:
            return 0.0
        return self.energy_kwh * 1000.0 / self.n_jobs


def run_system(
    system: HierarchicalSystem,
    jobs: list[Job],
    record_every: int = 200,
    capacity_events: tuple[CapacityEvent, ...] = (),
    tariff: "TariffModel | None" = None,
    faults=None,
) -> RunResult:
    """Evaluate a (possibly trained) system on a fresh copy of a trace.

    ``capacity_events`` schedules churn (failures / maintenance drains)
    into the evaluation run; training runs are never churned. ``tariff``
    attaches a price/carbon signal so the result carries cost and CO₂
    alongside energy (training is always tariff-blind — electricity
    accounting is an evaluation-side lens, not a reward term).
    ``faults`` is an optional resolved
    :class:`~repro.faults.plan.SiteFaultPlan`; like churn and tariffs it
    applies to evaluation only, and the result then carries the
    failed/retry/goodput/availability tallies.
    """
    result = system.run(
        [job.copy() for job in jobs],
        record_every=record_every,
        capacity_events=capacity_events,
        tariff=tariff,
        faults=faults,
    )
    metrics = result.metrics
    runtime = result.faults
    tel = obs.active()
    return RunResult(
        telemetry=tel.snapshot() if tel is not None else None,
        name=system.name,
        num_servers=system.config.num_servers,
        n_jobs=metrics.n_completed,
        energy_kwh=result.total_energy_kwh,
        acc_latency=metrics.acc_latency,
        mean_latency=metrics.mean_latency,
        average_power=result.average_power_watts,
        final_time=result.final_time,
        latency_series=tuple(metrics.latency_series()),
        energy_series=tuple(metrics.energy_series()),
        cost_usd=metrics.total_cost_usd(),
        co2_kg=metrics.total_co2_kg(),
        cost_series=tuple(metrics.cost_series()),
        co2_series=tuple(metrics.co2_series()),
        failed_jobs=metrics.n_failed,
        retries=metrics.n_retries,
        goodput=metrics.goodput,
        availability=(
            runtime.fleet_availability(result.final_time)
            if runtime is not None
            else 1.0
        ),
        broker_fallbacks=(runtime.broker_fallbacks if runtime is not None else 0),
    )


def needs_global_tier(name: str) -> bool:
    """Whether a named system uses the DRL global broker."""
    return any(name.startswith(prefix) for prefix in _DRL_PREFIXES)


def derive_cell_seeds(seed: int) -> tuple[np.random.SeedSequence, int]:
    """The (trace seed-sequence, system seed) a scenario cell derives.

    The single definition shared by cold construction
    (:func:`make_scenario_system`) and checkpoint-backed warm starts
    (:mod:`repro.scenarios.checkpoints`): both paths must see identical
    traces and identical controller initialization or warm cells would
    silently run a different experiment.
    """
    trace_ss, system_ss = np.random.SeedSequence(seed).spawn(2)
    return trace_ss, int(system_ss.generate_state(1)[0])


def build_pretrained_predictor(
    config: ExperimentConfig,
    train_traces: list[list[Job]],
    seed: int,
) -> WorkloadPredictor:
    """The LSTM predictor a hierarchical system starts evaluation with.

    Shared by :func:`make_system`'s cold path and checkpoint training
    (:func:`repro.scenarios.checkpoints.train_policy`), so the warm
    path's stored weights are bit-for-bit the ones a cold cell would
    have trained. A trace too short for a full look-back window leaves
    the predictor legitimately unfitted.
    """
    predictor = WorkloadPredictor(
        config.local_tier.predictor, rng=np.random.default_rng(seed)
    )
    if train_traces:
        try:
            pretrain_predictor(predictor, train_traces[0], config.num_servers)
        except ValueError:
            pass  # trace too short for a full look-back window
    return predictor


def train_global_prototype(
    config: ExperimentConfig,
    train_traces: list[list[Job]],
    pretrain: bool = True,
    online_epochs: int = 2,
    seed: int | None = None,
) -> DRLGlobalBroker:
    """Train the shared global tier (Algorithm 1 offline + online phases).

    Offline: collect transitions under round-robin, pre-train the
    autoencoder and the Sub-Q network. Online: ε-greedy deep Q-learning
    passes over the training traces with the ad-hoc local policy.
    """
    system = build_drl_only(config, seed=seed)
    broker = system.broker
    assert isinstance(broker, DRLGlobalBroker)
    if pretrain and train_traces:
        offline_pretrain(
            broker,
            train_traces,
            policy_factory=lambda: ImmediateSleepPolicy(),
            power_model=config.fleet_power_models,
            autoencoder_epochs=5,
            q_epochs=2,
            batches_per_epoch=100,
        )
    for _ in range(online_epochs):
        for trace in train_traces:
            system.run([job.copy() for job in trace])
    return broker


def clone_global_broker(
    prototype: DRLGlobalBroker,
    config: ExperimentConfig,
    seed: int | None = None,
) -> DRLGlobalBroker:
    """Fresh broker carrying the prototype's trained Q-network weights.

    The clone owns an independent network, optimizer, and replay memory,
    and starts at the prototype's (annealed) exploration rate, so systems
    sharing a prototype remain statistically independent afterwards.
    """
    rng = np.random.default_rng(config.seed if seed is None else seed)
    clone = DRLGlobalBroker(
        prototype.encoder,
        config.global_tier,
        qnetwork=prototype.qnet.clone(rng=rng),
        rng=rng,
    )
    clone.epsilon = prototype.epsilon
    return clone


def make_system(
    name: str,
    config: ExperimentConfig | None = None,
    train_traces: list[list[Job]] | None = None,
    global_prototype: DRLGlobalBroker | None = None,
    predictor: WorkloadPredictor | None = None,
    pretrain: bool = True,
    online_epochs: int = 2,
    local_epochs: int = 2,
    local_w: float | None = None,
    shared_dpm_learner: bool = True,
    seed: int | None = None,
) -> HierarchicalSystem:
    """Build (and, for learning systems, train) a named system.

    Parameters
    ----------
    name:
        One of :data:`SYSTEM_NAMES` or ``drl+fixed-T`` (T in seconds).
    train_traces:
        Traces for offline pretraining and online warm-up of learning
        systems; ignored by static baselines.
    global_prototype:
        A broker from :func:`train_global_prototype`. When given, DRL
        systems clone its Q-network instead of training their own —
        isolating local-tier differences.
    predictor:
        A (typically pre-trained) LSTM workload predictor for the
        hierarchical system's local tier. When given, the usual
        offline predictor pre-training is skipped — this is how policy
        checkpoints warm-start the local tier.
    online_epochs:
        Online global-training passes when *no* prototype is supplied.
    local_epochs:
        Warm-up passes for the hierarchical system's local tier.
    local_w:
        Override the local tier's power-vs-latency weight (Fig. 10 knob).
    shared_dpm_learner:
        Pool the DPM Q-table across servers (sample-efficient default;
        set False for the paper's strictly per-server learners).

    Raises
    ------
    ValueError
        On an unknown system name.
    """
    config = config if config is not None else ExperimentConfig()
    if local_w is not None:
        config = replace(config, local_tier=replace(config.local_tier, w=local_w))
    train_traces = train_traces or []
    rng = np.random.default_rng(config.seed if seed is None else seed)

    if name == "round-robin":
        return build_round_robin(config)
    if name == "random":
        return HierarchicalSystem(
            name="random",
            broker=RandomBroker(rng),
            policies=AlwaysOnPolicy(),
            config=config,
            initially_on=True,
        )
    if name == "least-loaded":
        return HierarchicalSystem(
            name="least-loaded",
            broker=LeastLoadedBroker(),
            policies=AlwaysOnPolicy(),
            config=config,
            initially_on=True,
        )
    if name == "packing":
        return HierarchicalSystem(
            name="packing",
            broker=PackingBroker(),
            policies=ImmediateSleepPolicy(),
            config=config,
            initially_on=False,
        )
    if not needs_global_tier(name):
        raise ValueError(
            f"unknown system {name!r}; known: {SYSTEM_NAMES} or 'drl+fixed-T'"
        )

    # --- DRL-based systems ------------------------------------------------
    if global_prototype is not None:
        broker = clone_global_broker(global_prototype, config, seed=seed)
    else:
        broker = train_global_prototype(
            config, train_traces, pretrain=pretrain, online_epochs=online_epochs,
            seed=seed,
        )

    if name == "drl-only":
        return HierarchicalSystem(
            name="drl-only",
            broker=broker,
            policies=ImmediateSleepPolicy(),
            config=config,
            initially_on=False,
        )
    match = _FIXED_RE.match(name)
    if match:
        return HierarchicalSystem(
            name=name,
            broker=broker,
            policies=FixedTimeoutPolicy(float(match.group(1))),
            config=config,
            initially_on=False,
        )
    # name == "hierarchical"
    if predictor is None:
        predictor = build_pretrained_predictor(
            config, train_traces, config.seed if seed is None else seed
        )
    system = build_hierarchical(
        config,
        broker=broker,
        predictor=predictor,
        shared_dpm_learner=shared_dpm_learner,
        seed=seed,
    )
    # Warm up the local tier; the global tier keeps learning through
    # these passes too when it is fresh — both tiers are online learners.
    for _ in range(local_epochs):
        for trace in train_traces:
            system.run([job.copy() for job in trace])
    return system


def make_scenario_system(
    name: str,
    scenario: "ScenarioSpec | str",
    n_jobs: int,
    seed: int = 0,
    **make_kwargs,
) -> tuple[HierarchicalSystem, list[Job], tuple[CapacityEvent, ...]]:
    """Build a named system from a scenario instead of ``default_config``.

    Resolves the scenario (by name via the registry, or a spec
    directly), generates its traces with independently spawned seed
    streams, trains the system on the training segments, and returns
    ``(system, eval_jobs, capacity_events)`` ready for
    :func:`run_system`.
    """
    from repro.scenarios import registry

    spec = registry.get(scenario) if isinstance(scenario, str) else scenario
    trace_ss, system_seed = derive_cell_seeds(seed)
    config = spec.experiment_config(seed=seed)
    eval_jobs, train_traces = spec.build_traces(n_jobs, trace_ss)
    system = make_system(
        name,
        config,
        train_traces,
        seed=system_seed,
        **make_kwargs,
    )
    return system, eval_jobs, spec.capacity_events(spec.horizon_for(n_jobs))


def standard_protocol(
    names: tuple[str, ...],
    eval_jobs: list[Job],
    config: ExperimentConfig | None = None,
    train_traces: list[list[Job]] | None = None,
    record_every: int = 200,
    **make_kwargs,
) -> dict[str, RunResult]:
    """Train each named system, evaluate all on the same trace.

    A single global prototype is trained and shared by every DRL-based
    system in ``names`` (unless the caller passes ``global_prototype``).
    """
    config = config if config is not None else ExperimentConfig()
    train_traces = train_traces or []
    if "global_prototype" not in make_kwargs and any(
        needs_global_tier(n) for n in names
    ):
        proto_kwargs = {
            k: make_kwargs[k]
            for k in ("pretrain", "online_epochs", "seed")
            if k in make_kwargs
        }
        make_kwargs["global_prototype"] = train_global_prototype(
            config, train_traces, **proto_kwargs
        )
    results: dict[str, RunResult] = {}
    for name in names:
        system = make_system(name, config, train_traces, **make_kwargs)
        results[name] = run_system(system, eval_jobs, record_every=record_every)
    return results
