"""Table I: cluster performance metrics at a fixed job count.

The paper reports, for M = 30 and M = 40 and 95 000 jobs, the accumulated
energy (kWh), accumulated latency (1e6 s), and average power (W) of the
round-robin baseline, the DRL-only framework, and the full hierarchical
framework. :func:`run_table1` regenerates those rows at any job count
(the defaults are laptop-scaled; pass ``n_jobs=95_000`` for the paper's
full size).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import ExperimentConfig, GlobalTierConfig
from repro.harness.report import format_table
from repro.harness.runner import RunResult, standard_protocol
from repro.workload.synthetic import (
    SyntheticTraceConfig,
    generate_trace,
    reference_rate,
)

#: The three systems Table I compares, in the paper's order.
TABLE1_SYSTEMS = ("round-robin", "drl-only", "hierarchical")


@dataclass(frozen=True)
class Table1Row:
    """One cell-group of Table I."""

    system: str
    num_servers: int
    energy_kwh: float
    latency_1e6_s: float
    power_w: float

    @classmethod
    def from_result(cls, result: RunResult) -> "Table1Row":
        return cls(
            system=result.name,
            num_servers=result.num_servers,
            energy_kwh=result.energy_kwh,
            latency_1e6_s=result.acc_latency_1e6,
            power_w=result.average_power,
        )


def _groups_for(num_servers: int) -> int:
    """K between 2 and 4 dividing M (paper: K in [2, 4])."""
    for k in (4, 3, 2):
        if num_servers % k == 0:
            return k
    return 1


def default_config(num_servers: int, seed: int = 0) -> ExperimentConfig:
    """Paper-default experiment configuration for a cluster size."""
    return ExperimentConfig(
        num_servers=num_servers,
        global_tier=GlobalTierConfig(num_groups=_groups_for(num_servers)),
        seed=seed,
    )


def make_traces(
    n_jobs: int,
    num_servers: int,
    seed: int,
    n_train_segments: int = 2,
    train_fraction: float = 0.5,
) -> tuple[list, list[list]]:
    """Evaluation trace plus training segments, scaled to the cluster.

    The base synthetic config (100 k jobs/week) targets the paper's
    30-machine cluster. Larger clusters reuse the same intensity (the
    paper evaluates M = 30 and 40 on the same segments); smaller test
    clusters get a proportionally lighter arrival rate so they are not
    pathologically overloaded.
    """
    base = SyntheticTraceConfig()
    rate = reference_rate(num_servers)
    # Independent child streams per trace (never plain seed+i offsets,
    # which collide with other traces seeded nearby).
    eval_ss, *train_ss = np.random.SeedSequence(seed).spawn(1 + n_train_segments)
    eval_cfg = replace(base, n_jobs=n_jobs, horizon=n_jobs / rate)
    eval_jobs = generate_trace(eval_cfg, seed=np.random.default_rng(eval_ss))
    train_jobs = max(int(n_jobs * train_fraction), 200)
    train_cfg = replace(base, n_jobs=train_jobs, horizon=train_jobs / rate)
    train_traces = [
        generate_trace(train_cfg, seed=np.random.default_rng(child))
        for child in train_ss
    ]
    return eval_jobs, train_traces


def run_table1(
    n_jobs: int = 5_000,
    cluster_sizes: tuple[int, ...] = (30, 40),
    seed: int = 0,
    systems: tuple[str, ...] = TABLE1_SYSTEMS,
    **make_kwargs,
) -> list[Table1Row]:
    """Regenerate Table I.

    Parameters
    ----------
    n_jobs:
        Jobs in the evaluation trace (paper: 95 000).
    cluster_sizes:
        M values (paper: 30 and 40).
    """
    rows: list[Table1Row] = []
    for num_servers in cluster_sizes:
        config = default_config(num_servers, seed=seed)
        eval_jobs, train_traces = make_traces(n_jobs, num_servers, seed)
        results = standard_protocol(
            systems, eval_jobs, config, train_traces, **make_kwargs
        )
        for name in systems:
            rows.append(Table1Row.from_result(results[name]))
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    """Paper-style text rendering of Table I rows."""
    return format_table(
        ["System", "M", "Energy (kWh)", "Latency (1e6 s)", "Power (W)"],
        [
            [
                row.system,
                row.num_servers,
                f"{row.energy_kwh:.2f}",
                f"{row.latency_1e6_s:.3f}",
                f"{row.power_w:.2f}",
            ]
            for row in rows
        ],
    )
