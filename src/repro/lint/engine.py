"""The auditor's engine: walk files, run rules, apply suppressions.

:func:`run_lint` is the single entry point the CLI and the test suite
share. Exit-code contract (mirrored by ``repro lint``): 0 — clean;
1 — at least one unsuppressed finding; 2 — usage error (unknown rule,
unreadable path), raised here as :class:`LintUsageError` for the CLI to
translate.
"""

from __future__ import annotations

import ast
import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.config import LintConfig
from repro.lint.model import Finding, SourceFile
from repro.lint.rules import ProjectRule, rules_by_id
from repro.lint.suppress import (
    SUPPRESSION_RULE,
    Suppression,
    apply_suppressions,
    scan_suppressions,
    unused_suppressions,
)

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".repro-cache"})


class LintUsageError(ValueError):
    """Bad invocation (unknown rule id, path that does not exist)."""


def _iter_py_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(p.parts)
            )
        elif path.is_file():
            candidates = [path]
        else:
            raise LintUsageError(f"path {path} does not exist")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def package_relative(path: Path, root: Path | None) -> str:
    """The scope-matching path: relative to ``root``, or to the deepest
    ``repro`` package directory on the file's path, else to the cwd."""
    resolved = path.resolve()
    if root is not None:
        try:
            return resolved.relative_to(Path(root).resolve()).as_posix()
        except ValueError:
            return resolved.name
    parts = resolved.parts
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        rel = "/".join(parts[index + 1 :])
        if rel:
            return rel
    try:
        return resolved.relative_to(Path.cwd()).as_posix()
    except ValueError:
        return resolved.name


@dataclass
class LintReport:
    """Everything one audit run produced."""

    findings: list[Finding]
    n_files: int
    rules: tuple[str, ...]
    suppressions_used: int = 0
    parse_errors: int = 0
    selected: tuple[str, ...] = field(default_factory=tuple)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts(self) -> dict[str, int]:
        return dict(sorted(Counter(f.rule for f in self.findings).items()))

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        if self.findings:
            per_rule = ", ".join(
                f"{rule} x{n}" for rule, n in self.counts().items()
            )
            lines.append(
                f"{len(self.findings)} finding(s) in {self.n_files} file(s) "
                f"({per_rule})"
            )
        else:
            lines.append(
                f"clean: {self.n_files} file(s), "
                f"{len(self.selected or self.rules)} rule(s), "
                f"{self.suppressions_used} vetted suppression(s)"
            )
        return "\n".join(lines)

    def render_json(self) -> str:
        payload = {
            "version": 1,
            "rules": list(self.selected or self.rules),
            "files": self.n_files,
            "suppressions_used": self.suppressions_used,
            "counts": self.counts(),
            "findings": [finding.to_dict() for finding in self.findings],
        }
        return json.dumps(payload, indent=1, sort_keys=True)


def run_lint(
    paths: list[str | Path],
    root: str | Path | None = None,
    select: list[str] | None = None,
    config: LintConfig | None = None,
) -> LintReport:
    """Audit ``paths`` (files or directories) and return the report.

    Parameters
    ----------
    paths:
        Files or directories to walk (``.py`` files, recursively).
    root:
        Anchor for package-relative scope paths. Defaults to
        auto-detection: each file's path is cut at the deepest ``repro``
        directory, so ``src/repro/sim/engine.py`` scopes as
        ``sim/engine.py``. Tests point this at fixture trees.
    select:
        Rule ids to run (default: all). REP000 (suppression hygiene) is
        always implied.
    config:
        Scope/target overrides; defaults to the repository layout.
    """
    config = config if config is not None else LintConfig()
    registry = rules_by_id()
    if select is None:
        selected = frozenset(registry) | {SUPPRESSION_RULE}
    else:
        unknown = [r for r in select if r not in registry and r != SUPPRESSION_RULE]
        if unknown:
            raise LintUsageError(
                f"unknown rule id(s): {', '.join(unknown)}; known: "
                f"{SUPPRESSION_RULE}, {', '.join(sorted(registry))}"
            )
        selected = frozenset(select) | {SUPPRESSION_RULE}
    known = frozenset(registry) | {SUPPRESSION_RULE}

    root_path = Path(root) if root is not None else None
    findings: list[Finding] = []
    sources: list[SourceFile] = []
    parse_errors = 0
    files = _iter_py_files([Path(p) for p in paths])
    for path in files:
        try:
            text = path.read_text()
            tree = ast.parse(text, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            parse_errors += 1
            line = getattr(exc, "lineno", None) or 1
            findings.append(
                Finding(
                    str(path),
                    line,
                    0,
                    SUPPRESSION_RULE,
                    f"file could not be audited: {exc}",
                )
            )
            continue
        sources.append(
            SourceFile(path, package_relative(path, root_path), text, tree)
        )

    # File rules, scoped per file.
    for source in sources:
        for rule_id, rule in registry.items():
            if rule_id not in selected or isinstance(rule, ProjectRule):
                continue
            if config.scope_for(rule_id).matches(source.rel):
                findings.extend(rule.check(source, config))
    # Project rules see every scanned file (their targets are rel-paths).
    for rule_id, rule in registry.items():
        if rule_id in selected and isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(sources, config))

    # Suppressions: collect, apply, then flag the stale ones.
    by_path: dict[str, dict[int, Suppression]] = {}
    for source in sources:
        suppressions, hygiene = scan_suppressions(source, known)
        if suppressions:
            by_path[str(source.path)] = suppressions
        if SUPPRESSION_RULE in selected:
            findings.extend(hygiene)
    findings = apply_suppressions(findings, by_path)
    used = sum(
        len(s.used) for per_file in by_path.values() for s in per_file.values()
    )
    if SUPPRESSION_RULE in selected:
        findings.extend(unused_suppressions(by_path, selected))

    return LintReport(
        findings=sorted(findings),
        n_files=len(files),
        rules=tuple(sorted(known)),
        suppressions_used=used,
        parse_errors=parse_errors,
        selected=tuple(sorted(selected)),
    )
