"""Data model of the auditor: findings and parsed source files."""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass
from pathlib import Path


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Ordering is (path, line, col, rule), so sorted findings read like a
    compiler log. ``path`` is the path as the walker saw it (usually
    relative to the invocation directory) — the clickable display form —
    while scope matching uses the package-relative path of the
    :class:`SourceFile` the finding came from.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class SourceFile:
    """One parsed Python file, ready for the rules.

    Parameters
    ----------
    path:
        The filesystem path as discovered (display form for findings).
    rel:
        Package-relative POSIX path (``"sim/engine.py"``) used for
        per-rule scope matching and for locating the well-known modules
        cross-module rules read.
    text:
        Raw source text.
    tree:
        The parsed :mod:`ast` module tree.
    """

    path: Path
    rel: str
    text: str
    tree: ast.Module
