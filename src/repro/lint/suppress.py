"""Per-line suppressions: ``# repro: allow[RULE] — reason``.

A suppression silences matching findings on its own line — and *must*
carry a justification, because every allow is a vetted exception to an
invariant the auditor would otherwise enforce. The hygiene of the
mechanism itself is a rule (:data:`SUPPRESSION_RULE`, REP000): malformed
comments, unknown rule ids, missing justifications, and stale (unused)
suppressions are findings, so the allow list can only shrink or stay
honest.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.model import Finding, SourceFile

#: Pseudo-rule id for suppression hygiene; cannot itself be suppressed.
SUPPRESSION_RULE = "REP000"

_REPRO_COMMENT_RE = re.compile(r"#\s*repro:\s*(?P<body>.*)$")
_ALLOW_RE = re.compile(
    r"allow\[(?P<rules>[A-Za-z0-9,\s]+)\]\s*(?:(?:—|–|--|:)\s*)?"
    r"(?P<reason>.*)$"
)

#: The canonical syntax, quoted in diagnostics.
SYNTAX = "# repro: allow[RULE,...] — justification"


@dataclass
class Suppression:
    """One valid allow-comment: which rules it silences, and why."""

    line: int
    rules: tuple[str, ...]
    reason: str
    used: set[str] = field(default_factory=set)


def scan_suppressions(
    source: SourceFile, known_rules: frozenset[str]
) -> tuple[dict[int, Suppression], list[Finding]]:
    """Collect the file's suppressions plus REP000 hygiene findings.

    Only real ``COMMENT`` tokens are scanned (a docstring *describing*
    the syntax is not a suppression), so the scan tokenizes rather than
    greps.
    """
    suppressions: dict[int, Suppression] = {}
    findings: list[Finding] = []

    def hygiene(line: int, message: str) -> None:
        findings.append(
            Finding(str(source.path), line, 0, SUPPRESSION_RULE, message)
        )

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source.text).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return suppressions, findings  # ast already accepted the file
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        comment = _REPRO_COMMENT_RE.search(tok.string)
        if comment is None:
            continue
        line = tok.start[0]
        match = _ALLOW_RE.match(comment.group("body").strip())
        if match is None:
            hygiene(line, f"malformed repro comment; expected: {SYNTAX}")
            continue
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        reason = match.group("reason").strip()
        bad = [r for r in rules if r not in known_rules]
        if not rules or bad:
            hygiene(
                line,
                f"unknown rule id(s) {', '.join(bad) or '<none>'} in "
                f"suppression; known: {', '.join(sorted(known_rules))}",
            )
            continue
        if SUPPRESSION_RULE in rules:
            hygiene(line, f"{SUPPRESSION_RULE} (suppression hygiene) cannot "
                          "be suppressed")
            continue
        if not reason:
            hygiene(
                line,
                f"suppression of {', '.join(rules)} carries no justification; "
                f"write: {SYNTAX}",
            )
            continue
        suppressions[line] = Suppression(line, rules, reason)
    return suppressions, findings


def apply_suppressions(
    findings: list[Finding],
    by_path: dict[str, dict[int, Suppression]],
) -> list[Finding]:
    """Drop findings an allow-comment on their line covers; mark it used."""
    kept: list[Finding] = []
    for finding in findings:
        if finding.rule != SUPPRESSION_RULE:
            suppression = by_path.get(finding.path, {}).get(finding.line)
            if suppression is not None and finding.rule in suppression.rules:
                suppression.used.add(finding.rule)
                continue
        kept.append(finding)
    return kept


def unused_suppressions(
    by_path: dict[str, dict[int, Suppression]],
    selected: frozenset[str],
) -> list[Finding]:
    """REP000 findings for allows that silenced nothing.

    Rules outside the selected set are not judged — a ``--select``
    subset must not flag suppressions for the rules it skipped.
    """
    findings: list[Finding] = []
    for path, suppressions in by_path.items():
        for suppression in suppressions.values():
            stale = [
                r
                for r in suppression.rules
                if r in selected and r not in suppression.used
            ]
            if stale:
                findings.append(
                    Finding(
                        path,
                        suppression.line,
                        0,
                        SUPPRESSION_RULE,
                        f"unused suppression of {', '.join(stale)}: nothing "
                        "on this line violates it; delete the allow",
                    )
                )
    return findings
