"""The repo-specific rules: each guards one determinism invariant.

Every rule is a small AST pass registered in :data:`RULES`. File rules
implement :meth:`Rule.check` over one parsed module; project rules
(REP004) implement :meth:`ProjectRule.check_project` over the whole
scanned set, because the invariant they guard spans modules.

The rule ids are stable and documented in the README; suppressions name
them (``# repro: allow[REP002] — reason``).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator

from repro.lint.config import LintConfig
from repro.lint.model import Finding, SourceFile


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """One invariant, checked per file."""

    id: str = ""
    summary: str = ""

    def check(
        self, source: SourceFile, config: LintConfig
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            str(source.path),
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            self.id,
            message,
        )


class ProjectRule(Rule):
    """An invariant spanning modules; sees the whole scanned set."""

    def check(self, source: SourceFile, config: LintConfig) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, sources: list[SourceFile], config: LintConfig
    ) -> Iterator[Finding]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# REP001 — seed hygiene
# ----------------------------------------------------------------------

#: The modern, seedable numpy.random surface; everything else on
#: ``np.random`` is legacy global state.
_RNG_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


def _bind_finding(rule: Rule, source: SourceFile):
    def finding(node: ast.AST, message: str) -> Finding:
        return rule.finding(source, node, message)

    return finding


class SeedHygiene(Rule):
    """Simulation randomness must flow from seeded generators.

    The stdlib ``random`` module and the legacy ``np.random.*`` global
    state (``seed``/``rand``/``randint``/...) are process-wide: two
    cells sharing a worker would perturb each other, and content-keyed
    results would stop being a function of their request. Draw from a
    ``Generator`` handed down from ``SeedSequence.spawn`` or a seeded
    ``np.random.default_rng`` instead.
    """

    id = "REP001"
    summary = "no random module / legacy np.random global state in sim code"

    def check(self, source: SourceFile, config: LintConfig) -> Iterator[Finding]:
        finding = _bind_finding(self, source)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.name
                    if name == "random" or name.startswith("random."):
                        yield finding(
                            node,
                            f"import of the stdlib {name!r} module: its "
                            "global state breaks run determinism; draw from "
                            "a seeded np.random.Generator instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "random" or module.startswith("random."):
                    yield finding(
                        node,
                        "import from the stdlib 'random' module: draw from "
                        "a seeded np.random.Generator instead",
                    )
                elif module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _RNG_ALLOWED:
                            yield finding(
                                node,
                                f"'{alias.name}' is numpy legacy "
                                "global-state randomness; rngs must flow "
                                "from SeedSequence.spawn / seeded "
                                "default_rng",
                            )
            elif isinstance(node, ast.Attribute):
                chain = _dotted(node)
                if (
                    chain is not None
                    and chain.count(".") == 2
                    and chain.startswith(("np.random.", "numpy.random."))
                ):
                    leaf = chain.rsplit(".", 1)[1]
                    if leaf not in _RNG_ALLOWED:
                        yield finding(
                            node,
                            f"{chain} touches numpy's legacy global rng "
                            "state; rngs must flow from SeedSequence.spawn "
                            "/ seeded default_rng",
                        )


# ----------------------------------------------------------------------
# REP002 — wall-clock ban
# ----------------------------------------------------------------------

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)
_TIME_NAMES = frozenset(
    name.split(".", 1)[1] for name in _WALL_CLOCK if name.startswith("time.")
)


class WallClockBan(Rule):
    """Simulation and decision code must not read the wall clock.

    Results are a function of the request's content key; a wall-clock
    read smuggles in machine state the key cannot see. The simulated
    clock is the event queue's; the only sanctioned real-time readers
    are the telemetry subsystem and the orchestrator's retry/timeout
    machinery (both exempted by scope).
    """

    id = "REP002"
    summary = "no wall-clock reads in simulation/decision code"

    def check(self, source: SourceFile, config: LintConfig) -> Iterator[Finding]:
        finding = _bind_finding(self, source)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom):
                if (node.module or "") == "time":
                    for alias in node.names:
                        if alias.name in _TIME_NAMES:
                            yield finding(
                                node,
                                f"'from time import {alias.name}': wall-clock "
                                "reads are banned here; simulated time comes "
                                "from the event queue",
                            )
            elif isinstance(node, ast.Attribute):
                chain = _dotted(node)
                if chain is None:
                    continue
                for banned in _WALL_CLOCK:
                    if chain == banned or chain.endswith("." + banned):
                        yield finding(
                            node,
                            f"{chain} reads the wall clock; results must be "
                            "a pure function of the content key (obs/ and "
                            "the orchestrator are the sanctioned readers)",
                        )
                        break


# ----------------------------------------------------------------------
# REP003 — frozen-spec mutation
# ----------------------------------------------------------------------


class FrozenSpecMutation(Rule):
    """``object.__setattr__`` only belongs in ``__post_init__``.

    Frozen dataclasses are the immutability backbone of content-keyed
    caching; normalizing fields during ``__post_init__`` is the one
    sanctioned escape hatch. Anywhere else it silently mutates a spec
    that may already have been content-keyed.
    """

    id = "REP003"
    summary = "object.__setattr__ on frozen specs only inside __post_init__"

    def check(self, source: SourceFile, config: LintConfig) -> Iterator[Finding]:
        finding = _bind_finding(self, source)
        stack: list[str] = []
        hits: list[ast.Call] = []

        class Visitor(ast.NodeVisitor):
            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                stack.append(node.name)
                self.generic_visit(node)
                stack.pop()

            visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

            def visit_Call(self, node: ast.Call) -> None:
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "__setattr__"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "object"
                    and "__post_init__" not in stack
                ):
                    hits.append(node)
                self.generic_visit(node)

        Visitor().visit(source.tree)
        for hit in hits:
            yield finding(
                hit,
                "object.__setattr__ outside __post_init__ mutates a frozen "
                "spec after it may have been content-keyed; construct a new "
                "spec (dataclasses.replace) instead",
            )


# ----------------------------------------------------------------------
# REP004 — content-key coverage (cross-module)
# ----------------------------------------------------------------------


def _decorator_frozen(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        if isinstance(dec, ast.Call):
            name = _dotted(dec.func)
            if name in ("dataclass", "dataclasses.dataclass"):
                for kw in dec.keywords:
                    if (
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
    return False


class _SpecClass:
    def __init__(self, node: ast.ClassDef, source: SourceFile) -> None:
        self.node = node
        self.source = source
        self.frozen = _decorator_frozen(node)
        self.fields: list[tuple[str, str]] = []
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                annotation = ast.unparse(stmt.annotation)
                if "ClassVar" in annotation:
                    continue
                self.fields.append((stmt.target.id, annotation))


class ContentKeyCoverage(ProjectRule):
    """Every spec field must be reachable from the content key.

    The bug class this guards: a new knob lands on a spec dataclass but
    never reaches the request serialization, so two different
    experiments share a cache slot and the store silently serves stale
    results. Three structural checks make that impossible:

    * every spec class is a frozen dataclass *reachable* from the root
      class's field graph (so ``asdict`` serializes it),
    * the serializer is built on ``asdict(self)`` and only ever pops
      the declared cosmetic fields (labels), and
    * the training-key reduction only drops the declared
      evaluation-only fields on top of those.
    """

    id = "REP004"
    summary = "every spec field reachable from the content-key serialization"

    def check_project(
        self, sources: list[SourceFile], config: LintConfig
    ) -> Iterator[Finding]:
        ck = config.content_key
        by_rel = {source.rel: source for source in sources}
        spec_sources = [
            by_rel[rel] for rel in ck.spec_modules if rel in by_rel
        ]
        if len(spec_sources) == len(ck.spec_modules):
            yield from self._check_specs(spec_sources, config)
        training = by_rel.get(ck.training_module)
        if training is not None:
            yield from self._check_training(training, config)

    # -- spec graph + serializer ---------------------------------------

    def _check_specs(
        self, spec_sources: list[SourceFile], config: LintConfig
    ) -> Iterator[Finding]:
        ck = config.content_key
        classes: dict[str, _SpecClass] = {}
        for source in spec_sources:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    classes[node.name] = _SpecClass(node, source)

        root = classes.get(ck.root_class)
        for name in ck.required_classes:
            cls = classes.get(name)
            if cls is None:
                anchor = spec_sources[0]
                yield Finding(
                    str(anchor.path),
                    1,
                    0,
                    self.id,
                    f"required spec class {name!r} not found in "
                    f"{', '.join(ck.spec_modules)}",
                )
            elif not cls.frozen:
                yield Finding(
                    str(cls.source.path),
                    cls.node.lineno,
                    cls.node.col_offset,
                    self.id,
                    f"spec class {name} must be @dataclass(frozen=True): "
                    "mutable specs can drift after content-keying",
                )
        if root is None:
            return

        # Reachability over field annotations: an edge A -> B whenever a
        # field annotation of A names class B.
        word = {
            name: re.compile(rf"\b{re.escape(name)}\b") for name in classes
        }
        reachable = {ck.root_class}
        queue = [ck.root_class]
        while queue:
            current = classes.get(queue.pop())
            if current is None:
                continue
            for _, annotation in current.fields:
                for name, pattern in word.items():
                    if name not in reachable and pattern.search(annotation):
                        reachable.add(name)
                        queue.append(name)
        for name in ck.required_classes:
            cls = classes.get(name)
            if cls is not None and name not in reachable:
                yield Finding(
                    str(cls.source.path),
                    cls.node.lineno,
                    cls.node.col_offset,
                    self.id,
                    f"spec class {name} is not reachable from "
                    f"{ck.root_class}'s field graph: its fields never enter "
                    "the content key",
                )
        # Any *other* frozen dataclass defined beside the specs that the
        # root cannot reach is the same bug waiting to happen.
        for name, cls in classes.items():
            if (
                cls.frozen
                and cls.fields
                and name not in reachable
                and name not in ck.required_classes
            ):
                yield Finding(
                    str(cls.source.path),
                    cls.node.lineno,
                    cls.node.col_offset,
                    self.id,
                    f"frozen spec dataclass {name} is not reachable from "
                    f"{ck.root_class}; wire it into the spec graph or move "
                    "it out of the spec modules",
                )

        yield from self._check_serializer(root, config)

    def _check_serializer(
        self, root: _SpecClass, config: LintConfig
    ) -> Iterator[Finding]:
        ck = config.content_key
        serializer = None
        for stmt in root.node.body:
            if (
                isinstance(stmt, ast.FunctionDef)
                and stmt.name == ck.serializer
            ):
                serializer = stmt
        if serializer is None:
            yield Finding(
                str(root.source.path),
                root.node.lineno,
                root.node.col_offset,
                self.id,
                f"{ck.root_class} has no {ck.serializer}() serializer; the "
                "content key has no entry point to audit",
            )
            return
        calls_asdict = any(
            isinstance(node, ast.Call)
            and _dotted(node.func) in ("asdict", "dataclasses.asdict")
            for node in ast.walk(serializer)
        )
        if not calls_asdict:
            yield Finding(
                str(root.source.path),
                serializer.lineno,
                serializer.col_offset,
                self.id,
                f"{ck.serializer}() must build its payload with "
                "dataclasses.asdict(self): hand-rolled payloads silently "
                "omit new fields from the content key",
            )
        allowed = set(ck.cosmetic_fields)
        yield from self._check_pops(
            serializer,
            root.source,
            allowed,
            context=f"{ck.root_class}.{ck.serializer}",
            hint="only cosmetic label fields may leave the content key",
        )

    def _check_training(
        self, training: SourceFile, config: LintConfig
    ) -> Iterator[Finding]:
        ck = config.content_key
        function = None
        for node in training.tree.body:
            if (
                isinstance(node, ast.FunctionDef)
                and node.name == ck.training_function
            ):
                function = node
        if function is None:
            yield Finding(
                str(training.path),
                1,
                0,
                self.id,
                f"{ck.training_function}() not found in "
                f"{ck.training_module}: the training key has no entry point "
                "to audit",
            )
            return
        allowed = set(ck.cosmetic_fields) | set(ck.training_excluded)
        yield from self._check_pops(
            function,
            training,
            allowed,
            context=ck.training_function,
            hint="training keys may drop only declared evaluation-only "
            "fields",
        )

    def _check_pops(
        self,
        function: ast.FunctionDef,
        source: SourceFile,
        allowed: set[str],
        context: str,
        hint: str,
    ) -> Iterator[Finding]:
        for node in ast.walk(function):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "pop"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                name = node.args[0].value
                if name not in allowed:
                    yield Finding(
                        str(source.path),
                        node.lineno,
                        node.col_offset,
                        self.id,
                        f"{context} pops field {name!r} out of the key; "
                        f"{hint} ({', '.join(sorted(allowed))})",
                    )


# ----------------------------------------------------------------------
# REP005 — schema-literal drift
# ----------------------------------------------------------------------

_SCHEMA_KEYS = frozenset({"schema", "schema_version"})


class SchemaLiteralDrift(Rule):
    """Schema versions live in the canonical constants, nowhere else.

    A hardcoded schema integer (``"schema": 6``, ``record["schema"] ==
    6``, a shadow ``SCHEMA_VERSION = 6``) keeps working until the next
    bump, then silently serves or writes stale-schema records. Import
    the constant from its defining module instead.
    """

    id = "REP005"
    summary = "no hardcoded schema-version integers outside the constants"

    def check(self, source: SourceFile, config: LintConfig) -> Iterator[Finding]:
        finding = _bind_finding(self, source)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values):
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and key.value.lower() in _SCHEMA_KEYS
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, int)
                        and not isinstance(value.value, bool)
                    ):
                        yield finding(
                            value,
                            f'literal schema version {value.value} under key '
                            f'"{key.value}"; import the canonical constant '
                            "instead of hardcoding the integer",
                        )
            elif isinstance(node, ast.Compare):
                sides = [node.left, *node.comparators]
                ints = [
                    s
                    for s in sides
                    if isinstance(s, ast.Constant)
                    and isinstance(s.value, int)
                    and not isinstance(s.value, bool)
                ]
                mentions = any(
                    not isinstance(s, ast.Constant)
                    and "schema" in ast.unparse(s).lower()
                    for s in sides
                )
                if ints and mentions:
                    yield finding(
                        ints[0],
                        f"schema version compared against the literal "
                        f"{ints[0].value}; compare against the canonical "
                        "constant so bumps cannot drift",
                    )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                value = node.value
                if not (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, int)
                    and not isinstance(value.value, bool)
                ):
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and "schema" in target.id.lower()
                    ):
                        yield finding(
                            node,
                            f"shadow schema constant {target.id} = "
                            f"{value.value}; schema versions are defined "
                            "once, in their canonical module",
                        )


# ----------------------------------------------------------------------
# REP006 — unordered-set iteration
# ----------------------------------------------------------------------


def _set_bound_names(tree: ast.Module) -> frozenset[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        value = None
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
            annotation = ast.unparse(node.annotation).lower()
            if isinstance(target, ast.Name) and (
                annotation.startswith("set")
                or annotation.startswith("frozenset")
            ):
                names.add(target.id)
        if (
            target is not None
            and isinstance(target, ast.Name)
            and _is_set_expr(value, frozenset())
        ):
            names.add(target.id)
    return frozenset(names)


def _is_set_expr(node: ast.expr | None, set_names: frozenset[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    return isinstance(node, ast.Name) and node.id in set_names


class UnorderedSetIteration(Rule):
    """No bare iteration over sets in the deterministic hot path.

    Set iteration order depends on insertion history and hash
    randomization of the values involved; an event loop that walks a
    set can produce different (all individually "correct") schedules
    run to run. Iterate ``sorted(the_set)`` — the sort is the explicit
    order contract.
    """

    id = "REP006"
    summary = "no bare set/frozenset iteration in sim/core"

    def check(self, source: SourceFile, config: LintConfig) -> Iterator[Finding]:
        finding = _bind_finding(self, source)
        set_names = _set_bound_names(source.tree)
        message = (
            "iteration over an unordered set: the order is not a function "
            "of the content key; iterate sorted(...) instead"
        )
        for node in ast.walk(source.tree):
            if isinstance(node, ast.For) and _is_set_expr(
                node.iter, set_names
            ):
                yield finding(node.iter, message)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for comp in node.generators:
                    if _is_set_expr(comp.iter, set_names):
                        yield finding(comp.iter, message)


#: Registry, in id order. REP000 (suppression hygiene) is implemented in
#: :mod:`repro.lint.suppress` and always active alongside these.
RULES: tuple[Rule, ...] = (
    SeedHygiene(),
    WallClockBan(),
    FrozenSpecMutation(),
    ContentKeyCoverage(),
    SchemaLiteralDrift(),
    UnorderedSetIteration(),
)


def rules_by_id() -> dict[str, Rule]:
    return {rule.id: rule for rule in RULES}


def iter_rules() -> Iterable[Rule]:
    return RULES
