"""Scoped configuration for the determinism & invariant auditor.

Every rule guards an invariant that only holds in part of the tree —
seed hygiene matters in simulation code, not in the CLI; the telemetry
clock is *allowed* to read ``perf_counter`` — so each rule carries a
:class:`Scope` of package-relative path prefixes. The defaults encode
this repository's layout; tests override them to point rules at fixture
trees laid out the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Scope:
    """Package-relative path prefixes a rule applies to.

    ``include`` empty means "every file"; ``exclude`` always wins.
    Prefixes match POSIX relative paths (``"sim/"``, ``"obs/"``,
    ``"scenarios/orchestrator.py"``).
    """

    include: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()

    def matches(self, rel: str) -> bool:
        if self.include and not any(rel.startswith(p) for p in self.include):
            return False
        return not any(rel.startswith(p) for p in self.exclude)


#: Where each rule applies. REP001/REP006 guard the deterministic
#: simulation/decision path; REP002 exempts the telemetry clock
#: (``obs/``) and the sweep orchestrator's retry/timeout machinery,
#: which legitimately live in wall-clock time; REP005 exempts exactly
#: the modules that *define* the canonical schema constants.
DEFAULT_SCOPES: dict[str, Scope] = {
    "REP000": Scope(),
    "REP001": Scope(
        include=("sim/", "core/", "workload/", "faults/", "scenarios/")
    ),
    "REP002": Scope(exclude=("obs/", "scenarios/orchestrator.py")),
    "REP003": Scope(),
    "REP004": Scope(),
    "REP005": Scope(
        exclude=(
            "scenarios/store.py",
            "scenarios/checkpoints.py",
            "obs/telemetry.py",
        )
    ),
    "REP006": Scope(include=("sim/", "core/")),
}


@dataclass(frozen=True)
class ContentKeyConfig:
    """What REP004 (content-key coverage) audits, and where.

    The rule only runs when every ``spec_modules`` file is part of the
    linted set (so linting a single unrelated file never half-audits),
    and checks the ``training_module`` whenever that file is present.
    """

    #: Modules defining the frozen spec dataclasses that form the
    #: content-keyed scenario description.
    spec_modules: tuple[str, ...] = ("scenarios/specs.py", "faults/spec.py")
    #: The class whose serializer is the content key's single entry point.
    root_class: str = "ScenarioSpec"
    #: Its serializer method; must be built on ``asdict(self)`` so new
    #: fields enter the key by construction.
    serializer: str = "content_dict"
    #: Spec classes that must exist, be frozen, and be reachable from
    #: the root class's field graph.
    required_classes: tuple[str, ...] = (
        "ScenarioSpec",
        "SiteSpec",
        "WorkloadSpec",
        "TraceReplaySpec",
        "FaultSpec",
        "SiteOutageSpec",
    )
    #: The only fields the serializer may drop: labels that cannot
    #: affect simulated behavior.
    cosmetic_fields: tuple[str, ...] = ("name", "description")
    #: Fields a *null* (behaviorally inert) sub-spec may be normalized
    #: away under — ``content_dict`` may replace a null FaultSpec with
    #: None, which drops its (then provably inert) fields.
    nullable_fields: tuple[str, ...] = ("faults",)
    #: The training-key builder: a reduced view of the content key.
    training_module: str = "scenarios/checkpoints.py"
    training_function: str = "training_request"
    #: Fields the training key may drop on top of the cosmetic ones
    #: (evaluation-only lenses that never shape trained weights).
    training_excluded: tuple[str, ...] = ("tariff",)


@dataclass(frozen=True)
class LintConfig:
    """Full auditor configuration: rule scopes + cross-module targets."""

    scopes: dict[str, Scope] = field(default_factory=lambda: dict(DEFAULT_SCOPES))
    content_key: ContentKeyConfig = field(default_factory=ContentKeyConfig)

    def scope_for(self, rule_id: str) -> Scope:
        return self.scopes.get(rule_id, Scope())
