"""repro.lint — AST-based determinism & invariant auditor.

Every guarantee this reproduction stakes its results on — bit-identical
references, content-keyed caches, domain-tagged seed streams — is a
*convention* until something machine-checks it. This package is that
check: a rule registry plus AST visitors (stdlib :mod:`ast`, no
dependencies) enforcing the project's determinism invariants, run as
``repro lint [PATHS]`` and gated in CI.

Rules
-----
* **REP001** seed hygiene — no stdlib ``random`` / legacy ``np.random``
  global state in simulation code.
* **REP002** wall-clock ban — no ``time.time`` / ``datetime.now`` /
  ``perf_counter`` in simulation/decision code (``obs/`` and the
  orchestrator are scoped exemptions).
* **REP003** frozen-spec mutation — ``object.__setattr__`` only inside
  ``__post_init__``.
* **REP004** content-key coverage — every spec field reachable from the
  request/content-key serialization (cross-module).
* **REP005** schema-literal drift — no hardcoded schema-version
  integers outside the canonical constants.
* **REP006** unordered-set iteration — no bare set iteration in
  ``sim/`` / ``core/``.

Per-line suppressions require a justification::

    something_flagged()  # repro: allow[REP002] — reason it is safe here

and unjustified, malformed, or stale suppressions are findings
themselves (REP000).
"""

from repro.lint.config import ContentKeyConfig, LintConfig, Scope
from repro.lint.engine import LintReport, LintUsageError, run_lint
from repro.lint.model import Finding
from repro.lint.rules import RULES, iter_rules, rules_by_id
from repro.lint.suppress import SUPPRESSION_RULE

__all__ = [
    "RULES",
    "SUPPRESSION_RULE",
    "ContentKeyConfig",
    "Finding",
    "LintConfig",
    "LintReport",
    "LintUsageError",
    "Scope",
    "iter_rules",
    "rules_by_id",
    "run_lint",
]
