"""repro — reproduction of "A Hierarchical Framework of Cloud Resource
Allocation and Power Management Using Deep Reinforcement Learning"
(Liu et al., ICDCS 2017).

Subpackages
-----------
* :mod:`repro.nn` — pure-NumPy neural networks (dense / autoencoder /
  LSTM, Adam, gradient clipping).
* :mod:`repro.sim` — continuous-time, event-driven cluster simulator
  with power-managed servers.
* :mod:`repro.workload` — Google-trace I/O and synthetic Google-like
  workload generation.
* :mod:`repro.rl` — SMDP Q-learning, exploration policies, replay.
* :mod:`repro.core` — the paper's hierarchical framework: DRL global
  tier + LSTM/RL local tier, plus all baselines.
* :mod:`repro.harness` — experiment harness regenerating every table
  and figure of the paper's evaluation.
* :mod:`repro.scenarios` — named experiment scenarios (workload ×
  fleet × churn) plus a parallel, content-cached sweep orchestrator.
* :mod:`repro.cli` — ``python -m repro`` command-line entry point.
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
