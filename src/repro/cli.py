"""Command-line interface: regenerate paper experiments from a shell.

Usage::

    python -m repro table1   [--jobs N] [--servers 30,40] [--seed S]
    python -m repro fig8     [--jobs N] [--seed S] [--out FILE]
    python -m repro fig9     [--jobs N] [--seed S] [--out FILE]
    python -m repro fig10    [--jobs N] [--seed S] [--out FILE]
    python -m repro workload [--jobs N] [--seed S] [--out FILE]
    python -m repro systems
    python -m repro scenario list
    python -m repro scenario run   --name NAME [--system SYS] [--jobs N]
                                   [--shards S] [--workers W] [--warm]
                                   [--trace CSV...] [--sites N]
                                   [--federation POLICY] [--profile]
    python -m repro scenario sweep [--scenarios a,b] [--systems x,y]
                                   [--seeds 0,1] [--jobs N] [--workers W]
                                   [--resume] [--no-warm-start]
                                   [--series-out FILE] [--profile]
                                   [--cell-retries N] [--cell-timeout S]
                                   [--strict]
    python -m repro obs report FILE [--top N]
    python -m repro lint [PATHS...] [--json] [--select RULE,...]
                         [--list-rules]

Global flags (before the subcommand): ``--log-level LEVEL`` or ``-v`` /
``-vv`` route the package's stdlib logging to stderr at the chosen
level (WARNING by default).

``table1`` prints the paper-style summary table plus the recomputed
headline claims; the figure commands print (or write) the CSV series the
paper plots; ``workload`` generates and characterizes a synthetic trace
(optionally writing it as a canonical trace CSV); ``systems`` lists the
named systems; ``scenario`` drives the scenario suite — ``sweep`` fans
the (scenario × system × seed) grid out over a process pool, journals
each completed cell under ``.repro-cache/`` as it finishes (so a killed
sweep resumes with ``--resume``), trains each scenario's DRL policy once
and warm-starts its cells from the checkpoint blob, and can emit the
Fig-8-style per-system series (including cost/CO₂ when the scenario has
a tariff) with ``--series-out``. Failing cells are retried
(``--cell-retries``), optionally time-boxed (``--cell-timeout``), and
then quarantined — journaled to ``quarantine.jsonl`` while the sweep
carries on (``--strict`` restores fail-fast). ``scenario run --trace``
replays
recorded Google task-events files through any scenario; unsharded runs
journal their result exactly like a sweep cell would. ``--profile``
captures run telemetry (per-phase self-time breakdown, counters, rates),
writes it as ``telemetry.json`` under the cache dir, and ``obs report``
renders any such artifact. ``lint`` runs the AST-based determinism &
invariant auditor (:mod:`repro.lint`) over the given paths (default
``src/``): exit 0 clean, 1 on findings, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _add_common(parser: argparse.ArgumentParser, default_jobs: int) -> None:
    parser.add_argument("--jobs", type=int, default=default_jobs,
                        help=f"evaluation trace length (default {default_jobs})")
    parser.add_argument("--seed", type=int, default=0, help="workload/agent seed")
    parser.add_argument("--out", type=Path, default=None,
                        help="write output to this file instead of stdout")


def _emit(text: str, out: Path | None) -> None:
    if out is None:
        print(text)
    else:
        out.write_text(text + "\n")
        print(f"wrote {out}")


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.harness.claims import evaluate_claims
    from repro.harness.table1 import render_table1, run_table1

    sizes = tuple(int(s) for s in args.servers.split(","))
    rows = run_table1(n_jobs=args.jobs, cluster_sizes=sizes, seed=args.seed)
    text = render_table1(rows)
    for m in sizes:
        text += "\n" + evaluate_claims(rows, num_servers=m).summary()
    _emit(text, args.out)
    return 0


def _cmd_figure(args: argparse.Namespace, which: str) -> int:
    from repro.harness.figures import render_series_csv, run_figure8, run_figure9

    runner = run_figure8 if which == "fig8" else run_figure9
    figure = runner(n_jobs=args.jobs, seed=args.seed)
    text = (
        "# panel (a): accumulated latency\n"
        + render_series_csv(figure, "latency")
        + "\n# panel (b): energy\n"
        + render_series_csv(figure, "energy")
    )
    _emit(text, args.out)
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    from repro.harness.tradeoff import (
        frontier_savings,
        render_tradeoff_csv,
        run_tradeoff,
    )

    points = run_tradeoff(n_jobs=args.jobs, seed=args.seed)
    savings = frontier_savings(points, "hierarchical", "fixed")
    text = render_tradeoff_csv(points) + (
        f"\n# vs combined fixed-timeout frontier: latency saving "
        f"{savings['latency_saving']:+.1%}, energy saving "
        f"{savings['energy_saving']:+.1%}"
    )
    _emit(text, args.out)
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.workload.stats import characterize
    from repro.workload.synthetic import SyntheticTraceConfig, generate_trace
    from repro.workload.trace import write_trace_csv

    base = SyntheticTraceConfig()
    config = SyntheticTraceConfig(n_jobs=args.jobs, horizon=args.jobs / base.base_rate)
    jobs = generate_trace(config, seed=args.seed)
    print(characterize(jobs).summary())
    if args.out is not None:
        count = write_trace_csv(jobs, args.out)
        print(f"wrote {count} jobs to {args.out}")
    return 0


def _cmd_systems(args: argparse.Namespace) -> int:
    from repro.harness.report import format_table
    from repro.harness.runner import SYSTEM_DESCRIPTIONS

    text = format_table(
        ["System", "Description"],
        [[name, desc] for name, desc in SYSTEM_DESCRIPTIONS.items()],
    )
    _emit(text, args.out)
    return 0


def _split_csv(value: str) -> list[str]:
    return [item.strip() for item in value.split(",") if item.strip()]


def _progress_printer(line: str) -> None:
    """Live sweep progress: stderr, so ``--out``/stdout CSVs stay clean."""
    print(line, file=sys.stderr, flush=True)


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.scenarios import registry

    if args.action == "list":
        _emit(registry.scenario_catalog(), args.out)
        return 0

    if args.action == "run":
        import inspect
        from dataclasses import replace as dc_replace

        from repro.scenarios.orchestrator import run_cell
        from repro.scenarios.sharding import run_cell_sharded

        def _default(fn, param: str):
            return inspect.signature(fn).parameters[param].default

        name = args.name if args.name is not None else args.scenario
        if name is None or (
            args.name is not None
            and args.scenario is not None
            and args.name != args.scenario
        ):
            print("error: scenario run needs exactly one scenario name "
                  "(positional or --name)", file=sys.stderr)
            return 2
        spec = registry.get(name)
        if args.sites is not None:
            from repro.scenarios.specs import SiteSpec

            if args.sites < 1:
                print("error: --sites needs a positive site count",
                      file=sys.stderr)
                return 2
            if spec.sites:
                print(f"error: scenario {spec.name!r} is already federated; "
                      "--sites only replicates single-cluster scenarios",
                      file=sys.stderr)
                return 2
            # Replicate the scenario into N identical sites (each with
            # the scenario's fleet and tariff) under the requested
            # federation policy. Spec validation rejects combinations a
            # federation cannot carry (multi-class workloads, unknown
            # policies, churn windows, ...).
            try:
                spec = dc_replace(
                    spec,
                    sites=tuple(
                        SiteSpec(f"site{i}", fleet=spec.fleet, tariff=spec.tariff)
                        for i in range(args.sites)
                    ),
                    federation=(
                        args.federation if args.federation is not None
                        else "least-loaded" if args.sites > 1 else "home"
                    ),
                )
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        elif args.federation is not None and not spec.sites:
            print("error: --federation needs a federated scenario or --sites",
                  file=sys.stderr)
            return 2
        elif args.federation is not None:
            try:
                spec = dc_replace(spec, federation=args.federation)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        if args.profile and args.shards > 1:
            print("error: --profile needs the unsharded path (one telemetry "
                  "capture per run); drop --shards", file=sys.stderr)
            return 2
        if spec.sites and args.shards > 1:
            print("error: --shards does not compose with federated "
                  "scenarios yet", file=sys.stderr)
            return 2
        if spec.sites and len(spec.sites) > 1 and args.trace:
            print("error: --trace replays support a single site",
                  file=sys.stderr)
            return 2
        if args.trace:
            from repro.scenarios.specs import TraceReplaySpec, WorkloadSpec

            # Point any scenario at recorded trace files: reuse the
            # scenario's replay policy (window/compression/split) when it
            # has one, else replay with the defaults. The rest of the
            # workload recipe is dropped — the recording is the workload
            # — keeping only the train/eval sizing knobs.
            base = spec.workload.replay
            replay = (
                dc_replace(base, paths=tuple(args.trace))
                if base is not None
                else TraceReplaySpec(paths=tuple(args.trace))
            )
            spec = dc_replace(
                spec,
                workload=WorkloadSpec(
                    replay=replay,
                    train_fraction=spec.workload.train_fraction,
                    n_train_segments=spec.workload.n_train_segments,
                ),
            )
        checkpoint = None
        # The warm path must train exactly what the cold path would, so
        # read the protocol off the callee each branch actually uses:
        # both follow run_cell's defaults (run and sweep cells share
        # cache slots, so they must share the protocol too).
        cold = run_cell_sharded if args.shards > 1 else run_cell
        online_epochs = _default(cold, "online_epochs")
        local_epochs = _default(cold, "local_epochs")
        if args.warm:
            from repro.scenarios.checkpoints import (
                CheckpointStore,
                ensure_checkpoint,
                needs_policy,
            )

            if not needs_policy(spec, args.system):
                print(f"# {args.system} trains no policy; --warm ignored",
                      file=sys.stderr)
            else:
                store = CheckpointStore(args.cache_dir / "checkpoints")
                checkpoint = ensure_checkpoint(
                    store, spec, n_jobs=args.jobs, seed=args.seed,
                    online_epochs=online_epochs,
                    with_predictor=args.system == "hierarchical",
                )
        if args.shards > 1:
            cell = run_cell_sharded(
                spec, args.system, n_jobs=args.jobs, seed=args.seed,
                shards=args.shards, workers=args.workers,
                checkpoint=checkpoint,
            )
            extra = (
                f"shards: {cell['shards']} on {cell['workers_used']} workers  "
            )
        else:
            cell = run_cell(
                spec, args.system, n_jobs=args.jobs, seed=args.seed,
                checkpoint=checkpoint, profile=args.profile,
            )
            extra = ""
            # Journal the cell exactly as a sweep would, so later sweeps
            # (and --resume) reuse it as a cache hit. Sharded results
            # stay out of the store: they are a documented approximation
            # of the unsharded cell, not the same experiment.
            from repro.scenarios.orchestrator import SweepCell, journal_cell_result
            from repro.scenarios.store import ResultStore

            path = journal_cell_result(
                ResultStore(args.cache_dir),
                SweepCell(spec, args.system, args.seed),
                cell,
                n_jobs=args.jobs,
                online_epochs=online_epochs,
                local_epochs=local_epochs,
                warm_start=checkpoint is not None,
                profile=args.profile,
            )
            print(f"# journaled {path}", file=sys.stderr)
        lines = [
            f"scenario: {spec.name} ({spec.description})",
            f"system: {args.system}  servers: {cell['num_servers']}  "
            f"jobs: {cell['n_jobs_completed']}  {extra}"
            f"churn events: {cell['capacity_events']}",
            f"energy: {cell['energy_kwh']:.2f} kWh  "
            f"latency: {cell['acc_latency_s'] / 1e6:.3f}e6 s  "
            f"mean latency: {cell['mean_latency_s']:.1f} s  "
            f"power: {cell['average_power_w']:.2f} W",
        ]
        if spec.tariff is not None or any(s.tariff for s in spec.sites):
            lines.append(
                f"electricity: ${cell.get('cost_usd', 0.0):.2f}  "
                f"CO2: {cell.get('co2_kg', 0.0):.2f} kg"
            )
        if spec.faults is not None or any(s.faults for s in spec.sites):
            lines.append(
                f"resilience: failed {cell.get('failed_jobs', 0)}  "
                f"retries {cell.get('retries', 0)}  "
                f"goodput {cell.get('goodput', 1.0):.3f}  "
                f"availability {cell.get('availability', 1.0):.3f}"
            )
        if cell.get("sites"):
            lines.append(f"federation: {cell.get('federation', spec.federation)}")
            for site in cell["sites"]:
                line = (
                    f"  site {site['site']}: servers {site['num_servers']}  "
                    f"home {site['n_jobs_home']}  served "
                    f"{site['n_jobs_completed']}  "
                    f"energy {site['energy_kwh']:.2f} kWh  "
                    f"cost ${site['cost_usd']:.2f}  "
                    f"CO2 {site['co2_kg']:.2f} kg"
                )
                if site.get("availability", 1.0) < 1.0 or site.get(
                    "failed_jobs", 0
                ):
                    line += (
                        f"  failed {site['failed_jobs']}  "
                        f"avail {site['availability']:.3f}"
                    )
                lines.append(line)
        _emit("\n".join(lines), args.out)
        if args.profile and cell.get("telemetry"):
            from repro.obs import render_report, write_snapshot

            tel_path = write_snapshot(
                cell["telemetry"], args.cache_dir / "telemetry.json"
            )
            print(f"# telemetry -> {tel_path}", file=sys.stderr)
            print(render_report(cell["telemetry"], top=args.top))
        return 0

    # action == "sweep"
    from repro.scenarios.orchestrator import detected_cpus, sweep
    from repro.scenarios.store import ResultStore

    if args.resume:
        if args.no_cache or args.force:
            print("error: --resume needs the journal; it conflicts with "
                  "--no-cache and --force", file=sys.stderr)
            return 2
        if len(ResultStore(args.cache_dir)) == 0:
            print(f"error: --resume found no journaled cells under "
                  f"{args.cache_dir}; nothing to resume", file=sys.stderr)
            return 2
    report = sweep(
        scenarios=_split_csv(args.scenarios) if args.scenarios else None,
        systems=tuple(_split_csv(args.systems)),
        seeds=tuple(int(s) for s in _split_csv(args.seeds)),
        n_jobs=args.jobs,
        workers=args.workers,
        store=ResultStore(args.cache_dir),
        use_cache=not args.no_cache,
        force=args.force,
        warm_start=not args.no_warm_start,
        progress=_progress_printer,
        profile=args.profile,
        cell_retries=args.cell_retries,
        cell_timeout=args.cell_timeout,
        on_error="raise" if args.strict else "quarantine",
    )
    if args.resume and report.n_cached == 0:
        print("warning: --resume matched no journaled cells — the grid or "
              "protocol differs from the crashed run", file=sys.stderr)
    text = report.render_csv() if args.csv else report.render_table()
    text += (
        f"\n# {len(report.results)} cells: {report.n_cached} cached, "
        f"{report.n_computed} computed"
    )
    if report.n_quarantined:
        text += f", {report.n_quarantined} quarantined"
    _emit(text, args.out)
    if args.series_out is not None:
        args.series_out.write_text(report.render_series_csv() + "\n")
        print(f"wrote {args.series_out}")
    # Stdout-only (kept out of --out artifacts so sweep outputs stay
    # byte-identical across worker counts): the parallelism actually used
    # — the pool is capped at the number of cells that needed computing.
    cpus = detected_cpus()
    limit = args.workers if args.workers is not None else cpus
    if report.n_computed:
        pool = max(1, min(limit, report.n_computed))
        print(f"# {cpus} CPUs detected for this process; pool size {pool}")
    else:
        print(f"# {cpus} CPUs detected for this process; all cells cached, no pool")
    if args.profile:
        # Stdout-only like the pool line: timings vary run to run, so
        # they stay out of --out artifacts.
        rendered = report.render_telemetry()
        if rendered is not None:
            print(rendered)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import LintUsageError, iter_rules, run_lint
    from repro.lint.suppress import SUPPRESSION_RULE, SYNTAX

    if args.list_rules:
        from repro.harness.report import format_table

        rows = [[SUPPRESSION_RULE, f"suppression hygiene ({SYNTAX})"]]
        rows += [[rule.id, rule.summary] for rule in iter_rules()]
        _emit(format_table(["Rule", "Invariant"], rows), args.out)
        return 0
    paths = args.paths if args.paths else [Path("src")]
    select = _split_csv(args.select) if args.select else None
    try:
        report = run_lint(paths, select=select)
    except LintUsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _emit(report.render_json() if args.json else report.render_text(), args.out)
    return report.exit_code


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import load_snapshot, render_report

    if args.action == "report":
        try:
            snapshot = load_snapshot(args.file)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        _emit(render_report(snapshot, top=args.top), args.out)
        return 0
    raise AssertionError(f"unhandled obs action {args.action!r}")


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from Liu et al., ICDCS 2017.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        help="stdlib logging level for the repro package "
             "(DEBUG, INFO, WARNING, ERROR, CRITICAL)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="increase log verbosity (-v INFO, -vv DEBUG); "
             "--log-level wins when both are given",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table1 = sub.add_parser("table1", help="Table I + headline claims")
    _add_common(p_table1, default_jobs=3000)
    p_table1.add_argument("--servers", default="30,40",
                          help="comma-separated cluster sizes (default 30,40)")

    for name, jobs in (("fig8", 3000), ("fig9", 3000), ("fig10", 1500)):
        _add_common(sub.add_parser(name, help=f"{name} series"), default_jobs=jobs)

    p_wl = sub.add_parser("workload", help="generate/characterize a trace")
    _add_common(p_wl, default_jobs=5000)

    p_sys = sub.add_parser("systems", help="list named systems")
    p_sys.add_argument("--out", type=Path, default=None)

    p_sc = sub.add_parser("scenario", help="scenario suite + parallel sweeps")
    sc_sub = p_sc.add_subparsers(dest="action", required=True)

    sc_list = sc_sub.add_parser("list", help="catalog of registered scenarios")
    sc_list.add_argument("--out", type=Path, default=None)

    sc_run = sc_sub.add_parser("run", help="run one scenario × system cell")
    sc_run.add_argument("scenario", nargs="?", default=None, metavar="NAME",
                        help="scenario name (positional form of --name)")
    sc_run.add_argument("--name", default=None, help="scenario name")
    sc_run.add_argument("--system", default="round-robin",
                        help="named system (default round-robin)")
    sc_run.add_argument("--trace", nargs="+", default=None, metavar="CSV",
                        help="replay these trace files/globs instead of the "
                             "scenario's workload (Google task-events format "
                             "unless the scenario's replay spec says "
                             "otherwise); e.g. real cluster-usage part files")
    sc_run.add_argument("--sites", type=int, default=None, metavar="N",
                        help="replicate a single-cluster scenario into a "
                             "federation of N identical sites (each with the "
                             "scenario's fleet and tariff)")
    sc_run.add_argument("--federation", default=None, metavar="POLICY",
                        help="federation-tier dispatch policy (home, "
                             "least-loaded, price-greedy, carbon-greedy, "
                             "drl); default for --sites N>1: least-loaded")
    sc_run.add_argument("--shards", type=int, default=1,
                        help="split the evaluation trace into this many "
                             "warm-handoff segments run in parallel "
                             "(default 1 = unsharded)")
    sc_run.add_argument("--workers", type=int, default=None,
                        help="process-pool size for sharded runs "
                             "(default: detected CPU count)")
    sc_run.add_argument("--warm", action="store_true",
                        help="warm-start DRL systems from the policy "
                             "checkpoint store (training on first use)")
    sc_run.add_argument("--cache-dir", type=Path, default=Path(".repro-cache"),
                        help="cache root holding checkpoint blobs "
                             "(default .repro-cache)")
    sc_run.add_argument("--profile", action="store_true",
                        help="capture run telemetry: print the per-phase "
                             "self-time breakdown and write telemetry.json "
                             "under the cache dir")
    sc_run.add_argument("--top", type=int, default=None, metavar="N",
                        help="limit the --profile span table to the top N "
                             "phases by self time")
    _add_common(sc_run, default_jobs=600)

    sc_sweep = sc_sub.add_parser(
        "sweep", help="parallel (scenario x system x seed) grid with caching"
    )
    sc_sweep.add_argument("--scenarios", default=None,
                          help="comma-separated names (default: all registered)")
    sc_sweep.add_argument("--systems", default="round-robin,drl-only,hierarchical",
                          help="comma-separated system names")
    sc_sweep.add_argument("--seeds", default="0", help="comma-separated seeds")
    sc_sweep.add_argument("--jobs", type=int, default=600,
                          help="evaluation trace length per cell (default 600)")
    sc_sweep.add_argument("--workers", type=int, default=None,
                          help="process-pool size (default: CPU count; 1 = serial)")
    sc_sweep.add_argument("--cache-dir", type=Path, default=Path(".repro-cache"),
                          help="result-store directory (default .repro-cache)")
    sc_sweep.add_argument("--no-cache", action="store_true",
                          help="neither read nor write the result store")
    sc_sweep.add_argument("--force", action="store_true",
                          help="recompute every cell, overwriting the cache")
    sc_sweep.add_argument("--resume", action="store_true",
                          help="continue a crashed/killed sweep: requires a "
                               "non-empty journal, replays it, and computes "
                               "only the missing cells (conflicts with "
                               "--no-cache/--force)")
    sc_sweep.add_argument("--no-warm-start", action="store_true",
                          help="train each DRL cell's policy in-cell instead "
                               "of once per training group via checkpoints")
    sc_sweep.add_argument("--csv", action="store_true",
                          help="emit CSV instead of the aligned table")
    sc_sweep.add_argument("--series-out", type=Path, default=None,
                          help="also write Fig-8-style accumulated "
                               "latency/energy series (long-form CSV)")
    sc_sweep.add_argument("--profile", action="store_true",
                          help="capture telemetry per computed cell, roll it "
                               "up, and write telemetry.json to the cache dir")
    sc_sweep.add_argument("--cell-retries", type=int, default=1, metavar="N",
                          help="extra attempts per failing cell/training "
                               "before quarantining it (default 1; 0 = none)")
    sc_sweep.add_argument("--cell-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="per-cell wall-clock budget enforced in the "
                               "worker (SIGALRM); overruns fail like any "
                               "other cell error (default: none)")
    sc_sweep.add_argument("--strict", action="store_true",
                          help="fail the sweep on the first exhausted cell "
                               "instead of quarantining it and sweeping on")
    sc_sweep.add_argument("--out", type=Path, default=None)

    p_obs = sub.add_parser("obs", help="telemetry artifacts (profiled runs)")
    obs_sub = p_obs.add_subparsers(dest="action", required=True)
    obs_report = obs_sub.add_parser(
        "report", help="render a telemetry.json as a self-time breakdown"
    )
    obs_report.add_argument("file", type=Path, metavar="FILE",
                            help="telemetry snapshot (telemetry.json)")
    obs_report.add_argument("--top", type=int, default=None, metavar="N",
                            help="show only the top N spans by self time")
    obs_report.add_argument("--out", type=Path, default=None)

    p_lint = sub.add_parser(
        "lint", help="AST-based determinism & invariant auditor"
    )
    p_lint.add_argument("paths", nargs="*", type=Path, metavar="PATH",
                        help="files or directories to audit (default: src/)")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the machine-readable JSON report")
    p_lint.add_argument("--select", default=None, metavar="RULE,...",
                        help="comma-separated rule ids to run "
                             "(default: all; REP000 is always implied)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="list the rule ids and the invariant each guards")
    p_lint.add_argument("--out", type=Path, default=None,
                        help="write the report to this file instead of stdout")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.obs import configure_logging

    try:
        configure_logging(args.log_level, args.verbose)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.command == "table1":
        return _cmd_table1(args)
    if args.command in ("fig8", "fig9"):
        return _cmd_figure(args, args.command)
    if args.command == "fig10":
        return _cmd_fig10(args)
    if args.command == "workload":
        return _cmd_workload(args)
    if args.command == "systems":
        return _cmd_systems(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "lint":
        return _cmd_lint(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
