"""Command-line interface: regenerate paper experiments from a shell.

Usage::

    python -m repro table1   [--jobs N] [--servers 30,40] [--seed S]
    python -m repro fig8     [--jobs N] [--seed S] [--out FILE]
    python -m repro fig9     [--jobs N] [--seed S] [--out FILE]
    python -m repro fig10    [--jobs N] [--seed S] [--out FILE]
    python -m repro workload [--jobs N] [--seed S] [--out FILE]

``table1`` prints the paper-style summary table plus the recomputed
headline claims; the figure commands print (or write) the CSV series the
paper plots; ``workload`` generates and characterizes a synthetic trace
(optionally writing it as a canonical trace CSV).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _add_common(parser: argparse.ArgumentParser, default_jobs: int) -> None:
    parser.add_argument("--jobs", type=int, default=default_jobs,
                        help=f"evaluation trace length (default {default_jobs})")
    parser.add_argument("--seed", type=int, default=0, help="workload/agent seed")
    parser.add_argument("--out", type=Path, default=None,
                        help="write output to this file instead of stdout")


def _emit(text: str, out: Path | None) -> None:
    if out is None:
        print(text)
    else:
        out.write_text(text + "\n")
        print(f"wrote {out}")


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.harness.claims import evaluate_claims
    from repro.harness.table1 import render_table1, run_table1

    sizes = tuple(int(s) for s in args.servers.split(","))
    rows = run_table1(n_jobs=args.jobs, cluster_sizes=sizes, seed=args.seed)
    text = render_table1(rows)
    for m in sizes:
        text += "\n" + evaluate_claims(rows, num_servers=m).summary()
    _emit(text, args.out)
    return 0


def _cmd_figure(args: argparse.Namespace, which: str) -> int:
    from repro.harness.figures import render_series_csv, run_figure8, run_figure9

    runner = run_figure8 if which == "fig8" else run_figure9
    figure = runner(n_jobs=args.jobs, seed=args.seed)
    text = (
        "# panel (a): accumulated latency\n"
        + render_series_csv(figure, "latency")
        + "\n# panel (b): energy\n"
        + render_series_csv(figure, "energy")
    )
    _emit(text, args.out)
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    from repro.harness.tradeoff import frontier_savings, render_tradeoff_csv, run_tradeoff

    points = run_tradeoff(n_jobs=args.jobs, seed=args.seed)
    savings = frontier_savings(points, "hierarchical", "fixed")
    text = render_tradeoff_csv(points) + (
        f"\n# vs combined fixed-timeout frontier: latency saving "
        f"{savings['latency_saving']:+.1%}, energy saving "
        f"{savings['energy_saving']:+.1%}"
    )
    _emit(text, args.out)
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.workload.stats import characterize
    from repro.workload.synthetic import SyntheticTraceConfig, generate_trace
    from repro.workload.trace import write_trace_csv

    base = SyntheticTraceConfig()
    config = SyntheticTraceConfig(n_jobs=args.jobs, horizon=args.jobs / base.base_rate)
    jobs = generate_trace(config, seed=args.seed)
    print(characterize(jobs).summary())
    if args.out is not None:
        count = write_trace_csv(jobs, args.out)
        print(f"wrote {count} jobs to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from Liu et al., ICDCS 2017.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table1 = sub.add_parser("table1", help="Table I + headline claims")
    _add_common(p_table1, default_jobs=3000)
    p_table1.add_argument("--servers", default="30,40",
                          help="comma-separated cluster sizes (default 30,40)")

    for name, jobs in (("fig8", 3000), ("fig9", 3000), ("fig10", 1500)):
        _add_common(sub.add_parser(name, help=f"{name} series"), default_jobs=jobs)

    p_wl = sub.add_parser("workload", help="generate/characterize a trace")
    _add_common(p_wl, default_jobs=5000)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        return _cmd_table1(args)
    if args.command in ("fig8", "fig9"):
        return _cmd_figure(args, args.command)
    if args.command == "fig10":
        return _cmd_fig10(args)
    if args.command == "workload":
        return _cmd_workload(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
