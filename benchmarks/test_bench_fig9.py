"""Experiment E4 — Fig. 9 (M = 40).

Same panels as Fig. 8 on the larger cluster. The paper's observation:
round-robin's energy growth rate *increases* with M (idle servers burn
power), while the DRL-based frameworks' energy stays roughly flat — the
per-job latency behaviour barely changes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_artifact
from repro.harness.figures import render_series_csv, run_figure8, run_figure9


@pytest.fixture(scope="module")
def fig9(bench_jobs, bench_seed):
    return run_figure9(n_jobs=bench_jobs, seed=bench_seed)


def test_bench_fig9(benchmark, fig9, out_dir):
    save_artifact(out_dir, "fig9a_latency.csv", render_series_csv(fig9, "latency"))
    save_artifact(out_dir, "fig9b_energy.csv", render_series_csv(fig9, "energy"))
    benchmark.pedantic(
        lambda: render_series_csv(fig9, "energy"), rounds=3, iterations=1
    )

    # Shape assertions (repeated standalone below for plain pytest runs).
    lat_finals = {name: pts[-1][1] for name, pts in fig9.latency.items()}
    eng_finals = {name: pts[-1][1] for name, pts in fig9.energy.items()}
    assert lat_finals["round-robin"] == min(lat_finals.values())
    assert eng_finals["round-robin"] == max(eng_finals.values())


def test_shape_round_robin_extremes_m40(fig9):
    lat_finals = {name: points[-1][1] for name, points in fig9.latency.items()}
    eng_finals = {name: points[-1][1] for name, points in fig9.energy.items()}
    assert lat_finals["round-robin"] == min(lat_finals.values())
    assert eng_finals["round-robin"] == max(eng_finals.values())


def test_round_robin_energy_scales_with_m(bench_jobs, bench_seed, fig9):
    """Paper Sec. VII-B: round-robin energy grows with cluster size while
    the DRL frameworks' energy stays roughly constant."""
    fig8 = run_figure8(
        n_jobs=max(bench_jobs // 3, 500),
        seed=bench_seed,
        systems=("round-robin",),
    )
    fig9_small = run_figure9(
        n_jobs=max(bench_jobs // 3, 500),
        seed=bench_seed,
        systems=("round-robin",),
    )
    e30 = fig8.energy["round-robin"][-1][1]
    e40 = fig9_small.energy["round-robin"][-1][1]
    assert e40 > e30 * 1.1
