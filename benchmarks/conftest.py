"""Shared configuration for the benchmark harness.

Every table and figure of the paper's evaluation has a bench module here.
Scale knobs (environment variables):

* ``REPRO_BENCH_JOBS`` — evaluation-trace length (default 3000; the paper
  uses 95 000 — set that for a full-scale run, it takes tens of minutes).
* ``REPRO_BENCH_SEED`` — workload/agent seed (default 0).
* ``REPRO_BENCH_OUT`` — directory for rendered tables/CSV artifacts
  (default ``benchmarks/results``).

Benchmarks print the paper-style tables to stdout (run pytest with ``-s``
to see them) and always write them to the output directory.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "3000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
OUT_DIR = Path(os.environ.get("REPRO_BENCH_OUT", Path(__file__).parent / "results"))


@pytest.fixture(scope="session")
def bench_jobs() -> int:
    return BENCH_JOBS


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR


def save_artifact(out_dir: Path, name: str, text: str) -> None:
    """Write a rendered table/CSV and echo it to stdout."""
    path = out_dir / name
    path.write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)
