"""Experiment E8 — ablations of the design choices DESIGN.md calls out.

Not a paper table; these benches quantify the load-bearing pieces of the
architecture on our substrate:

* **A1** — autoencoder + weight-shared Sub-Q (Fig. 6) versus the paper's
  strawman, a flat feed-forward Q-network over the full state;
* **A2** — the number of server groups K (paper: 2–4);
* **A3** — the Markov-repair state features (queue depth, on/off bit);
* **A4** — shared versus strictly per-server (paper-faithful) DPM
  Q-learners in the local tier.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.conftest import save_artifact
from repro.core.config import ExperimentConfig, GlobalTierConfig
from repro.core.global_tier import DRLGlobalBroker
from repro.core.hierarchical import HierarchicalSystem, _make_encoder
from repro.core.baselines import ImmediateSleepPolicy
from repro.core.qnetwork import FlatQNetwork
from repro.harness.report import format_table
from repro.harness.runner import make_system, run_system, train_global_prototype
from repro.harness.table1 import default_config, make_traces


@pytest.fixture(scope="module")
def ablation_scale(bench_jobs):
    return max(bench_jobs // 2, 500)


@pytest.fixture(scope="module")
def traces(ablation_scale, bench_seed):
    return make_traces(ablation_scale, 30, bench_seed)


def _evaluate(system, eval_jobs):
    result = run_system(system, eval_jobs)
    return result.energy_kwh, result.mean_latency


def test_bench_ablation_architecture(benchmark, traces, out_dir, bench_seed):
    """A1: hierarchical Q-network vs flat feed-forward Q-network."""
    eval_jobs, train_traces = traces
    rows = []

    config = default_config(30, seed=bench_seed)
    proto = train_global_prototype(config, train_traces)
    hier_system = HierarchicalSystem(
        "drl-only", proto, ImmediateSleepPolicy(), config, initially_on=False
    )
    e, lat = _evaluate(hier_system, eval_jobs)
    rows.append(
        ["fig6-hierarchical", proto.qnet.num_parameters(), f"{e:.2f}", f"{lat:.0f}"]
    )

    import numpy as np

    flat_broker = DRLGlobalBroker(
        _make_encoder(config),
        config.global_tier,
        qnetwork=FlatQNetwork(
            _make_encoder(config), rng=np.random.default_rng(bench_seed)
        ),
        rng=np.random.default_rng(bench_seed),
    )
    flat_system = HierarchicalSystem(
        "drl-only-flat", flat_broker, ImmediateSleepPolicy(), config, initially_on=False
    )
    for trace in train_traces:  # same online training budget
        flat_system.run([j.copy() for j in trace])
        flat_system.run([j.copy() for j in trace])
    e, lat = _evaluate(flat_system, eval_jobs)
    rows.append(
        ["flat-mlp", flat_broker.qnet.num_parameters(), f"{e:.2f}", f"{lat:.0f}"]
    )

    text = format_table(
        ["architecture", "params", "energy kWh", "mean latency s"], rows
    )
    save_artifact(out_dir, "ablation_architecture.txt", text)
    benchmark.pedantic(
        lambda: proto.qnet.predict(
            np.random.default_rng(0).uniform(size=(32, proto.encoder.state_dim))
        ),
        rounds=10,
        iterations=3,
    )


def test_bench_ablation_groups(benchmark, traces, out_dir, bench_seed):
    """A2: K in {2, 3, 5} server groups (M = 30)."""
    eval_jobs, train_traces = traces
    rows = []
    for k in (2, 3, 5):
        config = ExperimentConfig(
            num_servers=30,
            global_tier=GlobalTierConfig(num_groups=k),
            seed=bench_seed,
        )
        system = make_system("drl-only", config, train_traces)
        e, lat = _evaluate(system, eval_jobs)
        rows.append([k, system.broker.qnet.num_parameters(), f"{e:.2f}", f"{lat:.0f}"])
    text = format_table(["K", "params", "energy kWh", "mean latency s"], rows)
    save_artifact(out_dir, "ablation_groups.txt", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_ablation_state_features(benchmark, traces, out_dir, bench_seed):
    """A3: with/without the queue-depth and on/off state features."""
    eval_jobs, train_traces = traces
    rows = []
    for label, queue, power in (
        ("paper-state (util only)", False, False),
        ("+on/off bit", False, True),
        ("+queue depth (full)", True, True),
    ):
        config = replace(
            default_config(30, seed=bench_seed),
            global_tier=replace(
                default_config(30).global_tier,
                include_queue_state=queue,
                include_power_state=power,
            ),
        )
        system = make_system("drl-only", config, train_traces)
        e, lat = _evaluate(system, eval_jobs)
        rows.append([label, f"{e:.2f}", f"{lat:.0f}"])
    text = format_table(["state features", "energy kWh", "mean latency s"], rows)
    save_artifact(out_dir, "ablation_state.txt", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bench_ablation_dpm_learner_sharing(benchmark, traces, out_dir, bench_seed):
    """A4: shared vs per-server (paper-distributed) local-tier learners."""
    eval_jobs, train_traces = traces
    config = default_config(30, seed=bench_seed)
    proto = train_global_prototype(config, train_traces)
    rows = []
    for label, shared in (("shared-learner", True), ("per-server (paper)", False)):
        system = make_system(
            "hierarchical",
            config,
            train_traces,
            global_prototype=proto,
            shared_dpm_learner=shared,
        )
        e, lat = _evaluate(system, eval_jobs)
        rows.append([label, f"{e:.2f}", f"{lat:.0f}"])
    text = format_table(["local-tier learner", "energy kWh", "mean latency s"], rows)
    save_artifact(out_dir, "ablation_dpm.txt", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
