"""Experiment E6 — scenario sweep throughput.

Smoke-benchmarks the orchestrator on a small (scenario × system) grid:

* per-scenario wall time for one cell (the unit of parallel work);
* parallel speedup of the full grid versus serial execution, which
  should approach min(grid size, cores) for these independent cells;
* cached re-run time, which should be effectively zero.

Scale with ``REPRO_BENCH_SCENARIO_JOBS`` (default 200 jobs per cell —
the grid retrains nothing DRL by default, so cells are simulation-bound).
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import save_artifact
from repro.harness.report import format_table
from repro.scenarios import registry
from repro.scenarios.checkpoints import CheckpointStore
from repro.scenarios.orchestrator import detected_cpus, run_cell, sweep
from repro.scenarios.sharding import run_cell_sharded
from repro.scenarios.store import ResultStore

SCENARIO_JOBS = int(os.environ.get("REPRO_BENCH_SCENARIO_JOBS", "200"))
#: Non-learning systems keep the bench about orchestration, not training.
BENCH_SYSTEMS = ("round-robin", "packing")
#: Cell size for the warm-start bench (DRL cells: training dominates).
WARM_JOBS = int(os.environ.get("REPRO_BENCH_WARM_JOBS", "150"))


@pytest.fixture(scope="module")
def sweep_kwargs(bench_seed):
    return dict(
        scenarios=list(registry.names()),
        systems=BENCH_SYSTEMS,
        seeds=(bench_seed,),
        n_jobs=SCENARIO_JOBS,
    )


def test_bench_single_cells(out_dir, bench_seed):
    """Wall time of one cell per scenario (round-robin reference system)."""
    rows = []
    for name in registry.names():
        t0 = time.perf_counter()
        result = run_cell(name, "round-robin", n_jobs=SCENARIO_JOBS, seed=bench_seed)
        elapsed = time.perf_counter() - t0
        rows.append(
            [
                name,
                result["n_jobs_offered"],
                f"{elapsed:.2f}",
                f"{result['energy_kwh']:.2f}",
                f"{result['mean_latency_s']:.1f}",
            ]
        )
    text = format_table(
        ["Scenario", "Jobs", "Wall (s)", "Energy (kWh)", "Mean lat (s)"], rows
    )
    save_artifact(out_dir, "bench_scenario_cells.txt", text)


def test_bench_parallel_speedup(out_dir, sweep_kwargs):
    """Serial vs parallel sweep of the full builtin grid (no cache)."""
    t0 = time.perf_counter()
    serial = sweep(workers=1, use_cache=False, **sweep_kwargs)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = sweep(workers=None, use_cache=False, **sweep_kwargs)
    t_parallel = time.perf_counter() - t0

    assert serial.results == parallel.results, "parallel must bit-match serial"
    cells = len(serial.results)
    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    text = "\n".join(
        [
            f"grid cells: {cells} ({len(registry.names())} scenarios x "
            f"{len(BENCH_SYSTEMS)} systems), {SCENARIO_JOBS} jobs/cell",
            f"serial:   {t_serial:.2f} s ({t_serial / cells:.2f} s/cell)",
            f"parallel: {t_parallel:.2f} s with "
            f"{detected_cpus()} CPUs detected for this process",
            f"speedup:  {speedup:.2f}x",
        ]
    )
    save_artifact(out_dir, "bench_scenario_sweep.txt", text)


def test_bench_sharded_cell(out_dir, bench_seed):
    """One large cell, unsharded vs trace-sharded over the worker pool.

    With >= 2 usable CPUs the sharded run must beat the unsharded run on
    wall clock (the whole point of sharding a single cell); on one CPU
    the timing line is still recorded but the speedup is not asserted.
    The cell is sized (default 12000 jobs, ~1.5 s unsharded) so the pool
    spin-up cost cannot mask the win, and a losing first measurement is
    re-timed once before judging (shared runners are noisy).
    """
    n_jobs = int(os.environ.get("REPRO_BENCH_SHARD_JOBS", "12000"))
    shards = 4

    def time_unsharded():
        t0 = time.perf_counter()
        result = run_cell(
            "paper-default", "round-robin", n_jobs=n_jobs, seed=bench_seed
        )
        return time.perf_counter() - t0, result

    def time_sharded():
        t0 = time.perf_counter()
        result = run_cell_sharded(
            "paper-default", "round-robin", n_jobs=n_jobs, seed=bench_seed,
            shards=shards,
        )
        return time.perf_counter() - t0, result

    t_unsharded, unsharded = time_unsharded()
    t_sharded, sharded = time_sharded()
    cpus = detected_cpus()
    if cpus >= 2 and sharded["workers_used"] >= 2 and t_sharded >= t_unsharded:
        t_unsharded = min(t_unsharded, time_unsharded()[0])
        t_sharded = min(t_sharded, time_sharded()[0])

    assert sharded["n_jobs_completed"] == unsharded["n_jobs_completed"]
    speedup = t_unsharded / t_sharded if t_sharded > 0 else float("inf")
    text = "\n".join(
        [
            f"cell: paper-default x round-robin, {n_jobs} jobs, "
            f"{shards} shards, {cpus} CPUs detected",
            f"unsharded: {t_unsharded:.2f} s",
            f"sharded:   {t_sharded:.2f} s ({sharded['workers_used']} workers)",
            f"speedup:   {speedup:.2f}x",
            f"power delta: "
            "{:.1%}".format(
                abs(sharded["average_power_w"] - unsharded["average_power_w"])
                / unsharded["average_power_w"]
            ),
        ]
    )
    save_artifact(out_dir, "bench_sharded_cell.txt", text)
    if cpus >= 2 and sharded["workers_used"] >= 2:
        assert t_sharded < t_unsharded, (
            f"sharded cell ({t_sharded:.2f} s) must beat unsharded "
            f"({t_unsharded:.2f} s) with {sharded['workers_used']} workers"
        )


def test_bench_warm_start_sweep(out_dir, bench_seed, tmp_path):
    """Wall-clock win of train-once / evaluate-many on a DRL grid.

    Three sweeps of the same (1 scenario × 2 DRL systems) grid:

    * **per-cell** — ``warm_start=False``: every DRL cell trains its own
      policy (the pre-checkpoint protocol);
    * **warm (cold blobs)** — the training group is trained once, both
      cells warm-start from it, and the blob is persisted;
    * **warm (hot blobs)** — a fresh result store but the populated
      checkpoint store: zero trainings, evaluation only.

    The hot-blob sweep must beat the per-cell sweep (it skips *all*
    training); a losing first measurement is re-timed once before
    judging, since shared runners are noisy.
    """
    systems = ("drl-only", "hierarchical")
    base = dict(
        scenarios=["paper-default"],
        systems=systems,
        seeds=(bench_seed,),
        n_jobs=WARM_JOBS,
        workers=1,
        pretrain=False,
        online_epochs=1,
        local_epochs=1,
    )
    ckpt_store = CheckpointStore(tmp_path / "ckpt")

    def time_per_cell():
        t0 = time.perf_counter()
        sweep(use_cache=False, warm_start=False, **base)
        return time.perf_counter() - t0

    def time_warm(store):
        t0 = time.perf_counter()
        report = sweep(use_cache=False, checkpoints=store, **base)
        return time.perf_counter() - t0, report

    t_per_cell = time_per_cell()
    t_warm_cold, _ = time_warm(ckpt_store)
    assert len(ckpt_store) == 1, "both DRL cells must share one training"
    t_warm_hot, hot = time_warm(ckpt_store)
    assert len(ckpt_store) == 1
    assert hot.n_computed == len(systems)

    if t_warm_hot >= t_per_cell:  # re-time once: shared runners are noisy
        t_per_cell = min(t_per_cell, time_per_cell())
        t_warm_hot = min(t_warm_hot, time_warm(ckpt_store)[0])

    speedup = t_per_cell / t_warm_hot if t_warm_hot > 0 else float("inf")
    text = "\n".join(
        [
            f"grid: paper-default x {len(systems)} DRL systems, "
            f"{WARM_JOBS} jobs/cell, serial",
            f"per-cell training:      {t_per_cell:.2f} s "
            f"({len(systems)} policies trained)",
            f"warm start, cold blobs: {t_warm_cold:.2f} s (1 policy trained)",
            f"warm start, hot blobs:  {t_warm_hot:.2f} s (0 policies trained)",
            f"speedup (hot vs per-cell): {speedup:.2f}x",
        ]
    )
    save_artifact(out_dir, "bench_warm_start.txt", text)
    assert t_warm_hot < t_per_cell, (
        f"warm sweep ({t_warm_hot:.2f} s) must beat per-cell training "
        f"({t_per_cell:.2f} s)"
    )


def test_bench_cached_rerun(out_dir, sweep_kwargs, tmp_path):
    """A warm cache answers the whole grid without recomputation."""
    store = ResultStore(tmp_path / "cache")
    sweep(workers=None, store=store, **sweep_kwargs)

    t0 = time.perf_counter()
    warm = sweep(workers=None, store=store, **sweep_kwargs)
    t_warm = time.perf_counter() - t0

    assert warm.n_computed == 0
    assert warm.n_cached == len(warm.results)
    text = (
        f"warm-cache sweep of {len(warm.results)} cells: {t_warm * 1000:.1f} ms"
    )
    save_artifact(out_dir, "bench_scenario_cache.txt", text)
