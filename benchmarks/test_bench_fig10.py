"""Experiment E5 — Fig. 10: the power/latency trade-off frontier.

Sweeps the local tier's weight w for the hierarchical framework and
compares against the same DRL allocation tier with fixed timeouts of 30,
60, and 90 s. Paper claims: the hierarchical curve achieves the smallest
area against the axes, with up to 16.16 % latency saving at equal energy
and 16.20 % energy saving at equal latency versus fixed timeouts.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_artifact
from repro.harness.tradeoff import (
    curve,
    frontier_savings,
    pareto_front,
    render_tradeoff_csv,
    run_tradeoff,
)


@pytest.fixture(scope="module")
def tradeoff_points(bench_jobs, bench_seed):
    return run_tradeoff(
        n_jobs=max(bench_jobs // 2, 500),
        num_servers=30,
        seed=bench_seed,
        w_sweep=(0.1, 0.3, 0.5, 0.7, 0.9),
        timeouts=(30.0, 60.0, 90.0),
    )


def test_bench_fig10(benchmark, tradeoff_points, out_dir):
    text = render_tradeoff_csv(tradeoff_points)
    # "fixed" = the union of the fixed-timeout points: the combined
    # baseline frontier (each single timeout alone is one point, which
    # cannot be interpolated against).
    savings = frontier_savings(tradeoff_points, "hierarchical", "fixed")
    text += (
        f"\n# vs combined fixed-timeout frontier: latency saving at equal "
        f"energy {savings['latency_saving']:+.1%}, energy saving at equal "
        f"latency {savings['energy_saving']:+.1%}"
    )
    save_artifact(out_dir, "fig10_tradeoff.csv", text)
    benchmark.pedantic(
        lambda: frontier_savings(tradeoff_points, "hierarchical", "fixed"),
        rounds=3,
        iterations=1,
    )

    # Shape assertion (repeated standalone below for plain pytest runs):
    # the adaptive local tier reaches the global Pareto front.
    front = pareto_front(tradeoff_points)
    assert any(p.curve == "hierarchical" for p in front)


def test_all_curves_present(tradeoff_points):
    names = {p.curve for p in tradeoff_points}
    assert names == {"hierarchical", "fixed-30", "fixed-60", "fixed-90"}
    assert len(curve(tradeoff_points, "hierarchical")) == 5


def test_hierarchical_on_pareto_front(tradeoff_points):
    """At least one hierarchical point must be globally non-dominated —
    the adaptive timeout can always match a fixed one."""
    front = pareto_front(tradeoff_points)
    assert any(p.curve == "hierarchical" for p in front)


def test_w_sweep_spans_the_space(tradeoff_points):
    """Different w values must produce materially different operating
    points (the curve is a curve, not a dot)."""
    ours = curve(tradeoff_points, "hierarchical")
    energies = [p.energy_per_job_wh for p in ours]
    latencies = [p.mean_latency for p in ours]
    assert max(energies) > 1.05 * min(energies) or max(latencies) > 1.05 * min(
        latencies
    )
