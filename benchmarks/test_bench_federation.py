"""Experiment F1 — federation-dispatch overhead microbenchmark.

The federation refactor routes *every* simulation — single-cluster runs
included — through :class:`~repro.sim.federation.FederationEngine`, and
multi-site runs add a federation-tier broker call per arrival. This
bench pins down what that costs:

* single-cluster dispatch (30 servers, round-robin, always-on) — the
  baseline the refactor must not regress;
* a federation of three 10-server sites under each federation policy
  (home / least-loaded / price-greedy), same total fleet, same offered
  load, measured as wall-clock per completed job.

Results merge into ``BENCH_hotpath.json`` (the perf trajectory file)
under the ``"federation"`` key, alongside the decision-epoch numbers.
The acceptance gate bounds the *home-routed* federation's per-job
overhead over the single cluster — pure engine tax, no broker — at
``REPRO_BENCH_FED_MAX_OVERHEAD`` (default 1.6x; policy brokers are
reported but ungated, their work scales with what they inspect).

A second, telemetry-instrumented pass decomposes each policy's per-job
cost into the engine's phases (broker decision vs state-view
aggregation vs settle/dispatch accounting, per-phase *self* µs/job via
:mod:`repro.obs`) under ``federation.phase_us`` — including the DRL
dispatcher, whose ``fed.state_view`` and ``qnet.train_step`` phases are
invisible to the end-to-end numbers above.

Scale knob: ``REPRO_BENCH_FED_JOBS`` (trace length, default 1500).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import save_artifact
from repro.core.baselines import AlwaysOnPolicy, RoundRobinBroker
from repro.core.federation import make_federation_broker
from repro.obs import telemetry as obs
from repro.sim.engine import build_simulation
from repro.sim.federation import build_federation
from repro.sim.power import TariffModel
from repro.workload.mixtures import correlated_traces
from repro.workload.synthetic import SyntheticTraceConfig, generate_trace

FED_JOBS = int(os.environ.get("REPRO_BENCH_FED_JOBS", "1500"))
MAX_OVERHEAD = float(os.environ.get("REPRO_BENCH_FED_MAX_OVERHEAD", "1.6"))
REPO_ROOT = Path(__file__).resolve().parent.parent

M, SITES = 30, 3
PER_SITE = M // SITES
HORIZON = FED_JOBS * 14.0

TOU = TariffModel.time_of_use(
    peak_start_hour=16.0, peak_end_hour=21.0, peak_price=0.32, offpeak_price=0.08
)


def timed_run(build, run, reps: int = 3) -> float:
    """Best-of-reps wall seconds for build-and-run (fresh engine each rep)."""
    best = float("inf")
    for _ in range(reps):
        engine, streams = build()
        t0 = time.perf_counter()
        run(engine, streams)
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def traces(bench_seed):
    single = generate_trace(
        SyntheticTraceConfig(n_jobs=FED_JOBS, horizon=HORIZON), seed=bench_seed
    )
    per_site = correlated_traces(
        [(SyntheticTraceConfig(n_jobs=FED_JOBS, horizon=HORIZON), FED_JOBS // SITES)]
        * SITES,
        horizon=HORIZON,
        seed=bench_seed,
        coupling=1.0,
    )
    # Unique IDs fleet-wide (per-site traces each number from zero).
    offset = 0
    for stream in per_site:
        for job in stream:
            job.job_id += offset
        offset += len(stream)
    return single, per_site


def build_single(trace):
    engine = build_simulation(
        M, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
    )
    return engine, [job.copy() for job in trace]


def build_fed(per_site, policy):
    engine = build_federation(
        [
            dict(
                name=f"site{i}",
                num_servers=PER_SITE,
                broker=RoundRobinBroker(),
                policies=AlwaysOnPolicy(),
                initially_on=True,
                tariff=TOU.shifted(i * 8 * 3600.0),
            )
            for i in range(SITES)
        ],
        broker=make_federation_broker(policy, SITES),
    )
    return engine, [[job.copy() for job in stream] for stream in per_site]


def phase_breakdown(per_site, policy: str) -> dict[str, float]:
    """Per-phase *self* microseconds per job for one profiled run."""
    engine, streams = build_fed(per_site, policy)
    n_jobs = sum(len(stream) for stream in streams)
    with obs.capture() as tel:
        engine.run(streams)
    snapshot = tel.snapshot()
    return {
        name: round(stat["self_s"] / n_jobs * 1e6, 3)
        for name, stat in snapshot["spans"].items()
    }


def test_bench_federation_dispatch(traces, out_dir):
    single_trace, per_site = traces
    n_fed_jobs = sum(len(stream) for stream in per_site)

    single_s = timed_run(
        lambda: build_single(single_trace), lambda e, jobs: e.run(jobs)
    )
    policy_s = {
        policy: timed_run(
            lambda policy=policy: build_fed(per_site, policy),
            lambda e, streams: e.run(streams),
        )
        for policy in ("home", "least-loaded", "price-greedy")
    }

    single_us = single_s / FED_JOBS * 1e6
    fed_us = {p: s / n_fed_jobs * 1e6 for p, s in policy_s.items()}
    overhead = fed_us["home"] / single_us
    if overhead > MAX_OVERHEAD:
        # One noise-relief re-measure, keeping mins (shared runners).
        single_s = min(
            single_s,
            timed_run(lambda: build_single(single_trace), lambda e, j: e.run(j)),
        )
        policy_s["home"] = min(
            policy_s["home"],
            timed_run(lambda: build_fed(per_site, "home"), lambda e, s: e.run(s)),
        )
        single_us = single_s / FED_JOBS * 1e6
        fed_us["home"] = policy_s["home"] / n_fed_jobs * 1e6
        overhead = fed_us["home"] / single_us

    payload = {
        "m": M,
        "sites": SITES,
        "jobs": FED_JOBS,
        "single_cluster_us_per_job": round(single_us, 2),
        "federated_us_per_job": {p: round(v, 2) for p, v in fed_us.items()},
        "home_overhead_x": round(overhead, 3),
        # Instrumented pass: where each policy's per-job time goes.
        # Spans are self-time, so the phases of one policy sum to (at
        # most) its profiled wall time — decision cost is fed.route
        # (plus fed.state_view and qnet.train_step for drl), accounting
        # is site.settle, placement is site.dispatch.
        "phase_us": {
            policy: phase_breakdown(per_site, policy)
            for policy in ("home", "least-loaded", "price-greedy", "drl")
        },
    }
    out_path = REPO_ROOT / "BENCH_hotpath.json"
    try:
        merged = json.loads(out_path.read_text())
    except (OSError, ValueError):
        merged = {}
    merged["federation"] = payload
    text = json.dumps(merged, indent=2)
    out_path.write_text(text + "\n")
    save_artifact(out_dir, "BENCH_federation.json", json.dumps(payload, indent=2))

    assert overhead <= MAX_OVERHEAD, (
        f"home-routed federation costs {overhead:.2f}x the single-cluster "
        f"dispatch per job (gate {MAX_OVERHEAD:.2f}x; fed "
        f"{fed_us['home']:.1f} us vs single {single_us:.1f} us); rerun on a "
        "quiet machine or set REPRO_BENCH_FED_MAX_OVERHEAD"
    )
