"""Experiment E1 — Table I.

Regenerates the paper's summary table (accumulated energy, accumulated
latency, average power at a fixed job count for M = 30 and M = 40 under
round-robin / DRL-only / hierarchical) and checks the *shape* claims:

* round-robin has the lowest latency and the highest energy/power;
* both DRL systems save substantial power versus round-robin;
* the hierarchical framework does not lose to DRL-only on energy.

Paper reference values (95 000 jobs): round-robin 441.47 kWh / 85.20e6 s
/ 2627.79 W; DRL-only 242.25 / 109.73 / 1441.96; hierarchical 203.21 /
92.53 / 1209.58 (M = 30).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_artifact
from repro.harness.claims import evaluate_claims
from repro.harness.table1 import render_table1, run_table1


@pytest.fixture(scope="module")
def table1_rows(bench_jobs, bench_seed):
    return run_table1(n_jobs=bench_jobs, cluster_sizes=(30, 40), seed=bench_seed)


def test_bench_table1(benchmark, table1_rows, out_dir, bench_jobs):
    """Timing proxy: one evaluation cell (round-robin, M=30)."""
    from repro.harness.runner import make_system, run_system
    from repro.harness.table1 import default_config, make_traces

    eval_jobs, _ = make_traces(min(bench_jobs, 1000), 30, 0)
    system = make_system("round-robin", default_config(30))

    benchmark.pedantic(
        lambda: run_system(system, eval_jobs), rounds=2, iterations=1
    )

    text = render_table1(table1_rows)
    for m in (30, 40):
        text += "\n" + evaluate_claims(table1_rows, num_servers=m).summary()
    save_artifact(out_dir, "table1.txt", text)

    # Shape assertions (also run standalone below under plain pytest;
    # repeated here because --benchmark-only skips fixture-less tests).
    for m in (30, 40):
        by_system = {r.system: r for r in table1_rows if r.num_servers == m}
        rr = by_system["round-robin"]
        assert rr.latency_1e6_s == min(r.latency_1e6_s for r in by_system.values())
        assert rr.energy_kwh == max(r.energy_kwh for r in by_system.values())
        report = evaluate_claims(table1_rows, num_servers=m)
        assert report.power_saving_vs_round_robin > 0.20
        assert (
            report.energy_saving_vs_drl > -0.10
            or report.latency_saving_vs_drl > 0.10
        )


@pytest.mark.parametrize("m", [30, 40])
def test_shape_round_robin_extremes(table1_rows, m):
    by_system = {r.system: r for r in table1_rows if r.num_servers == m}
    rr, drl, hier = (
        by_system["round-robin"],
        by_system["drl-only"],
        by_system["hierarchical"],
    )
    assert rr.latency_1e6_s == min(r.latency_1e6_s for r in by_system.values())
    assert rr.power_w == max(r.power_w for r in by_system.values())
    assert rr.energy_kwh == max(r.energy_kwh for r in by_system.values())


@pytest.mark.parametrize("m", [30, 40])
def test_shape_drl_saves_power(table1_rows, m):
    report = evaluate_claims(table1_rows, num_servers=m)
    # Paper: 53.97% (M=30) / 59.99% (M=40); we require a substantial
    # fraction of that on the simulated substrate.
    assert report.power_saving_vs_round_robin > 0.20
    assert report.energy_saving_vs_round_robin > 0.20


@pytest.mark.parametrize("m", [30, 40])
def test_shape_hierarchical_vs_drl_only(table1_rows, m):
    report = evaluate_claims(table1_rows, num_servers=m)
    # Paper: hierarchical beats DRL-only on both energy (16.12%) and
    # latency (16.67%). RL training is stochastic at bench scale and the
    # local tier's w knob trades the two metrics, so we assert the
    # hierarchical system is not *dominated*: it may pay some energy for
    # a clear latency win (or vice versa), but must not lose both.
    assert (
        report.energy_saving_vs_drl > -0.10
        or report.latency_saving_vs_drl > 0.10
    )
