"""Experiment E7 — decision fast-path microbenchmark.

Every job arrival is a decision epoch in the paper's continuous-time
framework, so simulated throughput is bounded by per-epoch cost. This
bench pins the *pre-vectorization* loop path (re-created faithfully
below: per-server Python accounting and aggregate sums, per-server state
encoding, K batch-1 Sub-Q passes, deque-of-dataclass replay re-stacking)
against the shipped fast path (vectorized ledger sync + array
reductions, slice-assignment encoding, one stacked Sub-Q forward,
ring-buffer replay), and records:

* decision-epoch latency (full epoch: sync + aggregate reads + encode +
  Q-values) and its components, fast vs loop;
* train-step latency (replay sample + target build + SGD step);
* end-to-end DRL simulation throughput in jobs/sec.

Results go to ``BENCH_hotpath.json`` at the repo root (the perf
trajectory file, committed per PR) and to the bench output directory.
The acceptance gate asserts the decision-epoch speedup at M=30 / K=3;
``REPRO_BENCH_MIN_SPEEDUP`` relaxes it for noisy shared runners.

Scale knobs: ``REPRO_BENCH_HOTPATH_ITERS`` (epoch-timing iterations,
default 2000), ``REPRO_BENCH_HOTPATH_JOBS`` (end-to-end trace length,
default 1500).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import save_artifact
from repro.core.baselines import AlwaysOnPolicy, ImmediateSleepPolicy, RoundRobinBroker
from repro.core.config import ExperimentConfig, GlobalTierConfig
from repro.core.global_tier import DRLGlobalBroker
from repro.core.qnetwork import HierarchicalQNetwork
from repro.core.state import StateEncoder
from repro.rl.replay import ReplayMemory, Transition
from repro.sim.engine import build_simulation
from repro.workload.synthetic import SyntheticTraceConfig, generate_trace

ITERS = int(os.environ.get("REPRO_BENCH_HOTPATH_ITERS", "2000"))
E2E_JOBS = int(os.environ.get("REPRO_BENCH_HOTPATH_JOBS", "1500"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))
REPO_ROOT = Path(__file__).resolve().parent.parent

M, K = 30, 3
BATCH = 32


# ----------------------------------------------------------------------
# Faithful re-creations of the pre-vectorization (loop) path
# ----------------------------------------------------------------------


def legacy_sync_and_aggregates(cluster, now: float):
    """Per-server Python accounting + aggregate sums (the old
    ``Cluster.sync`` / ``total_energy`` / ``system_integral`` /
    ``overload_integral``). Compute-only: returns the integrals it would
    have written, without disturbing the live ledger."""
    from repro.sim.server import PowerState

    energy = 0.0
    system = 0.0
    overload = 0.0
    for s in cluster.servers:
        dt = max(now - s._last_account, 0.0)
        e = s.energy_joules + s.current_power() * dt
        v = s.system_integral + s.jobs_in_system * dt
        cpu = s.cpu_utilization if s.state is PowerState.ACTIVE else 0.0
        o = s.overload_integral + max(0.0, cpu - s.overload_threshold) * dt
        energy += e
        system += v
        overload += o
    return energy, system, overload


def legacy_encode(cluster, job, enc: StateEncoder) -> np.ndarray:
    """Per-server object scan (the old ``StateEncoder.encode``)."""
    util = np.array([s.used.copy() for s in cluster.servers])[:, : enc.num_resources]
    blocks = [
        util,
        np.array([1.0 if s.state.is_on else 0.0 for s in cluster.servers])[:, None],
        np.minimum(
            np.array([float(s.queue_length) for s in cluster.servers])
            / enc.queue_scale,
            1.0,
        )[:, None],
    ]
    server_block = np.concatenate(blocks, axis=1)
    return np.concatenate([server_block.reshape(-1), enc.encode_job(job)])


def legacy_predict(qnet: HierarchicalQNetwork, states: np.ndarray) -> np.ndarray:
    """K per-group Sub-Q passes with cache-building forwards (the old
    ``predict``, whose ``MLP.predict`` built backward caches)."""
    groups, jobs = qnet.encoder.split(states)
    flat = groups.reshape(-1, qnet.group_dim)
    codes, _ = qnet.autoencoder.encoder.forward(flat)
    codes = codes.reshape(qnet.num_groups, jobs.shape[0], qnet.code_dim)
    out = np.empty((jobs.shape[0], qnet.num_actions))
    for k in range(qnet.num_groups):
        q_k, _ = qnet.subq.forward(qnet._assemble(k, groups, codes, jobs))
        out[:, k * qnet.group_size : (k + 1) * qnet.group_size] = q_k
    return out


def legacy_train_minibatch(qnet, memory, rng, beta=0.5):
    """Deque-style re-stacking + loop train step (the old broker path)."""
    batch = memory.sample(BATCH, rng)
    states = np.stack([tr.state for tr in batch])
    actions = np.array([tr.action for tr in batch], dtype=np.int64)
    rewards = np.array([tr.reward for tr in batch])
    taus = np.array([tr.tau for tr in batch])
    next_states = np.stack([tr.next_state for tr in batch])
    next_max = legacy_predict(qnet, next_states).max(axis=1)
    targets = rewards + np.exp(-beta * taus) * next_max
    return qnet.train_step_loop(states, actions, targets, qnet._bench_opt)


def fast_train_minibatch(qnet, memory, rng, beta=0.5):
    states, actions, rewards, next_states, taus = memory.sample_arrays(BATCH, rng)
    next_max = qnet.predict(next_states).max(axis=1)
    targets = rewards + np.exp(-beta * taus) * next_max
    return qnet.train_step(states, actions, targets, qnet._bench_opt)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


def timed(fn, iters: int, reps: int = 5) -> float:
    """Best-of-``reps`` mean seconds per call (noise-resistant on shared
    single-core runners)."""
    fn()  # warm caches / allocators
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - t0) / iters)
    return best


@pytest.fixture(scope="module")
def rig(bench_seed):
    """A mid-run M=30 cluster plus a K=3 hierarchical Q-network."""
    enc = StateEncoder(M, num_groups=K)
    qnet = HierarchicalQNetwork(enc, rng=np.random.default_rng(bench_seed))
    trace = generate_trace(
        SyntheticTraceConfig(n_jobs=300, horizon=4000.0), seed=bench_seed
    )
    engine = build_simulation(
        M, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
    )
    engine.run(trace[:250])
    rng = np.random.default_rng(bench_seed)
    memory = ReplayMemory(5000)
    for _ in range(2000):
        memory.push(
            Transition(
                rng.uniform(0.0, 1.0, enc.state_dim),
                int(rng.integers(0, M)),
                float(rng.normal()),
                rng.uniform(0.0, 1.0, enc.state_dim),
                float(rng.uniform(0.1, 10.0)),
            )
        )
    return {
        "enc": enc,
        "qnet": qnet,
        "cluster": engine.cluster,
        "probe": trace[250],
        "memory": memory,
        "rng": rng,
    }


def test_bench_hotpath(rig, out_dir, bench_seed):
    enc, qnet = rig["enc"], rig["qnet"]
    cluster, probe = rig["cluster"], rig["probe"]
    memory, rng = rig["memory"], rig["rng"]

    # Sanity: the fast path must be bit-identical before it is "faster".
    state = enc.encode(cluster, probe)
    assert np.array_equal(state, legacy_encode(cluster, probe, enc))
    assert np.array_equal(qnet.q_values(state), legacy_predict(qnet, state[None])[0])

    clock = {"t": cluster.events.now}

    def fast_epoch():
        clock["t"] += 1e-3  # advancing time: sync really integrates
        now = clock["t"]
        cluster.sync(now)
        cluster.total_energy()
        cluster.system_integral()
        cluster.overload_integral()
        return qnet.q_values(enc.encode(cluster, probe))

    def loop_epoch():
        clock["t"] += 1e-3
        legacy_sync_and_aggregates(cluster, clock["t"])
        return legacy_predict(qnet, legacy_encode(cluster, probe, enc)[None])[0]

    fast_s = timed(fast_epoch, ITERS)
    loop_s = timed(loop_epoch, ITERS)
    if loop_s / fast_s < MIN_SPEEDUP:
        # One re-measure before judging: a noisy burst on a busy shared
        # core shouldn't fail the gate. Both sides keep their best (min)
        # timing — the standard noise-robust estimator.
        fast_s = min(fast_s, timed(fast_epoch, ITERS))
        loop_s = min(loop_s, timed(loop_epoch, ITERS))
    epoch_speedup = loop_s / fast_s

    # Components (fewer iters: these are sub-measurements for the table).
    sub = max(ITERS // 2, 200)
    enc_fast = timed(lambda: enc.encode(cluster, probe), sub)
    enc_loop = timed(lambda: legacy_encode(cluster, probe, enc), sub)
    q_fast = timed(lambda: qnet.q_values(state), sub)
    q_loop = timed(lambda: legacy_predict(qnet, state[None]), sub)

    # Train step (includes replay sampling and target construction).
    train_iters = max(ITERS // 20, 20)
    qnet._bench_opt = qnet.make_optimizer()
    train_fast = timed(
        lambda: fast_train_minibatch(qnet, memory, rng), train_iters, reps=3
    )
    twin = qnet.clone()
    twin._bench_opt = twin.make_optimizer()
    train_loop = timed(
        lambda: legacy_train_minibatch(twin, memory, rng), train_iters, reps=3
    )
    if train_loop < train_fast:
        # Same noise relief as the epoch gate: re-time both, keep mins.
        train_fast = min(
            train_fast,
            timed(lambda: fast_train_minibatch(qnet, memory, rng), train_iters, reps=3),
        )
        train_loop = min(
            train_loop,
            timed(
                lambda: legacy_train_minibatch(twin, memory, rng),
                train_iters,
                reps=3,
            ),
        )

    # End-to-end: jobs/sec of a DRL-brokered simulation (fast path only —
    # the trajectory metric future PRs must not regress).
    config = ExperimentConfig(
        num_servers=M, global_tier=GlobalTierConfig(num_groups=K), seed=bench_seed
    )
    broker = DRLGlobalBroker(
        StateEncoder(M, num_groups=K),
        config.global_tier,
        rng=np.random.default_rng(bench_seed),
    )
    e2e_trace = generate_trace(
        SyntheticTraceConfig(n_jobs=E2E_JOBS, horizon=E2E_JOBS * 14.0),
        seed=bench_seed + 1,
    )
    engine = build_simulation(M, broker, ImmediateSleepPolicy())
    t0 = time.perf_counter()
    engine.run(e2e_trace)
    e2e_wall = time.perf_counter() - t0
    jobs_per_sec = E2E_JOBS / e2e_wall

    payload = {
        "m": M,
        "k": K,
        "batch": BATCH,
        "iters": ITERS,
        "decision_epoch_us": {
            "fast": round(fast_s * 1e6, 2),
            "loop": round(loop_s * 1e6, 2),
            "speedup": round(epoch_speedup, 2),
        },
        "encode_us": {
            "fast": round(enc_fast * 1e6, 2),
            "loop": round(enc_loop * 1e6, 2),
            "speedup": round(enc_loop / enc_fast, 2),
        },
        "q_values_us": {
            "fast": round(q_fast * 1e6, 2),
            "loop": round(q_loop * 1e6, 2),
            "speedup": round(q_loop / q_fast, 2),
        },
        "train_step_ms": {
            "fast": round(train_fast * 1e3, 3),
            "loop": round(train_loop * 1e3, 3),
            "speedup": round(train_loop / train_fast, 2),
        },
        "drl_sim_jobs_per_sec": round(jobs_per_sec, 1),
        "e2e_jobs": E2E_JOBS,
    }
    # Merge over the existing trajectory file: other benches (e.g. the
    # federation-dispatch bench) contribute their own top-level keys.
    out_path = REPO_ROOT / "BENCH_hotpath.json"
    try:
        merged = json.loads(out_path.read_text())
    except (OSError, ValueError):
        merged = {}
    merged.update(payload)
    text = json.dumps(merged, indent=2)
    out_path.write_text(text + "\n")
    save_artifact(out_dir, "BENCH_hotpath.json", text)

    assert epoch_speedup >= MIN_SPEEDUP, (
        f"decision-epoch speedup {epoch_speedup:.2f}x below the "
        f"{MIN_SPEEDUP:.1f}x gate (fast {fast_s * 1e6:.1f} us vs loop "
        f"{loop_s * 1e6:.1f} us); rerun on a quiet machine or set "
        "REPRO_BENCH_MIN_SPEEDUP"
    )
    assert train_loop / train_fast >= 1.0
