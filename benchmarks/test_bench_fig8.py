"""Experiments E2/E3 — Fig. 8 (M = 30).

Panel (a): accumulated job latency versus the number of jobs.
Panel (b): energy usage versus the number of jobs.

Paper shape: the round-robin curve grows slowest in latency but fastest
in energy; the hierarchical curve stays below DRL-only in energy and
grows no faster in latency.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_artifact
from repro.harness.figures import render_series_csv, run_figure8


@pytest.fixture(scope="module")
def fig8(bench_jobs, bench_seed):
    return run_figure8(n_jobs=bench_jobs, seed=bench_seed)


def test_bench_fig8(benchmark, fig8, out_dir):
    save_artifact(out_dir, "fig8a_latency.csv", render_series_csv(fig8, "latency"))
    save_artifact(out_dir, "fig8b_energy.csv", render_series_csv(fig8, "energy"))
    # Timing proxy: rendering both panels.
    benchmark.pedantic(
        lambda: (render_series_csv(fig8, "latency"), render_series_csv(fig8, "energy")),
        rounds=3,
        iterations=1,
    )

    # Shape assertions (repeated standalone below for plain pytest runs).
    lat_finals = {name: pts[-1][1] for name, pts in fig8.latency.items()}
    eng_finals = {name: pts[-1][1] for name, pts in fig8.energy.items()}
    assert lat_finals["round-robin"] == min(lat_finals.values())
    assert eng_finals["round-robin"] == max(eng_finals.values())


def test_series_are_monotone(fig8):
    for series in (fig8.latency, fig8.energy):
        for name, points in series.items():
            values = [v for _, v in points]
            assert all(b >= a - 1e-9 for a, b in zip(values, values[1:])), name


def test_round_robin_lowest_final_latency(fig8):
    finals = {name: points[-1][1] for name, points in fig8.latency.items()}
    assert finals["round-robin"] == min(finals.values())


def test_round_robin_highest_final_energy(fig8):
    finals = {name: points[-1][1] for name, points in fig8.energy.items()}
    assert finals["round-robin"] == max(finals.values())


def test_energy_gap_grows_with_jobs(fig8):
    """The round-robin energy curve has a visibly larger slope (Fig. 8b):
    the gap at the end exceeds the gap at one third of the run."""
    rr = dict(fig8.energy["round-robin"])
    hier = dict(fig8.energy["hierarchical"])
    common = sorted(set(rr) & set(hier))
    assert len(common) >= 3
    early, late = common[len(common) // 3], common[-1]
    assert (rr[late] - hier[late]) > (rr[early] - hier[early])
