"""Experiment E7 — trace-replay ingestion and electricity accounting.

Measures the new scenario-layer paths end to end on the bundled
Google-format fixture:

* task-events parse throughput (rows/s through
  :func:`~repro.workload.trace.read_google_task_events`, including the
  per-incarnation SUBMIT/FINISH pairing);
* replay-cell wall time vs the synthetic cell of the same size, so the
  file-backed workload path stays in the same cost band as generation;
* tariff overhead: the exact cost/CO₂ integration must be effectively
  free next to the simulation itself.

Point ``REPRO_BENCH_REPLAY_TRACE`` at real cluster-usage part files to
re-run the ingestion numbers at full scale.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace
from pathlib import Path

from benchmarks.conftest import save_artifact
from repro.scenarios import registry
from repro.scenarios.orchestrator import run_cell
from repro.sim.power import TariffModel
from repro.workload.trace import read_google_task_events

FIXTURE = Path(__file__).resolve().parents[1] / "tests" / "fixtures"
TRACE_PATHS = [
    Path(p)
    for p in os.environ.get(
        "REPRO_BENCH_REPLAY_TRACE",
        str(FIXTURE / "google_task_events_small.csv"),
    ).split(os.pathsep)
]
REPLAY_JOBS = int(os.environ.get("REPRO_BENCH_REPLAY_JOBS", "80"))


def _replay_spec():
    spec = registry.get("google-replay")
    return replace(
        spec,
        workload=replace(
            spec.workload,
            replay=replace(
                spec.workload.replay, paths=tuple(str(p) for p in TRACE_PATHS)
            ),
        ),
    )


def test_bench_trace_ingestion(out_dir):
    """Parse throughput of the Google task-events reader."""
    n_rows = sum(
        1 for path in TRACE_PATHS for _ in path.open()
    )
    repeats = 20 if n_rows < 10_000 else 1
    t0 = time.perf_counter()
    for _ in range(repeats):
        jobs = read_google_task_events(TRACE_PATHS)
    elapsed = (time.perf_counter() - t0) / repeats
    assert jobs, "fixture must parse to jobs"
    text = "\n".join(
        [
            f"files: {len(TRACE_PATHS)}  rows: {n_rows}  jobs: {len(jobs)}",
            f"parse: {elapsed * 1e3:.2f} ms "
            f"({n_rows / max(elapsed, 1e-9):,.0f} rows/s, "
            f"mean of {repeats} runs)",
        ]
    )
    save_artifact(out_dir, "bench_trace_ingestion.txt", text)


def test_bench_replay_cell_and_tariff(out_dir, bench_seed):
    """Replay vs synthetic cell wall time; tariff accounting overhead."""
    spec = _replay_spec()
    spec.workload.replay.load_jobs()  # warm the parse cache: bench the sim

    t0 = time.perf_counter()
    plain = run_cell(spec, "round-robin", n_jobs=REPLAY_JOBS, seed=bench_seed)
    t_replay = time.perf_counter() - t0

    tou = replace(spec, tariff=TariffModel.time_of_use(16, 21, 0.32, 0.08))
    t0 = time.perf_counter()
    billed = run_cell(tou, "round-robin", n_jobs=REPLAY_JOBS, seed=bench_seed)
    t_billed = time.perf_counter() - t0

    t0 = time.perf_counter()
    synth = run_cell(
        "paper-default", "round-robin", n_jobs=REPLAY_JOBS, seed=bench_seed
    )
    t_synth = time.perf_counter() - t0

    assert billed["cost_usd"] > 0 and billed["co2_kg"] > 0
    assert billed["energy_kwh"] == plain["energy_kwh"], "tariff is metrics-only"
    text = "\n".join(
        [
            f"cell size: {REPLAY_JOBS} jobs (round-robin)",
            f"replay cell:             {t_replay:.2f} s "
            f"({plain['n_jobs_completed']} completed)",
            f"replay cell + tariff:    {t_billed:.2f} s "
            f"(${billed['cost_usd']:.2f}, {billed['co2_kg']:.2f} kg CO2)",
            f"synthetic cell:          {t_synth:.2f} s",
        ]
    )
    save_artifact(out_dir, "bench_trace_replay.txt", text)
