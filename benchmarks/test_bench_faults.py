"""Fault-path overhead bench.

The fault runtime promises two things about performance: a run with no
faults configured pays (almost) nothing — zero-fault results are
bit-identical with the engine's bare output — and a heavily-faulted run
(crashes + retries + stragglers, the ``failure-storm`` regime) stays
within a small constant factor of the clean run despite kill/requeue
churn and rerouting.

This bench measures three configurations of the same workload on a
20-server site:

* **bare** — no fault machinery installed at all;
* **inert** — a null :class:`FaultSpec` runtime installed (the hook
  overhead every faulted *scenario* pays on its fault-free cells);
* **storm** — failure-storm-like parameters (crashes, 5% job failures,
  5% stragglers, retry backoff).

Results merge into ``BENCH_hotpath.json`` under the ``faults`` key.
The acceptance gates assert bare/inert bit-identity and bound the inert
hook overhead; ``REPRO_BENCH_FAULT_OVERHEAD`` relaxes the latter for
noisy shared runners.

Scale knob: ``REPRO_BENCH_FAULT_JOBS`` (trace length, default 2000).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import save_artifact
from repro.core.baselines import AlwaysOnPolicy, RoundRobinBroker
from repro.faults.inject import install_faults
from repro.faults.plan import build_site_plan
from repro.faults.spec import FaultSpec
from repro.sim.federation import build_federation
from repro.workload.synthetic import SyntheticTraceConfig, generate_trace

FAULT_JOBS = int(os.environ.get("REPRO_BENCH_FAULT_JOBS", "2000"))
MAX_INERT_OVERHEAD = float(os.environ.get("REPRO_BENCH_FAULT_OVERHEAD", "0.25"))
REPO_ROOT = Path(__file__).resolve().parent.parent

NUM_SERVERS = 20

STORM = FaultSpec(
    crashes_per_server=1.5,
    crash_recovery_fraction=0.04,
    job_failure_prob=0.05,
    straggler_prob=0.05,
    straggler_factor=3.0,
    max_retries=3,
    retry_backoff_s=60.0,
)


def build_site():
    return build_federation(
        [
            dict(
                name="site",
                num_servers=NUM_SERVERS,
                broker=RoundRobinBroker(),
                policies=AlwaysOnPolicy(),
                initially_on=True,
            )
        ]
    )


def fingerprint(result):
    m = result.sites[0].metrics
    return (
        m.n_arrived,
        m.n_completed,
        m.n_failed,
        m.n_retries,
        m.acc_latency,
        m.total_energy_kwh(),
        result.final_time,
    )


def run_once(trace, spec, seed):
    """One timed run; ``spec=None`` means no fault machinery at all."""
    engine = build_site()
    runtime = None
    if spec is not None:
        horizon = max(j.arrival_time for j in trace) + 500.0
        runtime = install_faults(
            engine, [build_site_plan(spec, NUM_SERVERS, horizon, seed)]
        )
    jobs = [j.copy() for j in trace]
    t0 = time.perf_counter()
    result = engine.run([jobs])
    wall = time.perf_counter() - t0
    return result, runtime, wall


def best_of(trace, spec, seed, reps=3):
    best_wall = float("inf")
    result = runtime = None
    for _ in range(reps):
        r, rt, wall = run_once(trace, spec, seed)
        if wall < best_wall:
            best_wall, result, runtime = wall, r, rt
    return result, runtime, best_wall


def test_bench_fault_overhead(out_dir, bench_seed):
    trace = generate_trace(
        SyntheticTraceConfig(n_jobs=FAULT_JOBS, horizon=FAULT_JOBS * 10.0),
        seed=bench_seed,
    )

    bare_result, _, bare_s = best_of(trace, None, bench_seed)
    inert_result, inert_rt, inert_s = best_of(trace, FaultSpec(), bench_seed)
    storm_result, storm_rt, storm_s = best_of(trace, STORM, bench_seed)

    # Gate 1: the inert runtime changes nothing — bit-identical metrics.
    assert fingerprint(inert_result) == fingerprint(bare_result)
    assert inert_rt.total_crashes == 0
    assert inert_rt.broker_fallbacks == 0

    # Gate 2: the storm conserves jobs — nothing silently dropped.
    m = storm_result.sites[0].metrics
    assert m.n_completed + m.n_failed == FAULT_JOBS

    inert_overhead = inert_s / bare_s - 1.0
    if inert_overhead > MAX_INERT_OVERHEAD:
        # One re-measure before judging (shared-runner noise relief).
        _, _, bare_s2 = best_of(trace, None, bench_seed)
        _, _, inert_s2 = best_of(trace, FaultSpec(), bench_seed)
        bare_s = min(bare_s, bare_s2)
        inert_s = min(inert_s, inert_s2)
        inert_overhead = inert_s / bare_s - 1.0

    payload = {
        "jobs": FAULT_JOBS,
        "num_servers": NUM_SERVERS,
        "bare_ms": round(bare_s * 1e3, 2),
        "inert_ms": round(inert_s * 1e3, 2),
        "storm_ms": round(storm_s * 1e3, 2),
        "inert_overhead_pct": round(inert_overhead * 100.0, 2),
        "storm_slowdown": round(storm_s / bare_s, 2),
        "storm": {
            "completed": m.n_completed,
            "failed": m.n_failed,
            "retries": m.n_retries,
            "goodput": round(m.goodput, 4),
            "crashes": storm_rt.total_crashes,
            "jobs_killed": storm_rt.total_jobs_killed,
            "stragglers": storm_rt.total_stragglers,
            "availability": round(
                storm_rt.fleet_availability(storm_result.final_time), 4
            ),
        },
    }

    out_path = REPO_ROOT / "BENCH_hotpath.json"
    try:
        merged = json.loads(out_path.read_text())
    except (OSError, ValueError):
        merged = {}
    merged["faults"] = payload
    text = json.dumps(merged, indent=2)
    out_path.write_text(text + "\n")
    save_artifact(out_dir, "BENCH_faults.json", json.dumps(payload, indent=2))

    assert inert_overhead <= MAX_INERT_OVERHEAD, (
        f"inert fault runtime costs {inert_overhead * 100.0:.1f}% over the "
        f"bare engine (gate {MAX_INERT_OVERHEAD * 100.0:.0f}%); rerun on a "
        "quiet machine or set REPRO_BENCH_FAULT_OVERHEAD"
    )
