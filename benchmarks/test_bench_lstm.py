"""Experiment E7 — the LSTM workload predictor (Sec. VI-A).

The paper motivates the LSTM over linear-combination predictors: "one
very long inter-arrival time can ruin a set of subsequent predictions".
This bench trains the paper's predictor (35-step look-back, 30 hidden
units) on synthetic per-server inter-arrival series and reports its
category accuracy and MSE against the naive last-value predictor.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import save_artifact
from repro.core.config import PredictorConfig
from repro.core.predictor import WorkloadPredictor
from repro.harness.table1 import make_traces


@pytest.fixture(scope="module")
def series(bench_jobs, bench_seed):
    # The raw (stride-1) inter-arrival stream: bursty and non-stationary —
    # the regime where "one very long inter-arrival time can ruin a set of
    # subsequent predictions" for naive predictors. The M-strided
    # per-server stream (per_server_interarrivals) is Erlang-smoothed and
    # near-trivial for a last-value predictor.
    eval_jobs, _ = make_traces(max(bench_jobs, 2000), 30, bench_seed)
    arrivals = np.array([j.arrival_time for j in eval_jobs])
    return np.diff(arrivals)[:3000]


@pytest.fixture(scope="module")
def trained(series, bench_seed):
    config = PredictorConfig(
        lookback=35, hidden_units=30, n_categories=4, epochs=8,
        min_interarrival=0.5, max_interarrival=600.0,
    )
    predictor = WorkloadPredictor(config, rng=np.random.default_rng(bench_seed))
    split = int(len(series) * 0.7)
    history = predictor.fit(series[:split])
    return predictor, series[split:], history


def _evaluate(predictor, test_series):
    look = predictor.config.lookback
    preds, naive, truth = [], [], []
    for i in range(len(test_series) - look):
        window = test_series[i : i + look]
        preds.append(predictor.predict_seconds(window))
        naive.append(window[-1])
        truth.append(test_series[i + look])
    preds, naive, truth = map(np.asarray, (preds, naive, truth))

    # Compare in the (log-)normalized space the network is trained in.
    def err(a, b):
        return float(np.mean((predictor.transform(a) - predictor.transform(b)) ** 2))

    def cat(arr):
        return np.array([predictor.categorize(v) for v in arr])
    return {
        "lstm_mse": err(preds, truth),
        "naive_mse": err(naive, truth),
        "lstm_cat_acc": float(np.mean(cat(preds) == cat(truth))),
        "naive_cat_acc": float(np.mean(cat(naive) == cat(truth))),
    }


def test_bench_lstm_predictor(benchmark, trained, out_dir):
    predictor, test_series, history = trained
    stats = _evaluate(predictor, test_series)
    text = (
        f"training loss: {history[0]:.4f} -> {history[-1]:.4f}\n"
        f"normalized MSE:   lstm={stats['lstm_mse']:.4f}  "
        f"last-value={stats['naive_mse']:.4f}\n"
        f"category accuracy: lstm={stats['lstm_cat_acc']:.1%}  "
        f"last-value={stats['naive_cat_acc']:.1%}"
    )
    save_artifact(out_dir, "lstm_predictor.txt", text)
    window = test_series[: predictor.config.lookback]
    benchmark.pedantic(
        lambda: predictor.predict_seconds(window), rounds=20, iterations=5
    )
    # Shape: the trained LSTM must beat the naive predictor in MSE.
    assert stats["lstm_mse"] < stats["naive_mse"]


def test_training_converges(trained):
    _, _, history = trained
    assert history[-1] < history[0]
