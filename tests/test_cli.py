"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.jobs == 3000
        assert args.servers == "30,40"
        assert args.seed == 0

    @pytest.mark.parametrize("cmd", ["fig8", "fig9", "fig10", "workload"])
    def test_subcommands_exist(self, cmd):
        args = build_parser().parse_args([cmd, "--jobs", "123", "--seed", "9"])
        assert args.command == cmd
        assert args.jobs == 123
        assert args.seed == 9

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig11"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        from repro import __version__

        assert __version__ in capsys.readouterr().out

    def test_scenario_subcommands_parse(self):
        args = build_parser().parse_args(["scenario", "list"])
        assert (args.command, args.action) == ("scenario", "list")
        args = build_parser().parse_args(
            ["scenario", "run", "--name", "paper-default", "--jobs", "50"]
        )
        assert (args.action, args.name, args.jobs) == ("run", "paper-default", 50)
        args = build_parser().parse_args(
            ["scenario", "sweep", "--systems", "packing", "--workers", "2", "--force"]
        )
        assert (args.action, args.systems, args.workers, args.force) == (
            "sweep", "packing", 2, True,
        )

    def test_scenario_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_sweep_resume_and_warm_start_flags(self):
        args = build_parser().parse_args(
            ["scenario", "sweep", "--resume", "--no-warm-start",
             "--series-out", "series.csv"]
        )
        assert args.resume and args.no_warm_start
        assert str(args.series_out) == "series.csv"
        args = build_parser().parse_args(["scenario", "sweep"])
        assert not args.resume and not args.no_warm_start
        assert args.series_out is None

    def test_run_warm_flag(self):
        args = build_parser().parse_args(
            ["scenario", "run", "--name", "paper-default", "--warm"]
        )
        assert args.warm
        assert str(args.cache_dir) == ".repro-cache"


class TestExecution:
    def test_workload_prints_characterization(self, capsys, tmp_path):
        out = tmp_path / "trace.csv"
        rc = main(["workload", "--jobs", "200", "--out", str(out)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "offered load" in captured
        assert out.exists()
        from repro.workload.trace import read_trace_csv

        assert len(read_trace_csv(out)) == 200

    def test_systems_lists_every_named_system(self, capsys):
        rc = main(["systems"])
        assert rc == 0
        captured = capsys.readouterr().out
        from repro.harness.runner import SYSTEM_NAMES

        for name in SYSTEM_NAMES:
            assert name in captured

    def test_scenario_list_shows_six(self, capsys):
        rc = main(["scenario", "list"])
        assert rc == 0
        captured = capsys.readouterr().out
        from repro.scenarios import registry

        assert len(registry.names()) >= 6
        for name in registry.names():
            assert name in captured

    def test_scenario_run_tiny(self, capsys, tmp_path):
        rc = main(["scenario", "run", "--name", "paper-default",
                   "--system", "packing", "--jobs", "60",
                   "--cache-dir", str(tmp_path)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "paper-default" in captured
        assert "energy" in captured

    def test_scenario_run_journals_schema_v6_result(self, capsys, tmp_path):
        import json

        from repro.scenarios.store import SCHEMA_VERSION

        rc = main(["scenario", "run", "--name", "paper-default",
                   "--system", "packing", "--jobs", "60",
                   "--cache-dir", str(tmp_path)])
        assert rc == 0
        records = list(tmp_path.glob("*/*.json"))
        assert len(records) == 1
        record = json.loads(records[0].read_text())
        assert record["schema"] == SCHEMA_VERSION == 6
        assert "cost_series" in record["result"]
        assert "co2_series" in record["result"]
        assert record["result"]["failed_jobs"] == 0
        assert record["result"]["goodput"] == 1.0

    def test_scenario_run_journal_is_a_sweep_cache_hit(self, capsys, tmp_path):
        # A journaled `scenario run` cell must come back cached when a
        # sweep later covers the same point.
        rc = main(["scenario", "run", "--name", "paper-default",
                   "--system", "packing", "--jobs", "60",
                   "--cache-dir", str(tmp_path)])
        assert rc == 0
        rc = main(["scenario", "sweep", "--scenarios", "paper-default",
                   "--systems", "packing", "--jobs", "60", "--workers", "1",
                   "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "1 cached, 0 computed" in capsys.readouterr().out

    def test_scenario_run_google_replay_fixture(self, capsys, tmp_path):
        rc = main(["scenario", "run", "--name", "google-replay",
                   "--trace", "tests/fixtures/google_task_events_small.csv",
                   "--jobs", "80", "--cache-dir", str(tmp_path)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "google-replay" in captured
        assert "electricity" in captured  # tariff-backed cost/CO₂ line
        assert len(list(tmp_path.glob("*/*.json"))) == 1

    def test_scenario_run_trace_reroutes_any_scenario(self, capsys, tmp_path):
        # --trace turns a synthetic scenario into a replay of the files.
        rc = main(["scenario", "run", "--name", "tou-price-shift",
                   "--trace", "tests/fixtures/google_task_events_small.csv",
                   "--jobs", "40", "--cache-dir", str(tmp_path)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "tou-price-shift" in captured
        assert "electricity" in captured

    @pytest.mark.slow
    def test_scenario_sweep_with_cache(self, capsys, tmp_path):
        argv = ["scenario", "sweep", "--scenarios", "paper-default",
                "--systems", "round-robin,packing", "--jobs", "60",
                "--workers", "2", "--cache-dir", str(tmp_path / "cache")]
        rc = main(argv)
        assert rc == 0
        first = capsys.readouterr().out
        assert "2 computed" in first
        rc = main(argv)
        assert rc == 0
        second = capsys.readouterr().out
        assert "2 cached, 0 computed" in second

    def test_sweep_resume_conflicts_with_force(self, capsys):
        rc = main(["scenario", "sweep", "--resume", "--force"])
        assert rc == 2
        assert "--resume" in capsys.readouterr().err

    def test_sweep_resume_requires_a_journal(self, capsys, tmp_path):
        rc = main(["scenario", "sweep", "--resume",
                   "--cache-dir", str(tmp_path / "empty")])
        assert rc == 2
        assert "nothing to resume" in capsys.readouterr().err

    @pytest.mark.slow
    def test_sweep_series_out(self, capsys, tmp_path):
        series = tmp_path / "series.csv"
        rc = main(["scenario", "sweep", "--scenarios", "paper-default",
                   "--systems", "round-robin", "--jobs", "60",
                   "--workers", "1", "--cache-dir", str(tmp_path / "cache"),
                   "--series-out", str(series)])
        assert rc == 0
        text = series.read_text()
        assert text.startswith("scenario,system,series,n_jobs,value,n_seeds")
        assert "paper-default,round-robin,latency," in text
        assert "paper-default,round-robin,energy," in text

    @pytest.mark.slow
    def test_table1_tiny_run(self, capsys):
        rc = main(["table1", "--jobs", "200", "--servers", "4", "--seed", "0"])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "round-robin" in captured
        assert "hierarchical" in captured
        assert "M=4" in captured

    @pytest.mark.slow
    def test_fig8_csv_to_file(self, tmp_path):
        out = tmp_path / "fig8.csv"
        rc = main(["fig8", "--jobs", "200", "--out", str(out)])
        assert rc == 0
        text = out.read_text()
        assert "acc_latency_s" in text
        assert "energy_kwh" in text


class TestScenarioRunPositional:
    def test_positional_name_accepted(self, capsys, tmp_path):
        rc = main(["scenario", "run", "google-replay",
                   "--trace", "tests/fixtures/google_task_events_small.csv",
                   "--jobs", "40", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "google-replay" in capsys.readouterr().out

    def test_missing_name_errors(self, capsys, tmp_path):
        rc = main(["scenario", "run", "--cache-dir", str(tmp_path)])
        assert rc == 2
        assert "scenario name" in capsys.readouterr().err

    def test_conflicting_names_error(self, capsys, tmp_path):
        rc = main(["scenario", "run", "paper-default", "--name", "tenant-mix",
                   "--cache-dir", str(tmp_path)])
        assert rc == 2


class TestObsCli:
    def test_scenario_run_profile_writes_telemetry(self, capsys, tmp_path):
        rc = main(["scenario", "run", "--name", "paper-default",
                   "--system", "packing", "--jobs", "60",
                   "--cache-dir", str(tmp_path), "--profile"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "Span" in captured.out  # rendered self-time breakdown
        tel_path = tmp_path / "telemetry.json"
        assert tel_path.is_file()
        import json

        snapshot = json.loads(tel_path.read_text())
        assert "run" in snapshot["spans"]
        assert snapshot["counters"]["jobs.completed"] == 60

    def test_profile_conflicts_with_shards(self, capsys, tmp_path):
        rc = main(["scenario", "run", "--name", "paper-default",
                   "--shards", "2", "--profile", "--cache-dir", str(tmp_path)])
        assert rc == 2
        assert "--profile" in capsys.readouterr().err

    def test_obs_report_renders_artifact(self, capsys, tmp_path):
        rc = main(["scenario", "run", "--name", "paper-default",
                   "--system", "packing", "--jobs", "60",
                   "--cache-dir", str(tmp_path), "--profile"])
        assert rc == 0
        capsys.readouterr()
        rc = main(["obs", "report", str(tmp_path / "telemetry.json"),
                   "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert "Span" in out

    def test_obs_report_rejects_non_snapshot(self, capsys, tmp_path):
        bogus = tmp_path / "not_telemetry.json"
        bogus.write_text("{\"foo\": 1}")
        rc = main(["obs", "report", str(bogus)])
        assert rc == 2
        assert "not a telemetry snapshot" in capsys.readouterr().err

    def test_sweep_profile_rolls_up(self, capsys, tmp_path):
        rc = main(["scenario", "sweep", "--scenarios", "paper-default",
                   "--systems", "packing", "--jobs", "60", "--workers", "1",
                   "--cache-dir", str(tmp_path), "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Span" in out
        import json

        snapshot = json.loads((tmp_path / "telemetry.json").read_text())
        assert snapshot["n_runs"] == 1
        assert "run" in snapshot["spans"]

    def test_log_level_flag(self, capsys, tmp_path):
        import logging

        rc = main(["--log-level", "DEBUG", "systems"])
        assert rc == 0
        assert logging.getLogger("repro").level == logging.DEBUG
        rc = main(["systems"])  # default restores WARNING
        assert rc == 0
        assert logging.getLogger("repro").level == logging.WARNING

    def test_unknown_log_level_errors(self, capsys):
        rc = main(["--log-level", "LOUD", "systems"])
        assert rc == 2
        assert "unknown log level" in capsys.readouterr().err


class TestLintCommand:
    def test_lint_parses_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.command == "lint"
        assert args.paths == []
        assert not args.json
        assert args.select is None

    def test_lint_list_rules(self, capsys):
        rc = main(["lint", "--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for rule in ["REP000", "REP001", "REP002", "REP003", "REP004",
                     "REP005", "REP006"]:
            assert rule in out

    def test_lint_src_is_clean(self, capsys):
        rc = main(["lint", "src"])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_json_report(self, capsys, tmp_path):
        import json

        out = tmp_path / "lint.json"
        rc = main(["lint", "src", "--json", "--out", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["version"] == 1
        assert payload["findings"] == []

    def test_lint_finds_violations(self, capsys, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n")
        rc = main(["lint", str(tmp_path)])
        assert rc == 1
        assert "REP001" in capsys.readouterr().out

    def test_lint_unknown_rule_is_usage_error(self, capsys):
        rc = main(["lint", "src", "--select", "REP999"])
        assert rc == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_lint_missing_path_is_usage_error(self, capsys):
        rc = main(["lint", "definitely/not/here"])
        assert rc == 2
        assert "does not exist" in capsys.readouterr().err
