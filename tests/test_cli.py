"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.jobs == 3000
        assert args.servers == "30,40"
        assert args.seed == 0

    @pytest.mark.parametrize("cmd", ["fig8", "fig9", "fig10", "workload"])
    def test_subcommands_exist(self, cmd):
        args = build_parser().parse_args([cmd, "--jobs", "123", "--seed", "9"])
        assert args.command == cmd
        assert args.jobs == 123
        assert args.seed == 9

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig11"])


class TestExecution:
    def test_workload_prints_characterization(self, capsys, tmp_path):
        out = tmp_path / "trace.csv"
        rc = main(["workload", "--jobs", "200", "--out", str(out)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "offered load" in captured
        assert out.exists()
        from repro.workload.trace import read_trace_csv

        assert len(read_trace_csv(out)) == 200

    @pytest.mark.slow
    def test_table1_tiny_run(self, capsys):
        rc = main(["table1", "--jobs", "200", "--servers", "4", "--seed", "0"])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "round-robin" in captured
        assert "hierarchical" in captured
        assert "M=4" in captured

    @pytest.mark.slow
    def test_fig8_csv_to_file(self, tmp_path):
        out = tmp_path / "fig8.csv"
        rc = main(["fig8", "--jobs", "200", "--out", str(out)])
        assert rc == 0
        text = out.read_text()
        assert "acc_latency_s" in text
        assert "energy_kwh" in text
