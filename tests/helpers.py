"""Non-fixture test utilities."""

from __future__ import annotations

import numpy as np


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of the scalar function ``f()`` w.r.t. ``x``.

    ``f`` must read the *current contents* of ``x`` (which is perturbed in
    place and restored).
    """
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f()
        flat[i] = orig - eps
        lo = f()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2.0 * eps)
    return grad
