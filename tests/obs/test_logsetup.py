"""Tests for :mod:`repro.obs.logsetup`."""

from __future__ import annotations

import io
import logging

import pytest

from repro.obs.logsetup import ROOT_LOGGER, configure_logging, resolve_level


@pytest.fixture(autouse=True)
def _restore_repro_logger():
    logger = logging.getLogger(ROOT_LOGGER)
    handlers = list(logger.handlers)
    level = logger.level
    propagate = logger.propagate
    yield
    logger.handlers[:] = handlers
    logger.setLevel(level)
    logger.propagate = propagate


class TestResolveLevel:
    def test_default_is_warning(self):
        assert resolve_level() == logging.WARNING

    @pytest.mark.parametrize(
        "verbosity, expected",
        [(0, logging.WARNING), (1, logging.INFO), (2, logging.DEBUG),
         (5, logging.DEBUG), (-1, logging.WARNING)],
    )
    def test_verbosity_ladder_clamps(self, verbosity, expected):
        assert resolve_level(verbosity=verbosity) == expected

    def test_explicit_level_wins_over_verbosity(self):
        assert resolve_level("ERROR", verbosity=2) == logging.ERROR
        assert resolve_level("debug") == logging.DEBUG

    def test_numeric_level_passes_through(self):
        assert resolve_level(17) == 17

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            resolve_level("LOUD")


class TestConfigureLogging:
    def _repro_handlers(self):
        return [
            h
            for h in logging.getLogger(ROOT_LOGGER).handlers
            if getattr(h, "_repro_handler", False)
        ]

    def test_installs_one_handler_idempotently(self):
        configure_logging("INFO")
        configure_logging("DEBUG")
        configure_logging(verbosity=1)
        assert len(self._repro_handlers()) == 1

    def test_sets_level_and_stops_propagation(self):
        logger = configure_logging("DEBUG")
        assert logger.level == logging.DEBUG
        assert logger.propagate is False

    def test_messages_reach_the_configured_stream(self):
        stream = io.StringIO()
        configure_logging("INFO", stream=stream)
        logging.getLogger("repro.obs.test_child").info("hello from a module")
        assert "hello from a module" in stream.getvalue()

    def test_reconfigure_retunes_stream(self):
        first, second = io.StringIO(), io.StringIO()
        configure_logging("INFO", stream=first)
        configure_logging("INFO", stream=second)
        logging.getLogger("repro.obs.test_child").info("retuned")
        assert "retuned" not in first.getvalue()
        assert "retuned" in second.getvalue()
