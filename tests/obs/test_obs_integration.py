"""End-to-end guarantees of the telemetry subsystem.

Three properties the whole design hangs on:

* **parity** — profiling a cell changes *nothing* about its result:
  the profiled dict minus its ``"telemetry"`` key is bit-for-bit equal
  to the unprofiled one (telemetry never touches simulation state or
  RNG streams);
* **overhead** — an *enabled* instrumented run stays within
  ``REPRO_OBS_MAX_OVERHEAD`` (default 10%) of the uninstrumented one
  on the federation hot path;
* **coverage** — a profiled federated run attributes >= 90% of its
  ``run`` span to named phases, including the federation broker
  (``fed.route``), and renders cleanly.
"""

from __future__ import annotations

import gc
import os
import time

import pytest

from repro.core.baselines import AlwaysOnPolicy, LeastLoadedBroker
from repro.core.federation import make_federation_broker
from repro.obs import phase_coverage, render_report
from repro.obs import telemetry as obs
from repro.scenarios.orchestrator import run_cell
from repro.sim.federation import build_federation
from repro.sim.power import TariffModel
from repro.workload.mixtures import correlated_traces
from repro.workload.synthetic import SyntheticTraceConfig

MAX_OVERHEAD = float(os.environ.get("REPRO_OBS_MAX_OVERHEAD", "0.10"))


@pytest.fixture(autouse=True)
def _no_leaked_global_state():
    assert obs.active() is None
    yield
    assert obs.active() is None, "a test left telemetry enabled"


class TestParity:
    def test_profiled_cell_is_bit_identical(self):
        plain = run_cell("paper-default", "round-robin", n_jobs=120, seed=0)
        profiled = run_cell(
            "paper-default", "round-robin", n_jobs=120, seed=0, profile=True
        )
        snapshot = profiled.pop("telemetry")
        assert snapshot is not None
        assert profiled == plain

    def test_profiled_federated_cell_is_bit_identical(self):
        plain = run_cell("follow-the-sun", "round-robin", n_jobs=90, seed=0)
        profiled = run_cell(
            "follow-the-sun", "round-robin", n_jobs=90, seed=0, profile=True
        )
        snapshot = profiled.pop("telemetry")
        assert snapshot is not None
        assert profiled == plain

    def test_unprofiled_cell_carries_no_telemetry(self):
        result = run_cell("paper-default", "round-robin", n_jobs=60, seed=0)
        assert "telemetry" not in result


class TestOverhead:
    """The issue's gate: enabled telemetry <10% on a small federated run.

    Measured on the federation hot path (three 10-server sites with
    least-loaded cluster brokers, shifted time-of-use tariffs, and a
    price-greedy federation broker — the follow-the-sun dispatch stack
    of the acceptance scenario). Each repetition runs one plain and one
    instrumented arm back-to-back (order alternating, GC paused) and
    yields one overhead ratio; the gate applies to the *smallest* ratio
    observed. Machine noise — scheduler preemption, frequency drift,
    co-tenants — only ever inflates a ratio, so the cleanest pair is
    the best estimate of the instrumentation's intrinsic cost, while a
    real regression (extra work on every event) inflates every pair
    and still trips the gate.
    """

    N_JOBS = 1500
    SITES = 3
    REPS = 8

    @pytest.fixture(scope="class")
    def per_site(self):
        horizon = self.N_JOBS * 14.0
        streams = correlated_traces(
            [
                (
                    SyntheticTraceConfig(n_jobs=self.N_JOBS, horizon=horizon),
                    self.N_JOBS // self.SITES,
                )
            ]
            * self.SITES,
            horizon=horizon,
            seed=7,
            coupling=1.0,
        )
        offset = 0
        for stream in streams:
            for job in stream:
                job.job_id += offset
            offset += len(stream)
        return streams

    def _build(self, per_site):
        tou = TariffModel.time_of_use(
            peak_start_hour=16.0,
            peak_end_hour=21.0,
            peak_price=0.32,
            offpeak_price=0.08,
        )
        engine = build_federation(
            [
                dict(
                    name=f"site{i}",
                    num_servers=10,
                    broker=LeastLoadedBroker(),
                    policies=AlwaysOnPolicy(),
                    initially_on=True,
                    tariff=tou.shifted(i * 8 * 3600.0),
                )
                for i in range(self.SITES)
            ],
            broker=make_federation_broker("price-greedy", self.SITES),
        )
        return engine, [[job.copy() for job in s] for s in per_site]

    def _run_plain(self, per_site) -> float:
        engine, streams = self._build(per_site)
        t0 = time.perf_counter()
        engine.run(streams)
        return time.perf_counter() - t0

    def _run_instrumented(self, per_site) -> float:
        engine, streams = self._build(per_site)
        t0 = time.perf_counter()
        with obs.capture():
            engine.run(streams)
        return time.perf_counter() - t0

    def _measure(self, per_site) -> float:
        """Smallest instrumented/plain ratio over interleaved pairs."""
        # Untimed warmup pair (first runs eat cold caches and the CPU's
        # turbo transient), then alternate which arm goes first per
        # pair so frequency drift cannot systematically favour one arm.
        self._run_plain(per_site)
        self._run_instrumented(per_site)
        best = float("inf")
        gc.disable()
        try:
            for rep in range(self.REPS):
                if rep % 2 == 0:
                    plain = self._run_plain(per_site)
                    instrumented = self._run_instrumented(per_site)
                else:
                    instrumented = self._run_instrumented(per_site)
                    plain = self._run_plain(per_site)
                best = min(best, instrumented / plain)
        finally:
            gc.enable()
        return best - 1.0

    @pytest.mark.slow
    def test_enabled_overhead_within_budget(self, per_site):
        overhead = self._measure(per_site)
        if overhead > MAX_OVERHEAD:
            # One noise-relief re-measure (shared runners).
            overhead = min(overhead, self._measure(per_site))
        assert overhead <= MAX_OVERHEAD, (
            f"enabled telemetry costs {overhead:.1%} over the uninstrumented "
            f"run in the cleanest of {self.REPS} interleaved pairs (gate "
            f"{MAX_OVERHEAD:.0%}; {self.N_JOBS} jobs over {self.SITES} "
            "sites); rerun on a quiet machine or set REPRO_OBS_MAX_OVERHEAD"
        )


class TestFederatedCoverage:
    @pytest.fixture(scope="class")
    def snapshot(self) -> dict:
        result = run_cell(
            "follow-the-sun", "round-robin", n_jobs=120, seed=0, profile=True
        )
        return result["telemetry"]

    def test_phase_coverage_meets_acceptance_bar(self, snapshot):
        assert phase_coverage(snapshot) >= 0.9

    def test_federation_phases_present(self, snapshot):
        spans = snapshot["spans"]
        for name in ("run", "loop.event", "fed.route", "site.settle",
                     "site.dispatch", "run.finalize"):
            assert name in spans, f"missing span {name!r}"
        assert snapshot["counters"]["fed.decisions"] > 0
        assert snapshot["counters"]["jobs.completed"] > 0

    def test_queue_gauges_cover_every_site(self, snapshot):
        gauges = snapshot["gauges"]
        assert "events.queue_depth" in gauges
        for site in ("apac", "emea", "amer"):
            assert f"queue.{site}" in gauges

    def test_report_renders(self, snapshot):
        text = render_report(snapshot, top=5)
        assert "telemetry:" in text
        assert "fed.route" in text or "loop.event" in text
