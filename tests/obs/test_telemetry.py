"""Unit tests for :mod:`repro.obs.telemetry` (deterministic fake clock)."""

from __future__ import annotations

import pytest

from repro.obs import telemetry as obs


class FakeClock:
    """Manually advanced monotonic clock for exact span arithmetic."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def tel(clock) -> obs.Telemetry:
    return obs.Telemetry(clock=clock)


@pytest.fixture(autouse=True)
def _no_leaked_global_state():
    assert obs.active() is None
    yield
    assert obs.active() is None, "a test left telemetry enabled"


class TestSpans:
    def test_single_span_total_equals_self(self, tel, clock):
        with tel.span("a"):
            clock.advance(2.0)
        stat = tel.spans["a"]
        assert stat.calls == 1
        assert stat.total_s == 2.0
        assert stat.self_s == 2.0
        assert stat.max_s == 2.0

    def test_nested_span_self_time_excludes_children(self, tel, clock):
        with tel.span("outer"):
            clock.advance(1.0)
            with tel.span("inner"):
                clock.advance(3.0)
            clock.advance(0.5)
        assert tel.spans["outer"].total_s == 4.5
        assert tel.spans["outer"].self_s == 1.5
        assert tel.spans["inner"].self_s == 3.0

    def test_self_times_partition_the_root_exactly(self, tel, clock):
        # Three levels deep: the self times over the whole tree must sum
        # to the root's wall time — every instant attributed once.
        with tel.span("root"):
            clock.advance(1.0)
            for _ in range(3):
                with tel.span("mid"):
                    clock.advance(0.25)
                    with tel.span("leaf"):
                        clock.advance(0.5)
        total_self = sum(stat.self_s for stat in tel.spans.values())
        assert total_self == pytest.approx(tel.spans["root"].total_s)

    def test_recursive_same_name_spans(self, tel, clock):
        with tel.span("f"):
            clock.advance(1.0)
            with tel.span("f"):
                clock.advance(2.0)
        stat = tel.spans["f"]
        assert stat.calls == 2
        # total double-counts the nested call (standard profiler
        # semantics); self still partitions wall time exactly.
        assert stat.total_s == 5.0
        assert stat.self_s == 3.0

    def test_record_behaves_like_childless_span(self, tel, clock):
        with tel.span("outer"):
            clock.advance(1.0)
            tel.record("leaf", 0.25)
        assert tel.spans["leaf"].self_s == 0.25
        assert tel.spans["outer"].self_s == pytest.approx(0.75)

    def test_span_exit_propagates_exceptions(self, tel, clock):
        with pytest.raises(RuntimeError):
            with tel.span("a"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        # The span still closed and was accounted.
        assert tel.spans["a"].calls == 1
        assert not tel._stack

    def test_max_tracks_longest_call(self, tel, clock):
        for dt in (1.0, 3.0, 2.0):
            with tel.span("a"):
                clock.advance(dt)
        assert tel.spans["a"].max_s == 3.0


class TestCountersGaugesRates:
    def test_counter_accumulates(self, tel):
        tel.counter("x")
        tel.counter("x", 4)
        assert tel.counters["x"] == 5

    def test_gauge_summary(self, tel):
        for v in (5.0, 1.0, 3.0):
            tel.gauge("depth", v)
        stat = tel.gauges["depth"].as_dict()
        assert stat == {"last": 3.0, "min": 1.0, "max": 5.0, "mean": 3.0, "n": 3}

    def test_rate_over_window(self, tel, clock):
        for _ in range(10):
            clock.advance(1.0)
            tel.mark("jobs")
        # Marks at t=1..10; the 5 s window [5, 10] is cutoff-inclusive,
        # so it holds the marks at t=5..10 — six of them.
        assert tel.rate("jobs", window_s=5.0) == pytest.approx(6 / 5)

    def test_rate_clips_window_to_lifetime(self, tel, clock):
        clock.advance(2.0)
        tel.mark("jobs")
        tel.mark("jobs")
        # Only 2 s of lifetime: a 100 s window must not dilute the rate.
        assert tel.rate("jobs", window_s=100.0) == pytest.approx(1.0)

    def test_rate_unknown_and_invalid(self, tel):
        assert tel.rate("nope") == 0.0
        with pytest.raises(ValueError):
            tel.rate("jobs", window_s=0.0)

    def test_mark_counts_survive_deque_bound(self, tel, clock):
        for _ in range(obs._MARK_CAPACITY + 10):
            clock.advance(0.001)
            tel.mark("events")
        snap = tel.snapshot()
        assert snap["rates"]["events"]["count"] == obs._MARK_CAPACITY + 10


class TestSnapshot:
    def test_snapshot_shape(self, tel, clock):
        with tel.span("run"):
            clock.advance(1.0)
        tel.counter("jobs", 2)
        tel.gauge("depth", 7.0)
        tel.mark("jobs")
        snap = tel.snapshot()
        assert snap["schema"] == obs.TELEMETRY_SCHEMA
        assert snap["wall_s"] == 1.0
        assert snap["spans"]["run"]["total_s"] == 1.0
        assert snap["counters"] == {"jobs": 2}
        assert snap["gauges"]["depth"]["n"] == 1
        assert snap["rates"]["jobs"]["count"] == 1

    def test_snapshot_is_json_serializable(self, tel, clock):
        import json

        with tel.span("run"):
            clock.advance(1.0)
        json.dumps(tel.snapshot())


class TestModuleState:
    def test_disabled_by_default(self):
        assert obs.active() is None
        assert not obs.enabled()
        assert obs.get() is obs.NULL

    def test_null_is_inert(self):
        null = obs.NULL
        assert null.enabled is False
        with null.span("x"):
            pass
        null.record("x", 1.0)
        null.counter("x")
        null.gauge("x", 1.0)
        null.mark("x")
        assert null.rate("x") == 0.0
        assert null.elapsed_s() == 0.0
        assert null.snapshot() is None

    def test_enable_disable_roundtrip(self):
        tel = obs.enable()
        try:
            assert obs.active() is tel
            assert obs.get() is tel
            assert obs.enabled()
        finally:
            assert obs.disable() is tel
        assert obs.active() is None

    def test_capture_restores_previous(self):
        outer = obs.Telemetry()
        with obs.capture(outer):
            with obs.capture() as inner:
                assert obs.active() is inner
                assert inner is not outer
            assert obs.active() is outer
        assert obs.active() is None

    def test_capture_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.capture():
                raise RuntimeError("boom")
        assert obs.active() is None


class TestMergeSnapshots:
    def _snap(self, tel_builder) -> dict:
        clock = FakeClock()
        tel = obs.Telemetry(clock=clock)
        tel_builder(tel, clock)
        return tel.snapshot()

    def test_merge_sums_spans_and_counters(self):
        def build(tel, clock):
            with tel.span("run"):
                clock.advance(2.0)
            tel.counter("jobs", 3)
            tel.mark("jobs")

        merged = obs.merge_snapshots([self._snap(build), self._snap(build)])
        assert merged["n_runs"] == 2
        assert merged["wall_s"] == 4.0
        assert merged["spans"]["run"]["calls"] == 2
        assert merged["spans"]["run"]["total_s"] == 4.0
        assert merged["counters"]["jobs"] == 6
        assert merged["rates"]["jobs"]["count"] == 2
        assert merged["rates"]["jobs"]["per_s"] == pytest.approx(0.5)

    def test_merge_max_takes_max_and_gauges_weight_by_n(self):
        def slow(tel, clock):
            with tel.span("run"):
                clock.advance(5.0)
            tel.gauge("depth", 10.0)

        def fast(tel, clock):
            with tel.span("run"):
                clock.advance(1.0)
            tel.gauge("depth", 1.0)
            tel.gauge("depth", 1.0)

        merged = obs.merge_snapshots([self._snap(slow), self._snap(fast)])
        assert merged["spans"]["run"]["max_s"] == 5.0
        g = merged["gauges"]["depth"]
        assert g["min"] == 1.0
        assert g["max"] == 10.0
        assert g["n"] == 3
        assert g["mean"] == pytest.approx(4.0)

    def test_merge_skips_none_entries(self):
        def build(tel, clock):
            with tel.span("run"):
                clock.advance(1.0)

        merged = obs.merge_snapshots([None, self._snap(build), None])
        assert merged["n_runs"] == 1

    def test_merge_of_nothing_is_empty(self):
        merged = obs.merge_snapshots([None, None])
        assert merged["n_runs"] == 0
        assert merged["spans"] == {}
