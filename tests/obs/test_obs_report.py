"""Tests for :mod:`repro.obs.report` — rendering and artifact I/O."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    load_snapshot,
    phase_coverage,
    render_report,
    span_rows,
    write_snapshot,
)
from repro.obs import telemetry as obs


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def snapshot() -> dict:
    clock = FakeClock()
    tel = obs.Telemetry(clock=clock)
    with tel.span("run"):
        clock.advance(0.5)  # uninstrumented slack
        with tel.span("loop.event"):
            clock.advance(3.0)
        with tel.span("run.finalize"):
            clock.advance(1.5)
    tel.counter("jobs.completed", 42)
    tel.gauge("events.queue_depth", 7.0)
    tel.mark("jobs")
    return tel.snapshot()


class TestPhaseCoverage:
    def test_coverage_is_one_minus_root_self_share(self, snapshot):
        # 0.5 s of 5.0 s unattributed -> 90% coverage.
        assert phase_coverage(snapshot) == pytest.approx(0.9)

    def test_missing_root_is_zero(self, snapshot):
        assert phase_coverage(snapshot, root="nope") == 0.0
        assert phase_coverage({"spans": {}}) == 0.0

    def test_zero_duration_root_is_zero(self):
        tel = obs.Telemetry(clock=FakeClock())
        with tel.span("run"):
            pass
        assert phase_coverage(tel.snapshot()) == 0.0


class TestSpanRows:
    def test_sorted_by_self_time_descending(self, snapshot):
        names = [row[0] for row in span_rows(snapshot)]
        assert names == ["loop.event", "run.finalize", "run"]

    def test_top_limits_rows(self, snapshot):
        assert len(span_rows(snapshot, top=2)) == 2
        assert span_rows(snapshot, top=2)[0][0] == "loop.event"


class TestRenderReport:
    def test_report_sections(self, snapshot):
        text = render_report(snapshot)
        assert "telemetry: 5.000 s wall" in text
        assert "90.0% of the run span attributed to phases" in text
        assert "loop.event" in text
        assert "jobs.completed" in text
        assert "events.queue_depth" in text
        assert "Rate" in text

    def test_report_mentions_run_count_for_rollups(self, snapshot):
        merged = obs.merge_snapshots([snapshot, snapshot])
        assert "across 2 runs" in render_report(merged)

    def test_empty_snapshot_renders(self):
        text = render_report({"spans": {}, "wall_s": 0.0})
        assert "(no spans recorded)" in text


class TestArtifactIO:
    def test_round_trip(self, snapshot, tmp_path):
        path = write_snapshot(snapshot, tmp_path / "deep" / "telemetry.json")
        assert path.is_file()
        assert load_snapshot(path) == snapshot

    def test_load_rejects_non_snapshot(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ValueError, match="not a telemetry snapshot"):
            load_snapshot(bogus)
        bogus.write_text(json.dumps([1, 2]))
        with pytest.raises(ValueError, match="not a telemetry snapshot"):
            load_snapshot(bogus)

    def test_heal_discards_truncated_snapshot(self, snapshot, tmp_path):
        """Regression: a telemetry.json torn by a killed run used to make
        every later report command crash; heal mode discards it."""
        path = write_snapshot(snapshot, tmp_path / "telemetry.json")
        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # truncate, as SIGKILL would
        assert load_snapshot(path, heal=True) is None
        assert not path.exists()

    def test_heal_discards_wrong_shape(self, tmp_path):
        path = tmp_path / "telemetry.json"
        path.write_text(json.dumps([1, 2]))
        assert load_snapshot(path, heal=True) is None
        assert not path.exists()

    def test_without_heal_truncation_still_raises(self, snapshot, tmp_path):
        path = write_snapshot(snapshot, tmp_path / "telemetry.json")
        path.write_text(path.read_text()[:10])
        with pytest.raises(json.JSONDecodeError):
            load_snapshot(path)
        assert path.exists()  # non-heal reads never delete evidence

    def test_heal_passes_valid_snapshots_through(self, snapshot, tmp_path):
        path = write_snapshot(snapshot, tmp_path / "telemetry.json")
        assert load_snapshot(path, heal=True) == snapshot
