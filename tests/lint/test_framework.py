"""Engine mechanics: discovery, selection, suppressions, renderers."""

import json

import pytest

from repro.lint import LintUsageError, run_lint
from repro.lint.engine import package_relative

from tests.lint.conftest import rule_ids


def lint(tree, **kwargs):
    return run_lint([tree.root], root=tree.root, **kwargs)


class TestDiscoveryAndExitCodes:
    def test_clean_tree_exits_zero(self, tree):
        tree("sim/engine.py", "x = 1\n")
        report = lint(tree)
        assert report.exit_code == 0
        assert report.findings == []
        assert report.n_files == 1

    def test_findings_exit_one(self, tree):
        tree("sim/engine.py", "import random\n")
        assert lint(tree).exit_code == 1

    def test_missing_path_is_a_usage_error(self, tmp_path):
        with pytest.raises(LintUsageError, match="does not exist"):
            run_lint([tmp_path / "nope"], root=tmp_path)

    def test_unknown_rule_is_a_usage_error(self, tree):
        tree("sim/engine.py", "x = 1\n")
        with pytest.raises(LintUsageError, match="REP999"):
            lint(tree, select=["REP999"])

    def test_pycache_is_skipped(self, tree):
        tree("sim/engine.py", "x = 1\n")
        tree("sim/__pycache__/junk.py", "import random\n")
        assert lint(tree).n_files == 1

    def test_duplicate_paths_deduplicate(self, tree):
        path = tree("sim/engine.py", "x = 1\n")
        report = run_lint([tree.root, path], root=tree.root)
        assert report.n_files == 1

    def test_syntax_error_is_a_finding_not_a_crash(self, tree):
        tree("sim/broken.py", "def f(:\n")
        report = lint(tree)
        assert report.exit_code == 1
        assert report.parse_errors == 1
        assert rule_ids(report) == ["REP000"]

    def test_select_runs_only_named_rules(self, tree):
        tree(
            "sim/engine.py",
            """
            import random
            import time

            def f():
                return time.time()
            """,
        )
        assert rule_ids(lint(tree, select=["REP001"])) == ["REP001"]
        assert rule_ids(lint(tree, select=["REP002"])) == ["REP002"]


class TestPackageRelative:
    def test_cuts_at_deepest_repro_dir(self, tmp_path):
        path = tmp_path / "src" / "repro" / "sim" / "engine.py"
        path.parent.mkdir(parents=True)
        path.write_text("x = 1\n")
        assert package_relative(path, None) == "sim/engine.py"

    def test_explicit_root_wins(self, tmp_path):
        path = tmp_path / "sim" / "engine.py"
        path.parent.mkdir(parents=True)
        path.write_text("x = 1\n")
        assert package_relative(path, tmp_path) == "sim/engine.py"


class TestSuppressionHygiene:
    def test_missing_reason_is_a_finding_and_does_not_suppress(self, tree):
        tree("sim/engine.py", "import random  # repro: allow[REP001]\n")
        report = lint(tree)
        assert sorted(rule_ids(report)) == ["REP000", "REP001"]

    def test_unknown_rule_id_is_a_finding(self, tree):
        tree("sim/engine.py", "x = 1  # repro: allow[REP042] — why not\n")
        report = lint(tree)
        assert rule_ids(report) == ["REP000"]
        assert "unknown rule" in report.findings[0].message

    def test_malformed_comment_is_a_finding(self, tree):
        tree("sim/engine.py", "x = 1  # repro: allwo[REP001] — typo\n")
        report = lint(tree)
        assert rule_ids(report) == ["REP000"]
        assert "malformed" in report.findings[0].message

    def test_stale_suppression_is_a_finding(self, tree):
        tree("sim/engine.py", "x = 1  # repro: allow[REP001] — nothing here\n")
        report = lint(tree)
        assert rule_ids(report) == ["REP000"]
        assert "unused" in report.findings[0].message

    def test_rep000_cannot_be_suppressed(self, tree):
        tree("sim/engine.py", "x = 1  # repro: allow[REP000] — meta\n")
        report = lint(tree)
        assert rule_ids(report) == ["REP000"]
        assert "cannot" in report.findings[0].message

    def test_multi_rule_allow_covers_both(self, tree):
        tree(
            "sim/engine.py",
            """
            import time

            import numpy as np

            def f():
                np.random.seed(int(time.time()))  # repro: allow[REP001, REP002] — demo
            """,
        )
        report = lint(tree)
        assert report.findings == []
        assert report.suppressions_used == 2

    def test_docstring_mention_is_not_a_suppression(self, tree):
        tree(
            "sim/engine.py",
            '''
            """Write: # repro: allow[REP001] — reason."""
            x = 1
            ''',
        )
        assert lint(tree).findings == []

    def test_select_subset_does_not_flag_other_rules_allows(self, tree):
        # A REP002 allow is not "stale" on a run that never ran REP002.
        tree(
            "sim/engine.py",
            """
            import time

            def f():
                return time.time()  # repro: allow[REP002] — benchmark harness
            """,
        )
        assert lint(tree, select=["REP001"]).findings == []


class TestRenderers:
    def test_text_lists_findings_with_locations(self, tree):
        path = tree("sim/engine.py", "import random\n")
        text = lint(tree).render_text()
        assert f"{path}:1:0 REP001" in text
        assert "1 finding(s) in 1 file(s) (REP001 x1)" in text

    def test_text_clean_summary(self, tree):
        tree("sim/engine.py", "x = 1\n")
        assert "clean: 1 file(s)" in lint(tree).render_text()

    def test_json_shape(self, tree):
        tree("sim/engine.py", "import random\n")
        payload = json.loads(lint(tree).render_json())
        assert payload["version"] == 1
        assert payload["files"] == 1
        assert payload["counts"] == {"REP001": 1}
        (finding,) = payload["findings"]
        assert finding["rule"] == "REP001"
        assert finding["line"] == 1
        assert finding["path"].endswith("sim/engine.py")

    def test_findings_sorted_by_location(self, tree):
        tree("sim/a.py", "import random\n")
        tree("sim/b.py", "import random\nimport random\n")
        report = lint(tree)
        keys = [(f.path, f.line) for f in report.findings]
        assert keys == sorted(keys)
