"""Per-rule fixtures: each rule fires on the violation, stays quiet on
the compliant spelling, and honors a justified suppression."""

from repro.lint import run_lint

from tests.lint.conftest import rule_ids


def lint(tree, select=None):
    return run_lint([tree.root], root=tree.root, select=select)


class TestSeedHygiene:
    def test_flags_stdlib_random_import(self, tree):
        tree("sim/engine.py", "import random\n")
        assert rule_ids(lint(tree)) == ["REP001"]

    def test_flags_legacy_np_random_attribute(self, tree):
        tree(
            "core/predictor.py",
            """
            import numpy as np

            def draw():
                np.random.seed(0)
                return np.random.rand(3)
            """,
        )
        report = lint(tree)
        assert rule_ids(report) == ["REP001", "REP001"]

    def test_flags_legacy_from_import(self, tree):
        tree("workload/trace.py", "from numpy.random import randint\n")
        assert rule_ids(lint(tree)) == ["REP001"]

    def test_allows_seeded_generator_surface(self, tree):
        tree(
            "sim/engine.py",
            """
            import numpy as np
            from numpy.random import SeedSequence, default_rng

            def draw(seed):
                rng = np.random.default_rng(SeedSequence(seed))
                return rng.random()
            """,
        )
        assert lint(tree).findings == []

    def test_out_of_scope_files_are_exempt(self, tree):
        tree("harness/report.py", "import random\n")
        assert lint(tree).findings == []

    def test_suppression_with_reason_is_honored(self, tree):
        tree(
            "sim/engine.py",
            "import random  # repro: allow[REP001] — docs-only example\n",
        )
        report = lint(tree)
        assert report.findings == []
        assert report.suppressions_used == 1


class TestWallClockBan:
    def test_flags_time_time_in_sim(self, tree):
        tree(
            "sim/engine.py",
            """
            import time

            def now():
                return time.time()
            """,
        )
        assert rule_ids(lint(tree)) == ["REP002"]

    def test_flags_from_time_import(self, tree):
        tree("core/state.py", "from time import perf_counter\n")
        assert rule_ids(lint(tree)) == ["REP002"]

    def test_flags_datetime_now(self, tree):
        tree(
            "faults/plan.py",
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """,
        )
        assert rule_ids(lint(tree)) == ["REP002"]

    def test_obs_is_exempt(self, tree):
        tree(
            "obs/clock.py",
            """
            import time

            def now():
                return time.perf_counter()
            """,
        )
        assert lint(tree).findings == []

    def test_orchestrator_timeout_machinery_is_exempt(self, tree):
        tree(
            "scenarios/orchestrator.py",
            """
            import time

            def deadline(budget):
                return time.monotonic() + budget
            """,
        )
        assert lint(tree).findings == []

    def test_simulated_clock_is_fine(self, tree):
        tree(
            "sim/engine.py",
            """
            def advance(queue):
                event = queue.pop()
                return event.time
            """,
        )
        assert lint(tree).findings == []


class TestFrozenSpecMutation:
    def test_flags_setattr_outside_post_init(self, tree):
        tree(
            "scenarios/specs.py",
            """
            def patch(spec, value):
                object.__setattr__(spec, "weight", value)
            """,
        )
        assert rule_ids(lint(tree, select=["REP003"])) == ["REP003"]

    def test_post_init_is_the_escape_hatch(self, tree):
        tree(
            "scenarios/specs.py",
            """
            class Spec:
                def __post_init__(self):
                    object.__setattr__(self, "sites", tuple(self.sites))
            """,
        )
        assert lint(tree, select=["REP003"]).findings == []

    def test_nested_helper_inside_post_init_is_covered(self, tree):
        tree(
            "faults/spec.py",
            """
            class Spec:
                def __post_init__(self):
                    def normalize():
                        object.__setattr__(self, "x", 1)
                    normalize()
            """,
        )
        assert lint(tree, select=["REP003"]).findings == []

    def test_suppressed_with_reason(self, tree):
        tree(
            "scenarios/store.py",
            """
            def thaw(spec):
                object.__setattr__(spec, "x", 1)  # repro: allow[REP003] — shim
            """,
        )
        report = lint(tree, select=["REP003"])
        assert report.findings == []
        assert report.suppressions_used == 1


class TestSchemaLiteralDrift:
    def test_flags_literal_in_dict(self, tree):
        tree("scenarios/resume.py", 'payload = {"schema": 6}\n')
        assert rule_ids(lint(tree, select=["REP005"])) == ["REP005"]

    def test_flags_comparison_against_literal(self, tree):
        tree(
            "scenarios/registry.py",
            """
            def check(record):
                return record["schema"] == 6
            """,
        )
        assert rule_ids(lint(tree, select=["REP005"])) == ["REP005"]

    def test_flags_shadow_constant(self, tree):
        tree("harness/runner.py", "SCHEMA_VERSION = 6\n")
        assert rule_ids(lint(tree, select=["REP005"])) == ["REP005"]

    def test_canonical_modules_are_exempt(self, tree):
        tree("scenarios/store.py", "SCHEMA_VERSION = 6\n")
        tree("scenarios/checkpoints.py", "CHECKPOINT_SCHEMA_VERSION = 1\n")
        tree("obs/telemetry.py", "TELEMETRY_SCHEMA = 1\n")
        assert lint(tree, select=["REP005"]).findings == []

    def test_imported_constant_is_fine(self, tree):
        tree(
            "scenarios/resume.py",
            """
            from repro.scenarios.store import SCHEMA_VERSION

            def payload():
                return {"schema": SCHEMA_VERSION}
            """,
        )
        assert lint(tree, select=["REP005"]).findings == []

    def test_unrelated_int_literals_are_fine(self, tree):
        tree(
            "scenarios/resume.py",
            """
            def check(record):
                return record["n_jobs"] == 600 and {"retries": 3}
            """,
        )
        assert lint(tree, select=["REP005"]).findings == []


class TestUnorderedSetIteration:
    def test_flags_for_over_set_literal(self, tree):
        tree(
            "sim/engine.py",
            """
            def drain(a, b, c):
                for server in {a, b, c}:
                    server.stop()
            """,
        )
        assert rule_ids(lint(tree, select=["REP006"])) == ["REP006"]

    def test_flags_comprehension_over_set_bound_name(self, tree):
        tree(
            "core/dispatch.py",
            """
            def pick(jobs):
                pending = set(jobs)
                return [j.id for j in pending]
            """,
        )
        assert rule_ids(lint(tree, select=["REP006"])) == ["REP006"]

    def test_sorted_set_is_the_contract(self, tree):
        tree(
            "sim/engine.py",
            """
            def drain(servers):
                pending = set(servers)
                for server in sorted(pending):
                    server.stop()
            """,
        )
        assert lint(tree, select=["REP006"]).findings == []

    def test_outside_sim_core_is_exempt(self, tree):
        tree(
            "harness/report.py",
            """
            def names(rows):
                for row in {r.name for r in rows}:
                    yield row
            """,
        )
        assert lint(tree, select=["REP006"]).findings == []


class TestContentKeyCoverage:
    def _spec_modules(self, tree, *, pop_tariff=False, orphan=False, asdict=True):
        tree(
            "faults/spec.py",
            """
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class SiteOutageSpec:
                site: int = 0


            @dataclass(frozen=True)
            class FaultSpec:
                rate: float = 0.0
                site_outages: tuple[SiteOutageSpec, ...] = ()
            """
            + (
                """

            @dataclass(frozen=True)
            class OrphanSpec:
                knob: float = 1.0
            """
                if orphan
                else ""
            ),
        )
        body = (
            "payload = asdict(self)" if asdict else "payload = {'sites': []}"
        )
        tree(
            "scenarios/specs.py",
            f"""
            from dataclasses import asdict, dataclass

            from repro.faults.spec import FaultSpec


            @dataclass(frozen=True)
            class TraceReplaySpec:
                paths: tuple = ()


            @dataclass(frozen=True)
            class WorkloadSpec:
                replay: "TraceReplaySpec | None" = None


            @dataclass(frozen=True)
            class SiteSpec:
                name: str = "s"
                weight: float = 1.0


            @dataclass(frozen=True)
            class ScenarioSpec:
                name: str = "x"
                description: str = ""
                workload: WorkloadSpec = WorkloadSpec()
                sites: tuple[SiteSpec, ...] = ()
                faults: "FaultSpec | None" = None
                tariff: object = None

                def content_dict(self) -> dict:
                    {body}
                    payload.pop("name")
                    payload.pop("description")
                    {'payload.pop("tariff")' if pop_tariff else "pass"}
                    return payload
            """,
        )

    def test_compliant_spec_modules_are_clean(self, tree):
        self._spec_modules(tree)
        assert lint(tree, select=["REP004"]).findings == []

    def test_pop_of_behavioral_field_is_flagged(self, tree):
        self._spec_modules(tree, pop_tariff=True)
        report = lint(tree, select=["REP004"])
        assert rule_ids(report) == ["REP004"]
        assert "tariff" in report.findings[0].message

    def test_orphan_frozen_spec_is_flagged(self, tree):
        self._spec_modules(tree, orphan=True)
        report = lint(tree, select=["REP004"])
        assert rule_ids(report) == ["REP004"]
        assert "OrphanSpec" in report.findings[0].message

    def test_hand_rolled_payload_is_flagged(self, tree):
        self._spec_modules(tree, asdict=False)
        report = lint(tree, select=["REP004"])
        assert any("asdict" in f.message for f in report.findings)

    def test_unfrozen_required_class_is_flagged(self, tree):
        self._spec_modules(tree)
        path = tree.root / "scenarios" / "specs.py"
        path.write_text(
            path.read_text().replace(
                "@dataclass(frozen=True)\nclass SiteSpec:",
                "@dataclass\nclass SiteSpec:",
            )
        )
        report = lint(tree, select=["REP004"])
        assert any("frozen" in f.message for f in report.findings)

    def test_partial_scan_skips_the_audit(self, tree):
        # Linting one unrelated file must not report the spec modules
        # missing — the cross-module audit needs the full spec set.
        tree("harness/report.py", "x = 1\n")
        assert lint(tree, select=["REP004"]).findings == []

    def test_training_key_may_drop_declared_fields_only(self, tree):
        tree(
            "scenarios/checkpoints.py",
            """
            def training_request(request):
                scenario = dict(request["scenario"])
                scenario.pop("tariff")
                scenario.pop("record_every")
                return scenario
            """,
        )
        report = lint(tree, select=["REP004"])
        assert rule_ids(report) == ["REP004"]
        assert "record_every" in report.findings[0].message
