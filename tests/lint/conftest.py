"""Shared fixture helpers for the auditor tests.

Rules scope on package-relative paths, so fixture trees are laid out
like the package (``sim/``, ``obs/``, ``scenarios/``) under a tmp root
passed to :func:`repro.lint.run_lint` via ``root=``.
"""

import textwrap
from pathlib import Path

import pytest


@pytest.fixture
def tree(tmp_path):
    """Write dedented sources into a package-shaped tmp tree and lint it."""

    def write(rel: str, source: str) -> Path:
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return path

    write.root = tmp_path
    return write


def rule_ids(report):
    """The rule ids of a report's findings, in report order."""
    return [finding.rule for finding in report.findings]
