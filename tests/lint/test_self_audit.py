"""The auditor's own gate: the live tree must satisfy its invariants.

This is the day-one contract behind the CI ``lint-invariants`` job — if
a change introduces a violation (or an unjustified suppression), this
test fails locally before CI does.
"""

from pathlib import Path

from repro.lint import RULES, SUPPRESSION_RULE, run_lint
from repro.lint.rules import rules_by_id

SRC = Path(__file__).resolve().parents[2] / "src"


class TestSelfAudit:
    def test_live_tree_is_clean(self):
        report = run_lint([SRC / "repro"])
        assert report.findings == [], report.render_text()
        assert report.exit_code == 0
        assert report.parse_errors == 0

    def test_all_rules_ran(self):
        report = run_lint([SRC / "repro"])
        expected = {rule.id for rule in RULES} | {SUPPRESSION_RULE}
        assert set(report.selected) == expected

    def test_spec_modules_were_in_the_scanned_set(self):
        # REP004 silently skips when the spec modules are absent; pin
        # that the self-audit actually exercises it.
        assert (SRC / "repro" / "scenarios" / "specs.py").is_file()
        assert (SRC / "repro" / "faults" / "spec.py").is_file()

    def test_rule_registry_is_stable(self):
        assert sorted(rules_by_id()) == [
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
        ]
