"""Tests for repro.harness.tradeoff."""

import pytest

from repro.harness.runner import RunResult
from repro.harness.tradeoff import (
    TradeoffPoint,
    curve,
    frontier_savings,
    pareto_front,
    render_tradeoff_csv,
)


def pt(curve_name, param, latency, energy):
    return TradeoffPoint(curve_name, param, latency, energy)


@pytest.fixture
def synthetic_points():
    """Hierarchical curve strictly dominates the fixed-60 curve."""
    return [
        pt("hierarchical", 0.1, 100.0, 10.0),
        pt("hierarchical", 0.5, 150.0, 6.0),
        pt("hierarchical", 0.9, 250.0, 4.0),
        pt("fixed-60", 60.0, 130.0, 10.0),
        pt("fixed-60", 60.0, 200.0, 6.0),
        pt("fixed-60", 60.0, 320.0, 4.0),
    ]


class TestCurveHelpers:
    def test_curve_filters_and_sorts(self, synthetic_points):
        c = curve(synthetic_points, "hierarchical")
        assert [p.parameter for p in c] == [0.9, 0.5, 0.1]  # by energy asc

    def test_pareto_front_drops_dominated(self):
        points = [
            pt("h", 1, 100.0, 5.0),
            pt("h", 2, 90.0, 6.0),
            pt("h", 3, 120.0, 7.0),  # dominated by both
        ]
        front = pareto_front(points)
        assert {p.parameter for p in front} == {1, 2}

    def test_pareto_front_keeps_incomparable(self):
        points = [pt("h", 1, 100.0, 5.0), pt("h", 2, 50.0, 9.0)]
        assert len(pareto_front(points)) == 2


class TestFrontierSavings:
    def test_dominating_curve_positive_savings(self, synthetic_points):
        savings = frontier_savings(synthetic_points, "hierarchical", "fixed-60")
        # Max over our samples: at energy 6, ours 150 vs baseline 200 -> 25%.
        assert savings["latency_saving"] == pytest.approx((200 - 150) / 200)
        assert savings["energy_saving"] > 0.0

    def test_missing_curve_raises(self, synthetic_points):
        with pytest.raises(ValueError):
            frontier_savings(synthetic_points, "hierarchical", "fixed-90")

    def test_disjoint_hulls_zero_savings(self):
        points = [
            pt("hierarchical", 0.5, 100.0, 1.0),
            pt("fixed-60", 60.0, 500.0, 50.0),
        ]
        savings = frontier_savings(points)
        assert savings == {"latency_saving": 0.0, "energy_saving": 0.0}

    def test_from_result_conversion(self):
        result = RunResult(
            name="hierarchical", num_servers=30, n_jobs=1000, energy_kwh=2.0,
            acc_latency=1e5, mean_latency=100.0, average_power=500.0,
            final_time=1000.0, latency_series=(), energy_series=(),
        )
        point = TradeoffPoint.from_result("hierarchical", 0.5, result)
        assert point.energy_per_job_wh == pytest.approx(2.0)
        assert point.mean_latency == 100.0


class TestRender:
    def test_csv(self, synthetic_points):
        text = render_tradeoff_csv(synthetic_points)
        header = "curve,parameter,energy_wh_per_job,mean_latency_s"
        assert text.splitlines()[0] == header
        assert len(text.splitlines()) == 7
