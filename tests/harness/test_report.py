"""Tests for repro.harness.report."""

import pytest

from repro.harness.report import format_csv, format_table


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[1].strip().startswith("-")
        # All rows same rendered width.
        assert len({len(line) for line in lines}) == 1

    def test_cell_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_headers_only(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestFormatCsv:
    def test_rows(self):
        text = format_csv(["a", "b"], [[1, 2], [3, 4]])
        assert text == "a,b\n1,2\n3,4"

    def test_empty_rows(self):
        assert format_csv(["a"], []) == "a"
