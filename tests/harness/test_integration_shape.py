"""End-to-end shape tests (slow): the paper's qualitative claims at
reduced scale.

These run the full training + evaluation protocol on a small cluster;
they assert orderings with generous tolerances because RL training at
this scale is stochastic. The benchmark suite re-checks the same shapes
at 5-10x this scale.
"""

import pytest

from repro.harness.claims import evaluate_claims
from repro.harness.table1 import Table1Row, default_config, make_traces
from repro.harness.runner import standard_protocol

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def small_results():
    config = default_config(6, seed=0)
    eval_jobs, train_traces = make_traces(1200, 6, seed=0)
    return standard_protocol(
        ("round-robin", "drl-only", "hierarchical", "least-loaded"),
        eval_jobs,
        config,
        train_traces,
    )


class TestPaperShape:
    def test_round_robin_lowest_latency(self, small_results):
        latencies = {n: r.mean_latency for n, r in small_results.items()}
        assert latencies["round-robin"] <= min(
            latencies["drl-only"], latencies["hierarchical"]
        )

    def test_drl_systems_save_energy(self, small_results):
        rr = small_results["round-robin"].energy_kwh
        assert small_results["drl-only"].energy_kwh < rr
        assert small_results["hierarchical"].energy_kwh < rr

    def test_all_jobs_complete_everywhere(self, small_results):
        assert {r.n_jobs for r in small_results.values()} == {1200}

    def test_claims_pipeline_runs(self, small_results):
        rows = [
            Table1Row.from_result(r)
            for r in small_results.values()
            if r.name in ("round-robin", "drl-only", "hierarchical")
        ]
        report = evaluate_claims(rows, num_servers=6)
        assert report.energy_saving_vs_round_robin > 0.0

    def test_always_on_baselines_match_energy_floor(self, small_results):
        """least-loaded and round-robin both keep 6 servers always on:
        their energies differ only by the utilization-dependent part."""
        rr = small_results["round-robin"].energy_kwh
        ll = small_results["least-loaded"].energy_kwh
        assert ll == pytest.approx(rr, rel=0.15)
