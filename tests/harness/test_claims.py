"""Tests for repro.harness.claims."""

import pytest

from repro.harness.claims import evaluate_claims
from repro.harness.table1 import Table1Row


@pytest.fixture
def paper_rows():
    """The paper's actual Table I numbers."""
    return [
        Table1Row("round-robin", 30, 441.47, 85.20, 2627.79),
        Table1Row("drl-only", 30, 242.25, 109.73, 1441.96),
        Table1Row("hierarchical", 30, 203.21, 92.53, 1209.58),
        Table1Row("round-robin", 40, 561.13, 85.20, 3340.06),
        Table1Row("drl-only", 40, 273.41, 108.76, 1627.44),
        Table1Row("hierarchical", 40, 224.51, 94.26, 1336.37),
    ]


class TestEvaluateClaims:
    def test_reproduces_headline_percentages_m30(self, paper_rows):
        report = evaluate_claims(paper_rows, num_servers=30)
        # The paper claims 53.97% power/energy saving vs round-robin.
        assert report.energy_saving_vs_round_robin == pytest.approx(0.5397, abs=0.001)
        assert report.power_saving_vs_round_robin == pytest.approx(0.5397, abs=0.001)
        # 16.12% energy saving vs DRL-only.
        assert report.energy_saving_vs_drl == pytest.approx(0.1612, abs=0.002)
        # ~15.7% latency saving vs DRL-only (paper rounds to 16.67%).
        assert report.latency_saving_vs_drl == pytest.approx(0.157, abs=0.01)

    def test_reproduces_headline_percentages_m40(self, paper_rows):
        report = evaluate_claims(paper_rows, num_servers=40)
        assert report.energy_saving_vs_round_robin == pytest.approx(0.5999, abs=0.001)
        assert report.energy_saving_vs_drl == pytest.approx(0.1789, abs=0.002)
        assert report.latency_saving_vs_drl == pytest.approx(0.1332, abs=0.005)

    def test_missing_system_raises(self, paper_rows):
        with pytest.raises(ValueError, match="no Table-I row"):
            evaluate_claims(paper_rows[:2], num_servers=30)

    def test_summary_text(self, paper_rows):
        text = evaluate_claims(paper_rows, num_servers=30).summary()
        assert "M=30" in text
        assert "%" in text

    def test_zero_baseline_guard(self):
        rows = [
            Table1Row("round-robin", 4, 0.0, 0.0, 0.0),
            Table1Row("drl-only", 4, 0.0, 0.0, 0.0),
            Table1Row("hierarchical", 4, 1.0, 1.0, 1.0),
        ]
        report = evaluate_claims(rows, num_servers=4)
        assert report.energy_saving_vs_round_robin == 0.0
