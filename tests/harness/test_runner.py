"""Tests for repro.harness.runner."""

import numpy as np
import pytest

from repro.core.baselines import FixedTimeoutPolicy
from repro.core.global_tier import DRLGlobalBroker
from repro.harness.runner import (
    SYSTEM_NAMES,
    clone_global_broker,
    make_system,
    needs_global_tier,
    run_system,
    standard_protocol,
    train_global_prototype,
)
from repro.sim.job import Job


def jobs_burst(n, spacing=30.0):
    return [Job(i, i * spacing, 40.0, (0.3, 0.1, 0.1)) for i in range(n)]


@pytest.fixture
def train_traces():
    return [jobs_burst(15), jobs_burst(15)]


class TestNeedsGlobalTier:
    @pytest.mark.parametrize("name,expected", [
        ("round-robin", False),
        ("random", False),
        ("least-loaded", False),
        ("packing", False),
        ("drl-only", True),
        ("drl+fixed-60", True),
        ("hierarchical", True),
    ])
    def test_classification(self, name, expected):
        assert needs_global_tier(name) is expected


class TestMakeSystem:
    @pytest.mark.parametrize(
        "name", ["round-robin", "random", "least-loaded", "packing"]
    )
    def test_static_baselines_build(self, small_config, name):
        system = make_system(name, small_config)
        assert system.name == name

    def test_unknown_name_raises(self, small_config):
        with pytest.raises(ValueError, match="unknown system"):
            make_system("mystery", small_config)

    def test_fixed_timeout_parse(self, small_config, train_traces):
        system = make_system(
            "drl+fixed-45", small_config, train_traces, pretrain=False, online_epochs=0
        )
        assert isinstance(system.policies, FixedTimeoutPolicy)
        assert system.policies.timeout == 45.0

    def test_drl_only_without_prototype_trains_fresh(self, small_config, train_traces):
        system = make_system(
            "drl-only", small_config, train_traces, pretrain=False, online_epochs=1
        )
        broker = system.broker
        assert isinstance(broker, DRLGlobalBroker)
        assert broker.decision_epochs > 0  # saw the training traces

    def test_local_w_override(self, small_config, train_traces):
        system = make_system(
            "hierarchical", small_config, train_traces,
            pretrain=False, online_epochs=0, local_epochs=0, local_w=0.77,
        )
        assert system.config.local_tier.w == 0.77

    def test_prototype_cloned_not_shared(self, small_config, train_traces):
        proto = train_global_prototype(
            small_config, train_traces, pretrain=False, online_epochs=1
        )
        a = make_system("drl-only", small_config, global_prototype=proto)
        b = make_system("drl-only", small_config, global_prototype=proto)
        assert a.broker is not proto
        assert a.broker is not b.broker
        assert a.broker.qnet is not b.broker.qnet


class TestCloneGlobalBroker:
    def test_same_predictions_independent_training(
        self, small_config, train_traces, rng
    ):
        proto = train_global_prototype(
            small_config, train_traces, pretrain=False, online_epochs=1
        )
        clone = clone_global_broker(proto, small_config)
        state = rng.uniform(size=proto.encoder.state_dim)
        assert np.allclose(proto.qnet.q_values(state), clone.qnet.q_values(state))
        assert clone.epsilon == proto.epsilon
        assert len(clone.replay) == 0


class TestRunAndProtocol:
    def test_run_system_preserves_input_jobs(self, small_config):
        system = make_system("round-robin", small_config)
        jobs = jobs_burst(10)
        result = run_system(system, jobs)
        assert result.n_jobs == 10
        assert all(j.server_id is None for j in jobs)  # copies were run

    def test_run_result_units(self, small_config):
        system = make_system("round-robin", small_config)
        result = run_system(system, jobs_burst(10))
        assert result.acc_latency_1e6 == pytest.approx(result.acc_latency / 1e6)
        assert result.energy_per_job_wh == pytest.approx(
            result.energy_kwh * 1000 / result.n_jobs
        )

    def test_standard_protocol_shares_prototype(self, small_config, train_traces):
        results = standard_protocol(
            ("round-robin", "drl-only", "hierarchical"),
            jobs_burst(20),
            small_config,
            train_traces,
            pretrain=False,
            online_epochs=1,
            local_epochs=1,
        )
        assert set(results) == {"round-robin", "drl-only", "hierarchical"}
        for result in results.values():
            assert result.n_jobs == 20

    def test_series_attached(self, small_config):
        system = make_system("round-robin", small_config)
        result = run_system(system, jobs_burst(10), record_every=5)
        assert result.latency_series[-1][0] == 10
        assert result.energy_series[-1][0] == 10


class TestScenarioConstruction:
    def test_make_scenario_system_from_name(self):
        from repro.harness.runner import make_scenario_system

        system, eval_jobs, events = make_scenario_system(
            "packing", "maintenance-churn", n_jobs=60, seed=1
        )
        assert system.name == "packing"
        assert system.config.num_servers == 30
        assert len(eval_jobs) == 60
        assert events  # churn scenario schedules drains
        result = run_system(system, eval_jobs, capacity_events=events)
        assert result.n_jobs == 60

    def test_descriptions_cover_system_names(self):
        from repro.harness.runner import SYSTEM_DESCRIPTIONS

        for name in SYSTEM_NAMES:
            assert name in SYSTEM_DESCRIPTIONS
