"""Tests for repro.harness.table1."""

import pytest

from repro.harness.runner import RunResult
from repro.harness.table1 import (
    Table1Row,
    default_config,
    make_traces,
    render_table1,
    run_table1,
)


class TestDefaultConfig:
    @pytest.mark.parametrize("m,k", [(30, 3), (40, 4), (6, 3), (8, 4), (7, 1)])
    def test_group_choice_divides(self, m, k):
        config = default_config(m)
        assert config.global_tier.num_groups == k
        assert m % config.global_tier.num_groups == 0


class TestMakeTraces:
    def test_counts(self):
        eval_jobs, train = make_traces(300, 6, seed=0, n_train_segments=2)
        assert len(eval_jobs) == 300
        assert len(train) == 2
        assert len(train[0]) == 200  # floor of 0.5 * 300 clamped to >= 200

    def test_rate_scales_down_for_small_clusters(self):
        small_eval, _ = make_traces(300, 6, seed=0)
        big_eval, _ = make_traces(300, 30, seed=0)
        # Same job count, lighter rate => longer span for the small cluster.
        assert small_eval[-1].arrival_time > big_eval[-1].arrival_time

    def test_same_intensity_for_30_and_40(self):
        a, _ = make_traces(300, 30, seed=0)
        b, _ = make_traces(300, 40, seed=0)
        assert a == b

    def test_deterministic(self):
        a, _ = make_traces(100, 6, seed=3)
        b, _ = make_traces(100, 6, seed=3)
        assert a == b


class TestRows:
    def test_from_result(self):
        result = RunResult(
            name="x", num_servers=30, n_jobs=100, energy_kwh=2.0,
            acc_latency=5e6, mean_latency=50.0, average_power=500.0,
            final_time=1000.0, latency_series=(), energy_series=(),
        )
        row = Table1Row.from_result(result)
        assert row.latency_1e6_s == pytest.approx(5.0)
        assert row.energy_kwh == 2.0

    def test_render(self):
        rows = [Table1Row("round-robin", 30, 441.47, 85.20, 2627.79)]
        text = render_table1(rows)
        assert "round-robin" in text
        assert "441.47" in text
        assert "Energy (kWh)" in text


@pytest.mark.slow
class TestEndToEnd:
    def test_tiny_table1(self):
        rows = run_table1(
            n_jobs=250,
            cluster_sizes=(4,),
            seed=0,
            pretrain=False,
            online_epochs=1,
            local_epochs=1,
        )
        assert len(rows) == 3
        systems = {r.system for r in rows}
        assert systems == {"round-robin", "drl-only", "hierarchical"}
        assert all(r.energy_kwh > 0 for r in rows)
        assert all(r.latency_1e6_s > 0 for r in rows)
