"""Tests for repro.harness.figures."""

import pytest

from repro.harness.figures import FigureSeries, render_series_csv


@pytest.fixture
def figure():
    return FigureSeries(
        num_servers=30,
        latency={
            "round-robin": ((100, 50_000.0), (200, 100_000.0)),
            "hierarchical": ((100, 60_000.0), (200, 130_000.0)),
        },
        energy={
            "round-robin": ((100, 5.0), (200, 10.0)),
            "hierarchical": ((100, 3.0), (200, 6.0)),
        },
    )


class TestRenderCsv:
    def test_latency_panel(self, figure):
        text = render_series_csv(figure, "latency")
        assert text.splitlines()[0] == "system,n_jobs,acc_latency_s"
        assert "round-robin,100,50000.0" in text

    def test_energy_panel(self, figure):
        text = render_series_csv(figure, "energy")
        assert "energy_kwh" in text
        assert "hierarchical,200,6.0" in text

    def test_invalid_panel_raises(self, figure):
        with pytest.raises(ValueError):
            render_series_csv(figure, "power")

    def test_systems_listed(self, figure):
        assert set(figure.systems()) == {"round-robin", "hierarchical"}
