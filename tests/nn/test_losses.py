"""Tests for repro.nn.losses."""

import numpy as np
import pytest

from repro.nn.losses import HuberLoss, MAELoss, MSELoss
from tests.helpers import numerical_gradient


class TestMSE:
    def test_value(self):
        loss = MSELoss()
        pred = np.array([1.0, 2.0])
        target = np.array([0.0, 0.0])
        assert loss.forward(pred, target) == pytest.approx(2.5)

    def test_zero_at_match(self, rng):
        x = rng.normal(size=(3, 3))
        assert MSELoss().forward(x, x.copy()) == 0.0

    def test_gradient_matches_numerical(self, rng):
        loss = MSELoss()
        pred = rng.normal(size=(4, 2))
        target = rng.normal(size=(4, 2))
        analytic = loss.backward(pred, target)
        numeric = numerical_gradient(lambda: loss.forward(pred, target), pred)
        assert np.allclose(analytic, numeric, atol=1e-6)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MSELoss().forward(np.zeros(2), np.zeros(3))


class TestMAE:
    def test_value(self):
        mae = MAELoss().forward(np.array([2.0, -2.0]), np.zeros(2))
        assert mae == pytest.approx(2.0)

    def test_gradient_matches_numerical_away_from_zero(self, rng):
        loss = MAELoss()
        pred = rng.normal(size=6) + 5.0  # keep residuals away from 0
        target = rng.normal(size=6)
        analytic = loss.backward(pred, target)
        numeric = numerical_gradient(lambda: loss.forward(pred, target), pred)
        assert np.allclose(analytic, numeric, atol=1e-5)


class TestHuber:
    def test_quadratic_inside_delta(self):
        loss = HuberLoss(delta=1.0)
        assert loss.forward(np.array([0.5]), np.array([0.0])) == pytest.approx(0.125)

    def test_linear_outside_delta(self):
        loss = HuberLoss(delta=1.0)
        # 0.5 * 1^2 + 1 * (3 - 1) = 2.5
        assert loss.forward(np.array([3.0]), np.array([0.0])) == pytest.approx(2.5)

    def test_gradient_clipped_at_delta(self):
        loss = HuberLoss(delta=1.0)
        grad = loss.backward(np.array([100.0, -100.0, 0.3]), np.zeros(3))
        assert grad[0] == pytest.approx(1.0 / 3)
        assert grad[1] == pytest.approx(-1.0 / 3)
        assert grad[2] == pytest.approx(0.3 / 3)

    def test_gradient_matches_numerical(self, rng):
        loss = HuberLoss(delta=0.7)
        pred = rng.normal(size=8) * 2
        target = rng.normal(size=8)
        analytic = loss.backward(pred, target)
        numeric = numerical_gradient(lambda: loss.forward(pred, target), pred)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)

    def test_continuous_at_delta(self):
        loss = HuberLoss(delta=1.0)
        eps = 1e-9
        below = loss.forward(np.array([1.0 - eps]), np.zeros(1))
        above = loss.forward(np.array([1.0 + eps]), np.zeros(1))
        assert below == pytest.approx(above, abs=1e-6)
