"""Tests for repro.nn.initializers."""

import numpy as np
import pytest

from repro.nn.initializers import constant, normal, xavier_normal, xavier_uniform, zeros


class TestXavierUniform:
    def test_shape(self, rng):
        w = xavier_uniform(rng, 10, 20)
        assert w.shape == (10, 20)

    def test_within_glorot_limit(self, rng):
        fan_in, fan_out = 30, 40
        w = xavier_uniform(rng, fan_in, fan_out)
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        assert np.all(np.abs(w) <= limit)

    def test_deterministic_given_seed(self):
        a = xavier_uniform(np.random.default_rng(3), 5, 5)
        b = xavier_uniform(np.random.default_rng(3), 5, 5)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("fan_in,fan_out", [(0, 5), (5, 0), (-1, 5)])
    def test_invalid_fans_raise(self, rng, fan_in, fan_out):
        with pytest.raises(ValueError):
            xavier_uniform(rng, fan_in, fan_out)


class TestXavierNormal:
    def test_shape_and_std(self, rng):
        w = xavier_normal(rng, 200, 200)
        assert w.shape == (200, 200)
        expected_std = np.sqrt(2.0 / 400)
        assert abs(w.std() - expected_std) < 0.15 * expected_std

    def test_invalid_fans_raise(self, rng):
        with pytest.raises(ValueError):
            xavier_normal(rng, 0, 1)


class TestNormal:
    def test_paper_lstm_init_statistics(self, rng):
        w = normal(rng, (100, 100), mean=0.0, std=1.0)
        assert abs(w.mean()) < 0.05
        assert abs(w.std() - 1.0) < 0.05

    def test_negative_std_raises(self, rng):
        with pytest.raises(ValueError):
            normal(rng, (2, 2), std=-1.0)


class TestZerosConstant:
    def test_zeros(self):
        z = zeros((3, 4))
        assert z.shape == (3, 4)
        assert np.all(z == 0.0)

    def test_constant_point_one_bias(self):
        b = constant((7,), 0.1)
        assert np.all(b == 0.1)
        assert b.dtype == np.float64
