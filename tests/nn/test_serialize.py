"""Weight-blob round-trips: bit-identical restores, corrupt-blob errors."""

import numpy as np
import pytest

from repro.core.config import PredictorConfig
from repro.core.predictor import WorkloadPredictor
from repro.core.qnetwork import HierarchicalQNetwork
from repro.core.state import StateEncoder
from repro.nn.serialize import load_states, save_states


def _qnet(seed: int = 0) -> HierarchicalQNetwork:
    encoder = StateEncoder(num_servers=6, num_resources=3, num_groups=2)
    return HierarchicalQNetwork(
        encoder,
        autoencoder_hidden=(8, 4),
        subq_hidden=(16,),
        rng=np.random.default_rng(seed),
    )


class TestSaveLoad:
    def test_round_trip_is_bit_identical(self, tmp_path):
        net = _qnet()
        path = tmp_path / "blob.npz"
        save_states(path, {"qnet": net.state_dict()}, {"schema": 1})
        states, meta = load_states(path)
        assert meta == {"schema": 1}
        assert set(states) == {"qnet"}
        original = net.state_dict()
        assert set(states["qnet"]) == set(original)
        for key, value in original.items():
            assert np.array_equal(states["qnet"][key], value)
            assert states["qnet"][key].dtype == value.dtype

    def test_loaded_state_restores_identical_network(self, tmp_path):
        net = _qnet(seed=3)
        path = save_states(tmp_path / "q.npz", {"qnet": net.state_dict()})
        states, _ = load_states(path)
        twin = _qnet(seed=99)  # different init, then overwritten
        twin.load_state_dict(states["qnet"])
        x = np.random.default_rng(7).normal(size=(5, net.encoder.state_dim))
        assert np.array_equal(net.predict(x), twin.predict(x))

    def test_lstm_predictor_round_trip(self, tmp_path):
        config = PredictorConfig(lookback=5, epochs=2)
        predictor = WorkloadPredictor(config, rng=np.random.default_rng(1))
        series = np.random.default_rng(2).uniform(5.0, 500.0, size=40)
        predictor.fit(series)
        path = save_states(
            tmp_path / "p.npz", {"predictor": predictor.network.state_dict()}
        )
        states, _ = load_states(path)
        twin = WorkloadPredictor(config, rng=np.random.default_rng(9))
        twin.network.load_state_dict(states["predictor"])
        twin.fitted = True
        window = series[:5]
        assert predictor.predict_seconds(window) == twin.predict_seconds(window)
        for key, value in predictor.network.state_dict().items():
            assert np.array_equal(states["predictor"][key], value)

    def test_multiple_groups_in_one_blob(self, tmp_path):
        a = {"0:w": np.arange(3.0)}
        b = {"0:w": np.arange(4.0), "1:b": np.zeros(2)}
        path = save_states(tmp_path / "m.npz", {"a": a, "b": b})
        states, meta = load_states(path)
        assert meta == {}
        assert np.array_equal(states["a"]["0:w"], a["0:w"])
        assert np.array_equal(states["b"]["1:b"], b["1:b"])


class TestValidation:
    def test_bad_group_name_rejected(self, tmp_path):
        for name in ("", "a/b", "__meta__"):
            with pytest.raises(ValueError):
                save_states(tmp_path / "x.npz", {name: {"k": np.zeros(1)}})

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_states(tmp_path / "nope.npz")

    def test_truncated_blob_raises(self, tmp_path):
        path = save_states(tmp_path / "t.npz", {"g": {"k": np.arange(100.0)}})
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(Exception):
            load_states(path)

    def test_no_partial_file_on_failed_write(self, tmp_path, monkeypatch):
        import repro.nn.serialize as serialize

        def boom(fh, **arrays):
            raise RuntimeError("disk full")

        monkeypatch.setattr(serialize.np, "savez", boom)
        with pytest.raises(RuntimeError):
            save_states(tmp_path / "f.npz", {"g": {"k": np.zeros(1)}})
        assert not (tmp_path / "f.npz").exists()
        assert not list(tmp_path.glob("*.tmp"))
