"""Tests for repro.nn.layers: Dense forward/backward and weight sharing."""

import numpy as np
import pytest

from repro.nn.layers import Dense, Module
from repro.nn.parameter import Parameter
from tests.helpers import numerical_gradient


class TestDenseForward:
    def test_linear_layer_matches_matmul(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(5, 3))
        y, _ = layer.forward(x)
        expected = x @ layer.weight.value + layer.bias.value
        assert np.allclose(y, expected)

    def test_1d_input_promoted_to_batch(self, rng):
        layer = Dense(3, 2, rng=rng)
        y, _ = layer.forward(np.ones(3))
        assert y.shape == (1, 2)

    def test_wrong_width_raises(self, rng):
        layer = Dense(3, 2, rng=rng)
        with pytest.raises(ValueError, match="input width"):
            layer.forward(np.ones((1, 4)))

    def test_activation_applied(self, rng):
        layer = Dense(2, 2, activation="relu", rng=rng)
        layer.weight.value = np.eye(2)
        layer.bias.value = np.array([-10.0, 10.0])
        y, _ = layer.forward(np.zeros((1, 2)))
        assert np.allclose(y, [[0.0, 10.0]])

    @pytest.mark.parametrize("bad", [(0, 3), (3, 0), (-1, 1)])
    def test_invalid_widths_raise(self, rng, bad):
        with pytest.raises(ValueError):
            Dense(bad[0], bad[1], rng=rng)

    def test_rng_required_without_shared_weight(self):
        with pytest.raises(ValueError, match="rng"):
            Dense(2, 2)


class TestDenseBackward:
    @pytest.mark.parametrize("activation", ["identity", "elu", "tanh", "sigmoid"])
    def test_gradcheck_weight_bias_input(self, rng, activation):
        layer = Dense(4, 3, activation=activation, rng=rng)
        x = rng.normal(size=(6, 4))
        target = rng.normal(size=(6, 3))

        def loss():
            y, _ = layer.forward(x)
            return 0.5 * float(np.sum((y - target) ** 2))

        y, cache = layer.forward(x)
        layer.zero_grad()
        dx = layer.backward(y - target, cache)

        num_w = numerical_gradient(loss, layer.weight.value)
        num_b = numerical_gradient(loss, layer.bias.value)
        num_x = numerical_gradient(loss, x)
        assert np.allclose(layer.weight.grad, num_w, atol=1e-5)
        assert np.allclose(layer.bias.grad, num_b, atol=1e-5)
        assert np.allclose(dx, num_x, atol=1e-5)

    def test_gradients_accumulate_over_calls(self, rng):
        layer = Dense(2, 2, rng=rng)
        x = rng.normal(size=(3, 2))
        y, cache = layer.forward(x)
        layer.backward(np.ones_like(y), cache)
        once = layer.weight.grad.copy()
        y, cache = layer.forward(x)
        layer.backward(np.ones_like(y), cache)
        assert np.allclose(layer.weight.grad, 2.0 * once)


class TestWeightSharing:
    def test_share_with_aliases_parameters(self, rng):
        a = Dense(3, 2, rng=rng)
        b = Dense(3, 2, rng=rng)
        b.share_with(a)
        assert b.weight is a.weight
        assert b.bias is a.bias

    def test_share_with_shape_mismatch_raises(self, rng):
        a = Dense(3, 2, rng=rng)
        b = Dense(2, 2, rng=rng)
        with pytest.raises(ValueError, match="share"):
            b.share_with(a)

    def test_shared_constructor_params(self, rng):
        w = Parameter(np.ones((2, 2)))
        b = Parameter(np.zeros(2))
        layer = Dense(2, 2, weight=w, bias=b)
        assert layer.weight is w

    def test_shared_grads_sum_across_sites(self, rng):
        a = Dense(2, 2, rng=rng)
        b = Dense(2, 2, rng=rng)
        b.share_with(a)
        x = rng.normal(size=(4, 2))
        ya, ca = a.forward(x)
        yb, cb = b.forward(x)
        a.zero_grad()
        a.backward(np.ones_like(ya), ca)
        solo = a.weight.grad.copy()
        a.zero_grad()
        a.backward(np.ones_like(ya), ca)
        b.backward(np.ones_like(yb), cb)
        assert np.allclose(a.weight.grad, 2.0 * solo)


class TestModule:
    def test_parameters_deduplicated(self, rng):
        class Twin(Module):
            def __init__(self):
                self.a = Dense(2, 2, rng=rng)
                self.b = Dense(2, 2, rng=rng)
                self.b.share_with(self.a)

        twin = Twin()
        assert len(twin.parameters()) == 2  # one weight + one bias

    def test_num_parameters_counts_shared_once(self, rng):
        class Twin(Module):
            def __init__(self):
                self.a = Dense(3, 2, rng=rng)
                self.b = Dense(3, 2, rng=rng)
                self.b.share_with(self.a)

        assert Twin().num_parameters() == 3 * 2 + 2

    def test_state_dict_roundtrip(self, rng):
        layer = Dense(3, 2, rng=rng)
        snapshot = layer.state_dict()
        original = layer.weight.value.copy()
        layer.weight.value += 1.0
        layer.load_state_dict(snapshot)
        assert np.allclose(layer.weight.value, original)

    def test_load_state_dict_shape_mismatch_raises(self, rng):
        layer = Dense(3, 2, rng=rng)
        other = Dense(3, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.load_state_dict(other.state_dict())

    def test_zero_grad_all(self, rng):
        layer = Dense(2, 2, rng=rng)
        layer.weight.accumulate(np.ones((2, 2)))
        layer.zero_grad()
        assert np.all(layer.weight.grad == 0.0)
