"""Tests for repro.nn.autoencoder."""

import numpy as np
import pytest

from repro.nn.autoencoder import Autoencoder


class TestConstruction:
    def test_paper_geometry(self, rng):
        ae = Autoencoder(12, hidden_sizes=(30, 15), rng=rng)
        assert ae.input_dim == 12
        assert ae.code_dim == 15
        # encoder: 12 -> 30 -> 15, decoder mirrors.
        assert [layer.out_features for layer in ae.encoder.layers] == [30, 15]
        assert [layer.out_features for layer in ae.decoder.layers] == [30, 12]

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            Autoencoder(0, rng=rng)
        with pytest.raises(ValueError):
            Autoencoder(4, hidden_sizes=(), rng=rng)


class TestEncodeDecode:
    def test_encode_shape(self, rng):
        ae = Autoencoder(8, hidden_sizes=(6, 3), rng=rng)
        codes = ae.encode(rng.normal(size=(5, 8)))
        assert codes.shape == (5, 3)

    def test_reconstruct_shape(self, rng):
        ae = Autoencoder(8, hidden_sizes=(6, 3), rng=rng)
        recon = ae.reconstruct(rng.normal(size=(5, 8)))
        assert recon.shape == (5, 8)

    def test_encode_with_cache_matches_encode(self, rng):
        ae = Autoencoder(8, hidden_sizes=(6, 3), rng=rng)
        x = rng.normal(size=(4, 8))
        code, caches = ae.encode_with_cache(x)
        assert np.allclose(code, ae.encode(x))
        assert len(caches) == len(ae.encoder.layers)


class TestTraining:
    def test_fit_reduces_reconstruction_loss(self, rng):
        # Low-rank data: 8-dim observations from a 3-dim latent space.
        latent = rng.normal(size=(300, 3))
        mix = rng.normal(size=(3, 8))
        x = latent @ mix
        ae = Autoencoder(8, hidden_sizes=(16, 3), rng=rng)
        before = ae.reconstruction_loss(x)
        ae.fit(x, epochs=60, lr=3e-3, rng=rng)
        after = ae.reconstruction_loss(x)
        assert after < 0.3 * before

    def test_fit_returns_history(self, rng):
        ae = Autoencoder(4, hidden_sizes=(3, 2), rng=rng)
        history = ae.fit(rng.normal(size=(32, 4)), epochs=5, rng=rng)
        assert len(history) == 5
        assert all(np.isfinite(h) for h in history)

    def test_encoder_backward_accumulates_grads(self, rng):
        ae = Autoencoder(6, hidden_sizes=(4, 2), rng=rng)
        x = rng.normal(size=(3, 6))
        code, caches = ae.encode_with_cache(x)
        ae.zero_grad()
        ae.encoder_backward(np.ones_like(code), caches)
        grads = [np.abs(p.grad).sum() for p in ae.encoder.parameters()]
        assert all(g > 0 for g in grads)


class TestSharing:
    def test_share_with(self, rng):
        a = Autoencoder(6, hidden_sizes=(4, 2), rng=rng)
        b = Autoencoder(6, hidden_sizes=(4, 2), rng=rng)
        b.share_with(a)
        x = rng.normal(size=(2, 6))
        assert np.allclose(a.encode(x), b.encode(x))
        a.encoder.layers[0].weight.value += 1.0
        assert np.allclose(a.encode(x), b.encode(x))
