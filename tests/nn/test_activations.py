"""Tests for repro.nn.activations: values and analytic derivatives."""

import numpy as np
import pytest

from repro.nn.activations import (
    ELU,
    Identity,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
    get_activation,
)

ALL_ACTIVATIONS = [
    Identity(),
    ReLU(),
    ELU(),
    ELU(alpha=0.5),
    Sigmoid(),
    Tanh(),
    Softplus(),
]


def _check_derivative(act, z):
    """Analytic derivative must match central differences away from kinks."""
    eps = 1e-6
    y = act.forward(z)
    analytic = act.derivative(z, y)
    numeric = (act.forward(z + eps) - act.forward(z - eps)) / (2 * eps)
    assert np.allclose(analytic, numeric, atol=1e-5), f"{act!r}"


@pytest.mark.parametrize("act", ALL_ACTIVATIONS, ids=lambda a: repr(a))
class TestDerivatives:
    def test_matches_numerical(self, act, rng):
        # Keep clear of the ReLU/ELU kink at exactly 0.
        z = rng.uniform(-3, 3, size=50)
        z = z[np.abs(z) > 1e-3]
        _check_derivative(act, z)

    def test_forward_shape_preserved(self, act, rng):
        z = rng.normal(size=(4, 7))
        assert act.forward(z).shape == (4, 7)


class TestELU:
    def test_positive_identity(self):
        z = np.array([0.5, 1.0, 10.0])
        assert np.allclose(ELU().forward(z), z)

    def test_negative_saturates_at_minus_alpha(self):
        assert ELU(alpha=2.0).forward(np.array([-50.0]))[0] == pytest.approx(-2.0)

    def test_continuous_at_zero(self):
        elu = ELU()
        assert elu.forward(np.array([-1e-12]))[0] == pytest.approx(0.0, abs=1e-10)
        assert elu.forward(np.array([0.0]))[0] == 0.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ELU(alpha=0.0)


class TestSigmoid:
    def test_range_and_midpoint(self):
        s = Sigmoid()
        assert s.forward(np.array([0.0]))[0] == pytest.approx(0.5)
        out = s.forward(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    def test_no_overflow_warnings(self):
        with np.errstate(over="raise"):
            Sigmoid().forward(np.array([-800.0, 800.0]))


class TestReLU:
    def test_values(self):
        out = ReLU().forward(np.array([-2.0, 0.0, 3.0]))
        assert np.allclose(out, [0.0, 0.0, 3.0])


class TestRegistry:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("identity", Identity),
            ("linear", Identity),
            ("relu", ReLU),
            ("elu", ELU),
            ("sigmoid", Sigmoid),
            ("tanh", Tanh),
            ("softplus", Softplus),
        ],
    )
    def test_lookup_by_name(self, name, cls):
        assert isinstance(get_activation(name), cls)

    def test_case_insensitive(self):
        assert isinstance(get_activation("ELU"), ELU)

    def test_instance_passthrough(self):
        inst = ELU(alpha=0.3)
        assert get_activation(inst) is inst

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown activation"):
            get_activation("swishish")
