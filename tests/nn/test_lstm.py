"""Tests for repro.nn.lstm: cell math, BPTT gradients, sequence learning."""

import numpy as np
import pytest

from repro.nn.lstm import LSTMCell, LSTMNetwork
from tests.helpers import numerical_gradient


class TestCell:
    def test_initial_state_zero(self, rng):
        cell = LSTMCell(2, 4, rng=rng)
        h, c = cell.initial_state(3)
        assert h.shape == (3, 4) and c.shape == (3, 4)
        assert np.all(h == 0) and np.all(c == 0)

    def test_step_shapes(self, rng):
        cell = LSTMCell(2, 4, rng=rng)
        h, c = cell.initial_state(3)
        h2, c2, cache = cell.step(rng.normal(size=(3, 2)), h, c)
        assert h2.shape == (3, 4) and c2.shape == (3, 4)
        assert cache["i"].shape == (3, 4)

    def test_hidden_bounded_by_one(self, rng):
        # h = o * tanh(c) with o in (0,1) and tanh in (-1,1).
        cell = LSTMCell(1, 3, rng=rng)
        h, c = cell.initial_state(1)
        for _ in range(50):
            h, c, _ = cell.step(np.array([[10.0]]), h, c)
        assert np.all(np.abs(h) < 1.0)

    def test_forget_bias_applied(self, rng):
        cell = LSTMCell(1, 2, rng=rng, forget_bias=1.5)
        hd = cell.hidden_dim
        assert np.all(cell.bias.value[hd : 2 * hd] == 1.5)
        assert np.all(cell.bias.value[:hd] == 0.0)

    def test_wrong_input_width_raises(self, rng):
        cell = LSTMCell(2, 3, rng=rng)
        h, c = cell.initial_state(1)
        with pytest.raises(ValueError):
            cell.step(np.ones((1, 5)), h, c)

    def test_invalid_dims(self, rng):
        with pytest.raises(ValueError):
            LSTMCell(0, 3, rng=rng)

    def test_single_step_gradcheck(self, rng):
        cell = LSTMCell(2, 3, rng=rng)
        x = rng.normal(size=(2, 2))
        h0, c0 = cell.initial_state(2)

        def loss():
            h, c, _ = cell.step(x, h0, c0)
            return float(np.sum(h) + 0.5 * np.sum(c))

        h, c, cache = cell.step(x, h0, c0)
        cell.zero_grad()
        dx, dh_prev, dc_prev = cell.step_backward(
            np.ones_like(h), 0.5 * np.ones_like(c), cache
        )
        for param in cell.parameters():
            numeric = numerical_gradient(loss, param.value)
            assert np.allclose(param.grad, numeric, atol=1e-5), param.name
        assert np.allclose(dx, numerical_gradient(loss, x), atol=1e-5)


class TestNetwork:
    def test_forward_shapes(self, rng):
        net = LSTMNetwork(input_dim=1, hidden_dim=5, output_dim=1, rng=rng)
        y, caches = net.forward(rng.normal(size=(4, 10, 1)))
        assert y.shape == (4, 1)
        assert caches["steps"] == 10

    def test_2d_input_promoted(self, rng):
        net = LSTMNetwork(input_dim=1, hidden_dim=5, rng=rng)
        y = net.predict(rng.normal(size=(4, 10)))
        assert y.shape == (4, 1)

    def test_wrong_feature_width_raises(self, rng):
        net = LSTMNetwork(input_dim=1, hidden_dim=5, rng=rng)
        with pytest.raises(ValueError):
            net.forward(rng.normal(size=(4, 10, 3)))

    def test_empty_sequence_raises(self, rng):
        net = LSTMNetwork(rng=rng)
        with pytest.raises(ValueError):
            net.forward(np.zeros((2, 0, 1)))

    def test_paper_init(self, rng):
        net = LSTMNetwork(hidden_dim=30, init="paper", rng=rng)
        assert np.all(net.input_layer.bias.value == 0.1)
        assert np.all(net.output_layer.bias.value == 0.1)

    def test_invalid_init_name(self, rng):
        with pytest.raises(ValueError):
            LSTMNetwork(init="kaiming", rng=rng)

    def test_bptt_gradcheck(self, rng):
        net = LSTMNetwork(
            input_dim=1, hidden_dim=3, output_dim=1, cell_input_dim=2, rng=rng
        )
        x = rng.normal(size=(2, 4, 1))
        target = rng.normal(size=(2, 1))

        def loss():
            return 0.5 * float(np.sum((net.predict(x) - target) ** 2))

        y, caches = net.forward(x)
        net.zero_grad()
        net.backward(y - target, caches)
        for param in net.parameters():
            numeric = numerical_gradient(loss, param.value)
            assert np.allclose(param.grad, numeric, atol=1e-4), param.name

    def test_cell_weights_shared_across_time(self, rng):
        # One cell object serves every step: parameter count is independent
        # of sequence length (the paper's "all LSTM cells have shared
        # weights").
        net = LSTMNetwork(input_dim=1, hidden_dim=4, rng=rng)
        n_before = net.num_parameters()
        net.predict(rng.normal(size=(1, 50, 1)))
        assert net.num_parameters() == n_before


class TestLearning:
    def test_fits_deterministic_next_value(self, rng):
        # Next value of a noiseless sine is learnable from a short window.
        t = np.arange(500) * 0.3
        series = 0.5 + 0.4 * np.sin(t)
        look = 8
        windows = [series[i : i + look] for i in range(len(series) - look)]
        x = np.stack(windows)[:, :, None]
        y = series[look:][:, None]
        net = LSTMNetwork(input_dim=1, hidden_dim=8, rng=rng)
        history = net.fit(x, y, epochs=15, lr=5e-3, rng=rng)
        assert history[-1] < 0.25 * history[0]

    def test_fit_mismatched_rows_raise(self, rng):
        net = LSTMNetwork(rng=rng)
        with pytest.raises(ValueError):
            net.fit(np.zeros((3, 4, 1)), np.zeros((2, 1)))

    def test_outperforms_last_value_on_alternating_series(self, rng):
        # An alternating series is the worst case for naive last-value
        # prediction and trivial for a memory cell.
        series = np.tile([0.2, 0.8], 300).astype(float)
        look = 6
        windows = [series[i : i + look] for i in range(len(series) - look)]
        x = np.stack(windows)[:, :, None]
        y = series[look:][:, None]
        net = LSTMNetwork(input_dim=1, hidden_dim=6, rng=rng)
        net.fit(x, y, epochs=20, lr=1e-2, rng=rng)
        pred = net.predict(x)
        lstm_mse = float(np.mean((pred - y) ** 2))
        naive_mse = float(np.mean((x[:, -1, 0:1] - y) ** 2))
        assert lstm_mse < 0.2 * naive_mse
