"""Tests for repro.nn.parameter."""

import numpy as np
import pytest

from repro.nn.parameter import Parameter


class TestParameter:
    def test_value_copied_and_float64(self):
        raw = np.array([1, 2, 3], dtype=np.int32)
        p = Parameter(raw)
        assert p.value.dtype == np.float64
        raw[0] = 99
        assert p.value[0] == 1.0

    def test_grad_starts_zero_with_matching_shape(self):
        p = Parameter(np.ones((2, 3)))
        assert p.grad.shape == (2, 3)
        assert np.all(p.grad == 0.0)

    def test_shape_and_size(self):
        p = Parameter(np.ones((4, 5)))
        assert p.shape == (4, 5)
        assert p.size == 20

    def test_accumulate_adds(self):
        p = Parameter(np.zeros(3))
        p.accumulate(np.array([1.0, 2.0, 3.0]))
        p.accumulate(np.array([1.0, 1.0, 1.0]))
        assert np.allclose(p.grad, [2.0, 3.0, 4.0])

    def test_accumulate_shape_mismatch_raises(self):
        p = Parameter(np.zeros(3), name="w")
        with pytest.raises(ValueError, match="w"):
            p.accumulate(np.zeros(4))

    def test_zero_grad_resets_in_place(self):
        p = Parameter(np.zeros(2))
        grad_ref = p.grad
        p.accumulate(np.ones(2))
        p.zero_grad()
        assert np.all(p.grad == 0.0)
        assert p.grad is grad_ref

    def test_copy_is_independent(self):
        p = Parameter(np.ones(2), name="orig")
        p.accumulate(np.ones(2))
        q = p.copy()
        q.value[0] = 7.0
        q.grad[0] = 7.0
        assert p.value[0] == 1.0
        assert p.grad[0] == 1.0
        assert q.name == "orig"

    def test_scalar_like_values(self):
        p = Parameter(np.array(2.5))
        assert p.size == 1
        p.accumulate(np.array(1.5))
        assert float(p.grad) == 1.5
