"""Tests for repro.nn.optim: SGD, Adam, gradient clipping."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.parameter import Parameter


def quadratic_step(params, optimizer, steps=200):
    """Minimize sum of squares; returns final values."""
    for _ in range(steps):
        optimizer.zero_grad()
        for p in params:
            p.accumulate(2.0 * p.value)
        optimizer.step()
    return [p.value for p in params]


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(3))
        p.accumulate(np.array([1.0, 0.0, 0.0]))
        norm = clip_grad_norm([p], max_norm=10.0)
        assert norm == pytest.approx(1.0)
        assert np.allclose(p.grad, [1.0, 0.0, 0.0])

    def test_clips_to_max_norm(self):
        p = Parameter(np.zeros(2))
        p.accumulate(np.array([3.0, 4.0]))  # norm 5
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_global_norm_across_parameters(self):
        a = Parameter(np.zeros(1))
        b = Parameter(np.zeros(1))
        a.accumulate(np.array([3.0]))
        b.accumulate(np.array([4.0]))
        clip_grad_norm([a, b], max_norm=1.0)
        total = float(np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2))
        assert total == pytest.approx(1.0)

    def test_direction_preserved(self):
        p = Parameter(np.zeros(2))
        p.accumulate(np.array([30.0, 40.0]))
        clip_grad_norm([p], max_norm=5.0)
        assert np.allclose(p.grad / np.linalg.norm(p.grad), [0.6, 0.8])

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([Parameter(np.zeros(1))], max_norm=0.0)


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        p.accumulate(np.array([2.0]))
        opt.step()
        assert p.value[0] == pytest.approx(0.8)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = SGD([p], lr=0.1)
        (final,) = quadratic_step([p], opt)
        assert np.allclose(final, 0.0, atol=1e-6)

    def test_momentum_accelerates(self):
        slow = Parameter(np.array([10.0]))
        fast = Parameter(np.array([10.0]))
        opt_slow = SGD([slow], lr=0.01)
        opt_fast = SGD([fast], lr=0.01, momentum=0.9)
        quadratic_step([slow], opt_slow, steps=50)
        quadratic_step([fast], opt_fast, steps=50)
        assert abs(fast.value[0]) < abs(slow.value[0])

    @pytest.mark.parametrize("bad_lr", [0.0, -1.0])
    def test_invalid_lr(self, bad_lr):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=bad_lr)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], momentum=1.0)

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0, 0.5]))
        opt = Adam([p], lr=0.1)
        quadratic_step([p], opt, steps=500)
        assert np.allclose(p.value, 0.0, atol=1e-3)

    def test_first_step_size_is_lr(self):
        # With bias correction, |step 1| == lr regardless of gradient scale.
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.01)
        p.accumulate(np.array([1234.0]))
        opt.step()
        assert p.value[0] == pytest.approx(1.0 - 0.01, rel=1e-6)

    def test_shared_parameter_updated_once(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p, p], lr=0.5)  # duplicate reference
        assert len(opt.parameters) == 1
        p.accumulate(np.array([1.0]))
        opt.step()
        assert p.value[0] == pytest.approx(0.5)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], beta1=1.0)
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], beta2=-0.1)

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], eps=0.0)

    def test_zero_grad(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p])
        p.accumulate(np.ones(2))
        opt.zero_grad()
        assert np.all(p.grad == 0.0)
