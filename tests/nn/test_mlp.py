"""Tests for repro.nn.mlp."""

import numpy as np
import pytest

from repro.nn.mlp import MLP
from tests.helpers import numerical_gradient


class TestConstruction:
    def test_layer_count(self, rng):
        mlp = MLP([4, 8, 8, 2], rng=rng)
        assert len(mlp.layers) == 3
        assert mlp.in_features == 4
        assert mlp.out_features == 2

    def test_hidden_vs_output_activation(self, rng):
        mlp = MLP(
            [2, 4, 1],
            hidden_activation="elu",
            output_activation="identity",
            rng=rng,
        )
        assert mlp.layers[0].activation.name == "elu"
        assert mlp.layers[1].activation.name == "identity"

    def test_too_few_sizes_raise(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng=rng)


class TestForwardBackward:
    def test_predict_shape(self, rng):
        mlp = MLP([3, 5, 2], rng=rng)
        assert mlp.predict(rng.normal(size=(7, 3))).shape == (7, 2)

    def test_full_gradcheck(self, rng):
        mlp = MLP([3, 4, 2], hidden_activation="tanh", rng=rng)
        x = rng.normal(size=(5, 3))
        target = rng.normal(size=(5, 2))

        def loss():
            return 0.5 * float(np.sum((mlp.predict(x) - target) ** 2))

        out, caches = mlp.forward(x)
        mlp.zero_grad()
        dx = mlp.backward(out - target, caches)

        for param in mlp.parameters():
            numeric = numerical_gradient(loss, param.value)
            assert np.allclose(param.grad, numeric, atol=1e-5), param.name
        assert np.allclose(dx, numerical_gradient(loss, x), atol=1e-5)


class TestFit:
    def test_learns_linear_map(self, rng):
        true_w = rng.normal(size=(3, 2))
        x = rng.normal(size=(200, 3))
        y = x @ true_w
        mlp = MLP([3, 16, 2], rng=rng)
        history = mlp.fit(x, y, epochs=150, lr=5e-3, rng=rng)
        assert history[-1] < 0.05 * history[0]

    def test_learns_xor(self, rng):
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([[0.0], [1.0], [1.0], [0.0]])
        mlp = MLP([2, 8, 1], hidden_activation="tanh", rng=rng)
        mlp.fit(x, y, epochs=800, batch_size=4, lr=0.02, rng=rng)
        pred = mlp.predict(x)
        assert np.all(np.abs(pred - y) < 0.3)

    def test_loss_history_length(self, rng):
        x = rng.normal(size=(20, 2))
        y = rng.normal(size=(20, 1))
        mlp = MLP([2, 4, 1], rng=rng)
        history = mlp.fit(x, y, epochs=7, rng=rng)
        assert len(history) == 7

    def test_mismatched_rows_raise(self, rng):
        mlp = MLP([2, 4, 1], rng=rng)
        with pytest.raises(ValueError):
            mlp.fit(np.zeros((5, 2)), np.zeros((4, 1)))

    def test_grad_clipping_path_runs(self, rng):
        mlp = MLP([2, 4, 1], rng=rng)
        x = rng.normal(size=(16, 2)) * 100
        y = rng.normal(size=(16, 1)) * 100
        history = mlp.fit(x, y, epochs=3, max_grad_norm=1.0, rng=rng)
        assert all(np.isfinite(h) for h in history)


class TestSharing:
    def test_share_with_aliases_all_layers(self, rng):
        a = MLP([2, 4, 1], rng=rng)
        b = MLP([2, 4, 1], rng=rng)
        b.share_with(a)
        assert b.predict(np.ones((1, 2))) == pytest.approx(a.predict(np.ones((1, 2))))
        ids_a = set(id(p) for p in a.parameters())
        ids_b = set(id(p) for p in b.parameters())
        assert len(ids_a ^ ids_b) == 0

    def test_share_with_shape_mismatch(self, rng):
        a = MLP([2, 4, 1], rng=rng)
        b = MLP([2, 5, 1], rng=rng)
        with pytest.raises(ValueError):
            b.share_with(a)
