"""Tests for repro.core.local_tier: the RL power manager (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.config import LocalTierConfig, PredictorConfig
from repro.core.local_tier import IDLE, RLPowerPolicy, WAKE_SLEEP
from repro.sim.events import EventQueue
from repro.sim.job import Job
from repro.sim.power import PowerModel
from repro.sim.server import Server


def make_config(**kwargs):
    kwargs.setdefault("predictor", PredictorConfig(lookback=3))
    kwargs.setdefault("timeouts", (0.0, 60.0))
    return LocalTierConfig(**kwargs)


def make_policy(**kwargs):
    return RLPowerPolicy(make_config(**kwargs), rng=np.random.default_rng(0))


def make_server(policy, initially_on=True):
    events = EventQueue()
    server = Server(0, PowerModel(), events, policy, initially_on=initially_on)
    return server, events


def job(jid, arrival, duration=10.0, cpu=0.5):
    return Job(jid, arrival, duration, (cpu, 0.1, 0.1))


class TestDecisionEpochs:
    def test_on_idle_returns_timeout_from_action_set(self):
        policy = make_policy()
        server, events = make_server(policy)
        server.assign(job(1, 0.0), 0.0)
        events.run_until_empty()  # job finishes at 10 -> idle epoch
        assert policy.decision_epochs >= 2  # wake_idle at 0 + idle at 10
        # The timeout handed to the server was one of the configured values
        # (server either scheduled a timeout or began shutdown).
        assert server.state.value in ("idle", "shutting_down", "sleep")

    def test_learner_states_use_epoch_kinds(self):
        policy = make_policy()
        server, events = make_server(policy, initially_on=False)
        server.assign(job(1, 0.0), 0.0)  # wake from sleep
        events.run_until_empty()
        kinds = {state[0] for state in policy.learner.table()}
        assert WAKE_SLEEP in kinds
        assert IDLE in kinds

    def test_updates_happen_across_epochs(self):
        policy = make_policy()
        server, events = make_server(policy)
        for i, t in enumerate((0.0, 100.0, 200.0)):
            events.schedule(t, lambda tt, i=i, t=t: server.assign(job(i, t), tt))
        events.run_until_empty()
        assert policy.learner.updates >= 2

    def test_zero_sojourn_skipped(self):
        policy = make_policy()
        server, events = make_server(policy)
        # Two epochs at the same instant must not produce a zero-tau update.
        server.assign(job(1, 0.0, duration=5.0), 0.0)
        events.run_until_empty()
        assert all(np.isfinite(q).all() for q in policy.learner.table().values())

    def test_on_run_end_flushes_and_resets(self):
        policy = make_policy()
        server, events = make_server(policy)
        server.assign(job(1, 0.0), 0.0)
        events.run_until_empty()
        updates_before = policy.learner.updates
        server.finalize(500.0)
        assert policy.learner.updates >= updates_before
        assert policy._pending is None

    def test_tracker_fed_on_every_assignment(self):
        policy = make_policy()
        server, events = make_server(policy)
        for i, t in enumerate((0.0, 5.0, 9.0)):
            server.assign(job(i, t, duration=100.0, cpu=0.1), t)
        assert list(policy.tracker.window()) == [5.0, 4.0]


class TestLearningBehavior:
    def test_freeze_stops_learning(self):
        policy = make_policy()
        policy.freeze()
        server, events = make_server(policy)
        server.assign(job(1, 0.0), 0.0)
        events.run_until_empty()
        server.finalize(100.0)
        assert policy.learner.updates == 0

    def test_learns_to_sleep_for_long_gaps(self):
        """With w=1 (pure power) and huge inter-arrival gaps, the learned
        greedy action must be immediate shutdown."""
        policy = make_policy(
            w=1.0, epsilon_start=0.8, epsilon_floor=0.3, epsilon_decay=0.999
        )
        server, events = make_server(policy)
        t = 0.0
        for i in range(200):
            events.schedule(t, lambda tt, i=i, t=t: server.assign(job(i, t), tt))
            t += 2000.0  # far beyond any timeout
        events.run_until_empty()
        # Judge only idle states whose actions were all actually tried
        # (Q moved off the optimistic initial value of 0).
        table = policy.learner.table()
        tried = [
            s for s, q in table.items() if s[0] == IDLE and np.all(q < 0.0)
        ]
        assert tried
        for state in tried:
            greedy = policy.learner.greedy_action(state, len(policy.config.timeouts))
            assert policy.config.timeouts[greedy] == 0.0

    def test_learns_to_stay_awake_for_short_gaps(self):
        """With w=0 (pure latency) and gaps shorter than the long timeout,
        sleeping (which costs Toff+Ton of queueing) must lose."""
        policy = make_policy(w=0.0, epsilon_start=0.5, epsilon_decay=0.98,
                             timeouts=(0.0, 120.0))
        server, events = make_server(policy)
        t = 0.0
        for i in range(60):
            events.schedule(t, lambda tt, i=i, t=t: server.assign(job(i, t), tt))
            t += 50.0  # gap of 40 s after each 10 s job
        events.run_until_empty()
        idle_states = [s for s in policy.learner.table() if s[0] == IDLE]
        assert idle_states
        votes = [
            policy.config.timeouts[
                policy.learner.greedy_action(s, len(policy.config.timeouts))
            ]
            for s in idle_states
        ]
        assert sum(1 for v in votes if v > 0) >= len(votes) / 2

    def test_shared_learner_accumulates_across_policies(self):
        from repro.rl.smdp import SMDPQLearner

        shared = SMDPQLearner(rng=np.random.default_rng(0))
        p1 = RLPowerPolicy(make_config(), learner=shared, rng=np.random.default_rng(1))
        p2 = RLPowerPolicy(make_config(), learner=shared, rng=np.random.default_rng(2))
        s1, e1 = make_server(p1)
        s2, e2 = make_server(p2)
        for s, e in ((s1, e1), (s2, e2)):
            s.assign(job(1, 0.0), 0.0)
            e.run_until_empty()
            s.finalize(1000.0)
        assert shared.updates >= 2

    def test_timeout_values_accessor(self):
        policy = make_policy(timeouts=(0.0, 30.0, 90.0))
        assert policy.timeout_values() == (0.0, 30.0, 90.0)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"timeouts": ()},
        {"timeouts": (-1.0,)},
        {"w": 1.5},
        {"power_scale": 0.0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            LocalTierConfig(**kwargs)
