"""Tests for repro.core.global_tier: the DRL broker and offline phase."""

import numpy as np
import pytest

from repro.core.baselines import ImmediateSleepPolicy, RoundRobinBroker
from repro.core.config import ExperimentConfig, GlobalTierConfig
from repro.core.global_tier import DRLGlobalBroker, offline_pretrain
from repro.core.state import StateEncoder
from repro.sim.engine import build_simulation
from repro.sim.job import Job


def make_broker(num_servers=4, groups=2, **cfg_kwargs):
    cfg_kwargs.setdefault("replay_capacity", 1000)
    cfg_kwargs.setdefault("train_interval", 4)
    cfg_kwargs.setdefault("batch_size", 8)
    encoder = StateEncoder(num_servers, num_groups=groups)
    config = GlobalTierConfig(num_groups=groups, **cfg_kwargs)
    return DRLGlobalBroker(encoder, config, rng=np.random.default_rng(0))


def jobs_burst(n, spacing=20.0):
    return [Job(i, i * spacing, 50.0, (0.3, 0.1, 0.1)) for i in range(n)]


class TestOnlineOperation:
    def test_actions_in_range(self):
        broker = make_broker()
        engine = build_simulation(4, broker, ImmediateSleepPolicy())
        jobs = jobs_burst(20)
        engine.run(jobs)
        assert all(0 <= j.server_id < 4 for j in jobs)

    def test_transitions_recorded_per_epoch(self):
        broker = make_broker()
        engine = build_simulation(4, broker, ImmediateSleepPolicy())
        engine.run(jobs_burst(20))
        # N arrivals produce N-1 completed sojourns.
        assert len(broker.replay) == 19
        assert broker.decision_epochs == 20

    def test_rewards_are_non_positive(self):
        broker = make_broker()
        engine = build_simulation(4, broker, ImmediateSleepPolicy())
        engine.run(jobs_burst(20))
        assert all(tr.reward <= 0.0 for tr in broker.replay)

    def test_reward_clipping_bounds_rates(self):
        broker = make_broker(reward_clip=0.001, normalize_values=False)
        engine = build_simulation(4, broker, ImmediateSleepPolicy())
        engine.run(jobs_burst(20))
        # |discounted reward| <= clip * (1-e^{-beta tau})/beta <= clip/beta.
        bound = 0.001 / broker.config.beta + 1e-12
        assert all(abs(tr.reward) <= bound for tr in broker.replay)

    def test_training_happens_on_schedule(self):
        broker = make_broker()
        engine = build_simulation(4, broker, ImmediateSleepPolicy())
        engine.run(jobs_burst(40))
        assert len(broker.loss_history) > 0

    def test_epsilon_anneals(self):
        broker = make_broker(epsilon_start=0.5, epsilon_decay=0.9, epsilon_floor=0.1)
        engine = build_simulation(4, broker, ImmediateSleepPolicy())
        engine.run(jobs_burst(30))
        assert broker.epsilon == pytest.approx(0.1)

    def test_freeze_stops_training_and_exploration(self):
        broker = make_broker()
        broker.freeze()
        engine = build_simulation(4, broker, ImmediateSleepPolicy())
        engine.run(jobs_burst(30))
        assert broker.epsilon == 0.0
        assert len(broker.loss_history) == 0

    def test_on_run_end_resets_pending(self):
        broker = make_broker()
        engine = build_simulation(4, broker, ImmediateSleepPolicy())
        engine.run(jobs_burst(5))
        assert broker._pending is None

    def test_behavior_override_drives_actions(self):
        broker = make_broker()
        broker.behavior = RoundRobinBroker()
        engine = build_simulation(4, broker, ImmediateSleepPolicy())
        jobs = jobs_burst(8)
        engine.run(jobs)
        assert [j.server_id for j in jobs] == [0, 1, 2, 3, 0, 1, 2, 3]
        # Transitions are still recorded in behavior mode.
        assert len(broker.replay) == 7

    def test_value_scaling_applied(self):
        scaled = make_broker(normalize_values=True)
        raw = make_broker(normalize_values=False)
        assert scaled._reward_scale == pytest.approx(scaled.config.beta)
        assert raw._reward_scale == 1.0


class TestTrainMinibatch:
    def test_empty_replay_raises(self):
        broker = make_broker()
        with pytest.raises(ValueError):
            broker.train_minibatch()

    def test_returns_finite_loss(self):
        broker = make_broker()
        engine = build_simulation(4, broker, ImmediateSleepPolicy())
        engine.run(jobs_burst(20))
        loss = broker.train_minibatch()
        assert np.isfinite(loss)


class TestOfflinePretrain:
    def test_fills_replay_and_trains(self):
        broker = make_broker()
        traces = [jobs_burst(15), jobs_burst(15)]
        history = offline_pretrain(
            broker,
            traces,
            policy_factory=lambda: ImmediateSleepPolicy(),
            autoencoder_epochs=2,
            q_epochs=1,
            batches_per_epoch=5,
        )
        assert len(broker.replay) == 2 * 14
        assert len(history["autoencoder"]) == 2
        assert len(history["q"]) == 1
        # Behavior override must be cleared afterwards.
        assert broker.behavior is None

    def test_empty_traces_raise(self):
        broker = make_broker()
        with pytest.raises(ValueError):
            offline_pretrain(broker, [], policy_factory=ImmediateSleepPolicy)

    def test_custom_seed_broker(self):
        broker = make_broker()
        offline_pretrain(
            broker,
            [jobs_burst(10)],
            policy_factory=lambda: ImmediateSleepPolicy(),
            seed_broker_factory=RoundRobinBroker,
            autoencoder_epochs=1,
            q_epochs=1,
            batches_per_epoch=2,
        )
        assert len(broker.replay) == 9


class TestConfigValidation:
    def test_groups_must_divide_servers(self):
        with pytest.raises(ValueError, match="divisible"):
            ExperimentConfig(num_servers=10, global_tier=GlobalTierConfig(num_groups=3))

    @pytest.mark.parametrize("kwargs", [
        {"num_groups": 0},
        {"beta": -0.1},
        {"train_interval": 0},
        {"batch_size": 0},
    ])
    def test_invalid_global_config(self, kwargs):
        with pytest.raises(ValueError):
            GlobalTierConfig(**kwargs)
