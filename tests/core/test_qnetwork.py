"""Tests for repro.core.qnetwork: the Fig.-6 architecture."""

import numpy as np
import pytest

from repro.core.qnetwork import FlatQNetwork, HierarchicalQNetwork
from repro.core.state import StateEncoder


@pytest.fixture
def encoder():
    return StateEncoder(6, num_resources=3, num_groups=3,
                        include_power_state=False, include_queue_state=False)


@pytest.fixture
def qnet(encoder, rng):
    return HierarchicalQNetwork(
        encoder, autoencoder_hidden=(8, 4), subq_hidden=(16,), rng=rng
    )


def random_states(encoder, n, rng):
    return rng.uniform(0, 1, size=(n, encoder.state_dim))


class TestArchitecture:
    def test_output_covers_all_servers(self, qnet, encoder, rng):
        q = qnet.predict(random_states(encoder, 5, rng))
        assert q.shape == (5, 6)

    def test_single_state_q_values(self, qnet, encoder, rng):
        q = qnet.q_values(random_states(encoder, 1, rng)[0])
        assert q.shape == (6,)

    def test_subq_input_width(self, qnet, encoder):
        # raw group + (K-1) codes + job block.
        expected = encoder.group_dim + 2 * qnet.code_dim + encoder.job_dim
        assert qnet.subq.in_features == expected

    def test_weight_sharing_parameter_count_independent_of_k(self, rng):
        # Same per-group geometry with more groups must not add parameters
        # beyond the Sub-Q input growth from extra codes.
        enc2 = StateEncoder(4, num_groups=2, include_power_state=False,
                            include_queue_state=False)
        enc4 = StateEncoder(8, num_groups=4, include_power_state=False,
                            include_queue_state=False)
        q2 = HierarchicalQNetwork(enc2, (8, 4), (16,), rng=np.random.default_rng(0))
        q4 = HierarchicalQNetwork(enc4, (8, 4), (16,), rng=np.random.default_rng(0))
        # One autoencoder + one Sub-Q each; the only difference is the
        # Sub-Q input layer width (2 extra code blocks of 4).
        diff = q4.num_parameters() - q2.num_parameters()
        assert diff == 2 * 4 * 16  # extra input weights only

    def test_other_groups_cyclic_order(self, qnet):
        assert qnet._other_groups(0) == [1, 2]
        assert qnet._other_groups(1) == [2, 0]
        assert qnet._other_groups(2) == [0, 1]

    def test_group_permutation_symmetry(self, qnet, encoder, rng):
        """Weight sharing implies group equivariance: rotating the group
        blocks of the state rotates the Q-vector by a group."""
        state = random_states(encoder, 1, rng)[0]
        groups, jobs = encoder.split(state[None, :])
        rotated = np.concatenate(
            [groups[1][0], groups[2][0], groups[0][0], jobs[0]]
        )
        q = qnet.q_values(state)
        q_rot = qnet.q_values(rotated)
        g = encoder.group_size
        assert np.allclose(q_rot[: 2 * g], q[g:])
        assert np.allclose(q_rot[2 * g :], q[:g])


class TestTraining:
    def test_train_step_reduces_loss(self, qnet, encoder, rng):
        states = random_states(encoder, 64, rng)
        actions = rng.integers(0, 6, size=64)
        targets = -np.abs(rng.normal(size=64))
        optimizer = qnet.make_optimizer(lr=3e-3)
        first = qnet.train_step(states, actions, targets, optimizer)
        for _ in range(150):
            last = qnet.train_step(states, actions, targets, optimizer)
        assert last < 0.3 * first

    def test_train_step_batch_mismatch_raises(self, qnet, encoder, rng):
        states = random_states(encoder, 4, rng)
        with pytest.raises(ValueError, match="mismatch"):
            qnet.train_step(states, np.zeros(3, dtype=int), np.zeros(4),
                            qnet.make_optimizer())

    def test_gradients_reach_autoencoder(self, qnet, encoder, rng):
        states = random_states(encoder, 8, rng)
        actions = rng.integers(0, 6, size=8)
        targets = rng.normal(size=8)
        before = [p.value.copy() for p in qnet.autoencoder.encoder.parameters()]
        qnet.train_step(states, actions, targets, qnet.make_optimizer(lr=1e-2))
        after = [p.value for p in qnet.autoencoder.encoder.parameters()]
        assert any(not np.allclose(b, a) for b, a in zip(before, after))

    def test_huber_loss_path(self, qnet, encoder, rng):
        states = random_states(encoder, 8, rng)
        actions = rng.integers(0, 6, size=8)
        targets = rng.normal(size=8) * 100
        loss = qnet.train_step(states, actions, targets, qnet.make_optimizer(),
                               huber_delta=1.0)
        assert np.isfinite(loss)

    def test_pretrain_autoencoder_improves_reconstruction(self, qnet, encoder, rng):
        states = random_states(encoder, 200, rng)
        groups, _ = encoder.split(states)
        samples = groups.reshape(-1, encoder.group_dim)
        before = qnet.autoencoder.reconstruction_loss(samples)
        qnet.pretrain_autoencoder(states, epochs=30, rng=rng)
        after = qnet.autoencoder.reconstruction_loss(samples)
        assert after < before


class TestClone:
    def test_clone_identical_predictions(self, qnet, encoder, rng):
        states = random_states(encoder, 4, rng)
        twin = qnet.clone()
        assert np.allclose(qnet.predict(states), twin.predict(states))

    def test_clone_is_independent(self, qnet, encoder, rng):
        states = random_states(encoder, 4, rng)
        twin = qnet.clone()
        qnet.train_step(states, np.zeros(4, dtype=int), np.ones(4) * 5,
                        qnet.make_optimizer(lr=0.1))
        assert not np.allclose(qnet.predict(states), twin.predict(states))


class TestFlatQNetwork:
    def test_shapes(self, encoder, rng):
        flat = FlatQNetwork(encoder, hidden=(16,), rng=rng)
        states = random_states(encoder, 5, rng)
        assert flat.predict(states).shape == (5, 6)
        assert flat.q_values(states[0]).shape == (6,)

    def test_train_step_reduces_loss(self, encoder, rng):
        flat = FlatQNetwork(encoder, hidden=(16,), rng=rng)
        states = random_states(encoder, 64, rng)
        actions = rng.integers(0, 6, size=64)
        targets = -np.abs(rng.normal(size=64))
        optimizer = flat.make_optimizer(lr=3e-3)
        first = flat.train_step(states, actions, targets, optimizer)
        for _ in range(150):
            last = flat.train_step(states, actions, targets, optimizer)
        assert last < 0.3 * first

    def test_clone(self, encoder, rng):
        flat = FlatQNetwork(encoder, rng=rng)
        states = random_states(encoder, 3, rng)
        assert np.allclose(flat.predict(states), flat.clone().predict(states))

    def test_pretrain_autoencoder_noop(self, encoder, rng):
        assert FlatQNetwork(encoder, rng=rng).pretrain_autoencoder(None) == []
