"""Tests for repro.core.predictor."""

import numpy as np
import pytest

from repro.core.config import PredictorConfig
from repro.core.predictor import InterArrivalTracker, WorkloadPredictor


class TestTracker:
    def test_first_arrival_yields_none(self):
        tracker = InterArrivalTracker(3)
        assert tracker.observe(10.0) is None

    def test_deltas_recorded(self):
        tracker = InterArrivalTracker(3)
        tracker.observe(0.0)
        assert tracker.observe(5.0) == 5.0
        assert tracker.observe(12.0) == 7.0
        assert list(tracker.window()) == [5.0, 7.0]

    def test_window_bounded_by_lookback(self):
        tracker = InterArrivalTracker(2)
        for t in (0.0, 1.0, 3.0, 6.0):
            tracker.observe(t)
        assert list(tracker.window()) == [2.0, 3.0]
        assert tracker.ready

    def test_not_ready_until_full(self):
        tracker = InterArrivalTracker(3)
        tracker.observe(0.0)
        tracker.observe(1.0)
        assert not tracker.ready

    def test_backwards_time_raises(self):
        tracker = InterArrivalTracker(3)
        tracker.observe(10.0)
        with pytest.raises(ValueError):
            tracker.observe(5.0)

    def test_new_run_resets_anchor_keeps_window(self):
        tracker = InterArrivalTracker(3)
        tracker.observe(0.0)
        tracker.observe(5.0)
        tracker.new_run()
        assert tracker.observe(1.0) is None  # fresh anchor
        assert list(tracker.window()) == [5.0]

    def test_last(self):
        tracker = InterArrivalTracker(3)
        assert tracker.last() is None
        tracker.observe(0.0)
        tracker.observe(4.0)
        assert tracker.last() == 4.0

    def test_invalid_lookback(self):
        with pytest.raises(ValueError):
            InterArrivalTracker(0)


class TestTransforms:
    @pytest.fixture
    def predictor(self, rng):
        return WorkloadPredictor(
            PredictorConfig(lookback=5, min_interarrival=1.0, max_interarrival=1000.0),
            rng=rng,
        )

    def test_log_transform_unit_interval(self, predictor):
        x = predictor.transform(np.array([1.0, 1000.0, np.sqrt(1000.0)]))
        assert x[0] == pytest.approx(0.0)
        assert x[1] == pytest.approx(1.0)
        assert x[2] == pytest.approx(0.5)

    def test_inverse_roundtrip(self, predictor):
        seconds = np.array([2.0, 50.0, 700.0])
        back = predictor.inverse_transform(predictor.transform(seconds))
        assert np.allclose(back, seconds, rtol=1e-9)

    def test_clipping_outside_bounds(self, predictor):
        x = predictor.transform(np.array([0.001, 1e9]))
        assert x[0] == 0.0 and x[1] == 1.0

    def test_linear_mode(self, rng):
        p = WorkloadPredictor(
            PredictorConfig(
                lookback=5,
                min_interarrival=1.0001,
                max_interarrival=11.0,
                log_scale=False,
            ),
            rng=rng,
        )
        mid = p.transform(np.array([(1.0001 + 11.0) / 2]))
        assert mid[0] == pytest.approx(0.5, abs=0.01)


class TestCategorize:
    def test_category_count_and_monotonic(self, rng):
        p = WorkloadPredictor(
            PredictorConfig(n_categories=4, min_interarrival=1.0,
                            max_interarrival=10000.0),
            rng=rng,
        )
        cats = [p.categorize(v) for v in (0.5, 5.0, 80.0, 900.0, 50000.0)]
        assert cats == sorted(cats)
        assert min(cats) == 0 and max(cats) == 3

    def test_single_category(self, rng):
        p = WorkloadPredictor(PredictorConfig(n_categories=1), rng=rng)
        assert p.categorize(1.0) == 0
        assert p.categorize(1e6) == 0


class TestPredict:
    def test_fallback_before_fit_uses_last_value(self, rng):
        p = WorkloadPredictor(PredictorConfig(lookback=3), rng=rng)
        tracker = InterArrivalTracker(3)
        tracker.observe(0.0)
        tracker.observe(42.0)
        assert p.predict(tracker) == pytest.approx(42.0)

    def test_fallback_empty_tracker_geometric_middle(self, rng):
        cfg = PredictorConfig(lookback=3, min_interarrival=1.0, max_interarrival=100.0)
        p = WorkloadPredictor(cfg, rng=rng)
        assert p.predict(InterArrivalTracker(3)) == pytest.approx(10.0)

    def test_predict_seconds_requires_full_window(self, rng):
        p = WorkloadPredictor(PredictorConfig(lookback=5), rng=rng)
        with pytest.raises(ValueError):
            p.predict_seconds(np.ones(3))

    def test_make_windows_shape(self, rng):
        p = WorkloadPredictor(PredictorConfig(lookback=4), rng=rng)
        x, y = p.make_windows(np.arange(1, 21, dtype=float))
        assert x.shape == (16, 4, 1)
        assert y.shape == (16, 1)

    def test_make_windows_too_short_raises(self, rng):
        p = WorkloadPredictor(PredictorConfig(lookback=10), rng=rng)
        with pytest.raises(ValueError, match="too short"):
            p.make_windows(np.ones(5))

    def test_fit_then_predict_in_bounds(self, rng):
        cfg = PredictorConfig(lookback=6, epochs=3, min_interarrival=1.0,
                              max_interarrival=100.0)
        p = WorkloadPredictor(cfg, rng=rng)
        series = rng.uniform(2.0, 50.0, size=100)
        p.fit(series)
        assert p.fitted
        pred = p.predict_seconds(series[:6])
        assert 1.0 <= pred <= 100.0

    def test_fit_learns_periodic_series(self, rng):
        # Alternating 5 s / 50 s inter-arrivals: the LSTM should track the
        # alternation far better than last-value fallback.
        cfg = PredictorConfig(lookback=6, epochs=25, min_interarrival=1.0,
                              max_interarrival=100.0)
        p = WorkloadPredictor(cfg, rng=rng)
        series = np.tile([5.0, 50.0], 150).astype(float)
        p.fit(series)
        window_ending_5 = np.array([50.0, 5.0, 50.0, 5.0, 50.0, 5.0])
        pred_next = p.predict_seconds(window_ending_5)  # true next: 50
        assert pred_next > 20.0

    def test_predict_category_pipeline(self, rng):
        cfg = PredictorConfig(lookback=3, n_categories=3)
        p = WorkloadPredictor(cfg, rng=rng)
        tracker = InterArrivalTracker(3)
        for t in (0.0, 10.0, 20.0, 30.0):
            tracker.observe(t)
        cat = p.predict_category(tracker)
        assert 0 <= cat < 3


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"lookback": 0},
        {"n_categories": 0},
        {"min_interarrival": 10.0, "max_interarrival": 5.0},
        {"min_interarrival": 0.0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            PredictorConfig(**kwargs)
