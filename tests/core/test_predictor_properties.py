"""Property-based tests (hypothesis) for predictor transforms and
SMDP reward math."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PredictorConfig
from repro.core.predictor import WorkloadPredictor
from repro.core.rewards import (
    GlobalRewardWeights,
    global_reward_rate,
    local_reward_rate,
)
from repro.rl.smdp import smdp_discounted_reward, smdp_target

finite = st.floats(allow_nan=False, allow_infinity=False)


@settings(max_examples=100, deadline=None)
@given(seconds=st.floats(min_value=1.0, max_value=3600.0))
def test_transform_roundtrip_within_bounds(seconds):
    predictor = WorkloadPredictor(PredictorConfig(), rng=np.random.default_rng(0))
    value = predictor.transform(np.array([seconds]))
    back = predictor.inverse_transform(value)
    assert np.isclose(back[0], seconds, rtol=1e-9)
    assert 0.0 <= value[0] <= 1.0


@settings(max_examples=100, deadline=None)
@given(seconds=st.floats(min_value=1e-6, max_value=1e9))
def test_categorize_total_and_monotone(seconds):
    predictor = WorkloadPredictor(
        PredictorConfig(n_categories=5), rng=np.random.default_rng(0)
    )
    cat = predictor.categorize(seconds)
    assert 0 <= cat < 5
    # Monotonicity: a strictly larger input never gets a smaller category.
    assert predictor.categorize(seconds * 2.0) >= cat


@settings(max_examples=100, deadline=None)
@given(
    rate=st.floats(min_value=-100.0, max_value=0.0),
    tau=st.floats(min_value=0.0, max_value=1e5),
    beta=st.floats(min_value=0.0, max_value=2.0),
)
def test_discounted_reward_sign_and_bound(rate, tau, beta):
    disc = smdp_discounted_reward(rate, tau, beta)
    assert disc <= 1e-12  # non-positive rates stay non-positive
    if beta > 0:
        # |(1-e^{-beta tau})/beta * r| <= |r|/beta
        assert abs(disc) <= abs(rate) / beta + 1e-9
    else:
        assert disc == rate * tau


@settings(max_examples=100, deadline=None)
@given(
    rate=st.floats(min_value=-10.0, max_value=10.0),
    tau=st.floats(min_value=0.0, max_value=100.0),
    beta=st.floats(min_value=0.001, max_value=1.0),
    q1=st.floats(min_value=-50.0, max_value=50.0),
    q2=st.floats(min_value=-50.0, max_value=50.0),
)
def test_target_monotone_in_next_q(rate, tau, beta, q1, q2):
    lo, hi = min(q1, q2), max(q1, q2)
    assert smdp_target(rate, tau, beta, lo) <= smdp_target(rate, tau, beta, hi) + 1e-9


@settings(max_examples=100, deadline=None)
@given(
    energy=st.floats(min_value=0.0, max_value=1e7),
    vms=st.floats(min_value=0.0, max_value=1e6),
    overload=st.floats(min_value=0.0, max_value=1e4),
    tau=st.floats(min_value=1e-3, max_value=1e5),
)
def test_global_reward_rate_non_positive(energy, vms, overload, tau):
    rate = global_reward_rate(GlobalRewardWeights(), energy, vms, overload, tau)
    assert rate <= 0.0


@settings(max_examples=100, deadline=None)
@given(
    w=st.floats(min_value=0.0, max_value=1.0),
    energy=st.floats(min_value=0.0, max_value=1e6),
    queue=st.floats(min_value=0.0, max_value=1e6),
    tau=st.floats(min_value=1e-3, max_value=1e5),
)
def test_local_reward_rate_non_positive_and_monotone_in_energy(w, energy, queue, tau):
    rate = local_reward_rate(w, energy, queue, tau, power_scale=145.0)
    assert rate <= 0.0
    more = local_reward_rate(w, energy * 2 + 1.0, queue, tau, power_scale=145.0)
    if w > 0:
        assert more <= rate + 1e-12
