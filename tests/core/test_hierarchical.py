"""Tests for repro.core.hierarchical: system builders."""

import numpy as np
import pytest

from repro.core.baselines import AlwaysOnPolicy, ImmediateSleepPolicy, RoundRobinBroker
from repro.core.global_tier import DRLGlobalBroker
from repro.core.hierarchical import (
    build_drl_only,
    build_hierarchical,
    build_round_robin,
    per_server_interarrivals,
    pretrain_predictor,
)
from repro.core.local_tier import RLPowerPolicy
from repro.core.predictor import WorkloadPredictor
from repro.sim.job import Job


def jobs_burst(n, spacing=30.0):
    return [Job(i, i * spacing, 40.0, (0.3, 0.1, 0.1)) for i in range(n)]


class TestBuilders:
    def test_round_robin_composition(self, small_config):
        system = build_round_robin(small_config)
        assert isinstance(system.broker, RoundRobinBroker)
        assert isinstance(system.policies, AlwaysOnPolicy)
        assert system.initially_on

    def test_drl_only_composition(self, small_config):
        system = build_drl_only(small_config)
        assert isinstance(system.broker, DRLGlobalBroker)
        assert isinstance(system.policies, ImmediateSleepPolicy)
        assert not system.initially_on

    def test_hierarchical_composition(self, small_config):
        system = build_hierarchical(small_config)
        assert isinstance(system.broker, DRLGlobalBroker)
        assert isinstance(system.policies, list)
        assert len(system.policies) == small_config.num_servers
        assert all(isinstance(p, RLPowerPolicy) for p in system.policies)

    def test_hierarchical_shares_predictor(self, small_config):
        system = build_hierarchical(small_config)
        predictors = {id(p.predictor) for p in system.policies}
        assert len(predictors) == 1

    def test_hierarchical_distributed_learners_by_default(self, small_config):
        system = build_hierarchical(small_config)
        learners = {id(p.learner) for p in system.policies}
        assert len(learners) == small_config.num_servers

    def test_hierarchical_shared_learner_option(self, small_config):
        system = build_hierarchical(small_config, shared_dpm_learner=True)
        learners = {id(p.learner) for p in system.policies}
        assert len(learners) == 1

    def test_run_executes(self, small_config):
        system = build_round_robin(small_config)
        result = system.run(jobs_burst(10))
        assert result.metrics.n_completed == 10

    def test_freeze_propagates(self, small_config):
        system = build_hierarchical(small_config)
        system.freeze()
        assert system.broker.epsilon == 0.0
        assert all(not p.learning_enabled for p in system.policies)

    def test_reusing_system_across_runs(self, small_config):
        # Learning systems are reused across runs (training protocol);
        # simulated time restarting at 0 must not break anything.
        system = build_hierarchical(small_config)
        system.run(jobs_burst(10))
        result = system.run(jobs_burst(10))
        assert result.metrics.n_completed == 10


class TestPredictorPretraining:
    def test_per_server_interarrivals_strided(self):
        jobs = [Job(i, float(10 * i), 5.0, (0.1, 0.1, 0.1)) for i in range(10)]
        series = per_server_interarrivals(jobs, num_servers=2)
        # Strided differences: t[i+2] - t[i] = 20 for all i.
        assert np.allclose(series, 20.0)
        assert series.size == 8

    def test_too_short_trace_raises(self):
        jobs = [Job(0, 0.0, 5.0, (0.1, 0.1, 0.1))]
        with pytest.raises(ValueError):
            per_server_interarrivals(jobs, num_servers=2)

    def test_invalid_servers_raises(self):
        with pytest.raises(ValueError):
            per_server_interarrivals([], num_servers=0)

    def test_pretrain_predictor_fits(self, small_config, rng):
        predictor = WorkloadPredictor(small_config.local_tier.predictor, rng=rng)
        jobs = jobs_burst(60, spacing=15.0)
        history = pretrain_predictor(predictor, jobs, num_servers=4, epochs=2)
        assert predictor.fitted
        assert len(history) == 2
