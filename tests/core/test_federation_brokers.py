"""Tests for repro.core.federation: the federation-tier dispatchers."""

import numpy as np
import pytest

from repro.core.baselines import AlwaysOnPolicy, RoundRobinBroker
from repro.core.federation import (
    FEDERATION_POLICY_NAMES,
    FEDERATION_TIER_DEFAULTS,
    DRLFederationBroker,
    FederationStateView,
    LeastLoadedSiteBroker,
    StaticHomeBroker,
    TariffGreedySiteBroker,
    federation_encoder,
    make_federation_broker,
)
from repro.scenarios.specs import FEDERATION_POLICIES
from repro.sim.federation import build_federation
from repro.sim.job import Job
from repro.sim.power import TariffModel


def probe_job(job_id=0, t=0.0):
    return Job(job_id, t, 120.0, (0.3, 0.2, 0.1))


def make_sites(n=2, servers=2, tariffs=None, initially_on=True):
    tariffs = tariffs or [None] * n
    engine = build_federation(
        [
            dict(
                name=f"s{i}",
                num_servers=servers,
                broker=RoundRobinBroker(),
                policies=AlwaysOnPolicy(),
                initially_on=initially_on,
                tariff=tariffs[i],
            )
            for i in range(n)
        ]
    )
    return engine.sites


def load_site(site, n_jobs, now=0.0):
    for i in range(n_jobs):
        site.cluster[i % len(site.cluster)].assign(probe_job(1000 + i, now), now)


class TestVocabulary:
    def test_policy_names_match_the_scenario_layer(self):
        assert FEDERATION_POLICY_NAMES == FEDERATION_POLICIES

    def test_factory_builds_every_named_policy(self):
        assert make_federation_broker("home", 2) is None
        assert isinstance(
            make_federation_broker("least-loaded", 2), LeastLoadedSiteBroker
        )
        assert make_federation_broker("price-greedy", 2).mode == "price"
        assert make_federation_broker("carbon-greedy", 2).mode == "carbon"
        assert isinstance(make_federation_broker("drl", 2), DRLFederationBroker)

    def test_factory_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown federation policy"):
            make_federation_broker("nope", 2)


class TestStaticHome:
    def test_returns_home(self):
        sites = make_sites()
        broker = StaticHomeBroker()
        assert broker.select_site(probe_job(), sites, 1, 0.0) == 1


class TestLeastLoaded:
    def test_picks_the_empty_site(self):
        sites = make_sites()
        load_site(sites[0], 4)
        assert LeastLoadedSiteBroker().select_site(probe_job(), sites, 0, 0.0) == 1

    def test_tie_keeps_home(self):
        sites = make_sites()
        assert LeastLoadedSiteBroker().select_site(probe_job(), sites, 1, 0.0) == 1

    def test_load_is_normalized_by_fleet_size(self):
        # 2 jobs on 8 servers is lighter than 1 job on 2 servers.
        engine = build_federation(
            [
                dict(name="small", num_servers=2, broker=RoundRobinBroker(),
                     policies=AlwaysOnPolicy(), initially_on=True),
                dict(name="big", num_servers=8, broker=RoundRobinBroker(),
                     policies=AlwaysOnPolicy(), initially_on=True),
            ]
        )
        sites = engine.sites
        load_site(sites[0], 1)
        load_site(sites[1], 2)
        assert LeastLoadedSiteBroker().select_site(probe_job(), sites, 0, 0.0) == 1


class TestTariffGreedy:
    def test_price_greedy_picks_cheapest(self):
        sites = make_sites(
            tariffs=[TariffModel(price=0.50), TariffModel(price=0.05)]
        )
        broker = TariffGreedySiteBroker(mode="price")
        assert broker.select_site(probe_job(), sites, 0, 0.0) == 1

    def test_carbon_greedy_picks_cleanest(self):
        sites = make_sites(
            tariffs=[TariffModel(carbon=100.0), TariffModel(carbon=700.0)]
        )
        broker = TariffGreedySiteBroker(mode="carbon")
        assert broker.select_site(probe_job(), sites, 1, 0.0) == 0

    def test_time_of_use_windows_shift_the_choice(self):
        peak = TariffModel.time_of_use(
            peak_start_hour=0.0, peak_end_hour=12.0,
            peak_price=0.40, offpeak_price=0.05,
        )
        sites = make_sites(tariffs=[peak, peak.shifted(12 * 3600.0)])
        broker = TariffGreedySiteBroker(mode="price")
        # At t=0 site 0 is in its peak window, site 1 is not.
        assert broker.select_site(probe_job(), sites, 0, 0.0) == 1
        # Twelve hours later the windows swap.
        assert broker.select_site(probe_job(), sites, 1, 12 * 3600.0) == 0

    def test_no_tariffs_keeps_home(self):
        sites = make_sites()
        broker = TariffGreedySiteBroker()
        assert broker.select_site(probe_job(), sites, 1, 0.0) == 1

    def test_equal_price_tie_breaks_to_least_loaded(self):
        flat = TariffModel(price=0.10)
        sites = make_sites(tariffs=[flat, flat])
        load_site(sites[0], 4)
        broker = TariffGreedySiteBroker(mode="price")
        assert broker.select_site(probe_job(), sites, 0, 0.0) == 1

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            TariffGreedySiteBroker(mode="joules")


class TestFederationStateView:
    def test_aggregates_site_state(self):
        sites = make_sites(n=2, servers=2)
        load_site(sites[0], 2)
        for site in sites:
            site.cluster.sync(0.0)
        view = FederationStateView(sites)
        util, on, queue = view.state_views()
        assert util.shape == (2, 3)
        assert util[0, 0] > util[1, 0]  # site 0 carries the load
        assert on.tolist() == [1.0, 1.0]
        assert queue[1] == 0.0
        assert len(view) == 2

    def test_reward_integrals_sum_over_sites(self):
        sites = make_sites()
        load_site(sites[0], 2)
        for site in sites:
            site.cluster.sync(100.0)
        view = FederationStateView(sites)
        assert view.total_energy() == pytest.approx(
            sum(s.cluster.total_energy() for s in sites)
        )
        assert view.system_integral() == pytest.approx(
            sum(s.cluster.system_integral() for s in sites)
        )

    def test_encoder_accepts_the_view(self):
        sites = make_sites(n=3)
        view = FederationStateView(sites)
        encoder = federation_encoder(3)
        state = encoder.encode(view, probe_job())
        assert state.shape == (encoder.state_dim,)


class TestDRLFederationBroker:
    def test_selects_valid_sites_and_records_transitions(self):
        sites = make_sites(n=2)
        broker = DRLFederationBroker(2, rng=np.random.default_rng(0))
        for i in range(5):
            choice = broker.select_site(probe_job(i, float(i)), sites, 0, float(i))
            assert 0 <= choice < 2
        # Every epoch after the first closes a sojourn into replay.
        assert len(broker.agent.replay) == 4

    def test_site_count_mismatch_raises(self):
        broker = DRLFederationBroker(3)
        with pytest.raises(ValueError, match="3 sites"):
            broker.select_site(probe_job(), make_sites(n=2), 0, 0.0)

    def test_freeze_pins_epsilon(self):
        broker = DRLFederationBroker(2)
        broker.freeze()
        assert broker.epsilon == 0.0
        assert broker.agent.training_enabled is False

    def test_compact_default_architecture(self):
        broker = DRLFederationBroker(2)
        arch = broker.qnet.describe()
        assert broker.agent.config.autoencoder_hidden == (
            FEDERATION_TIER_DEFAULTS["autoencoder_hidden"]
        )
        assert arch is not None

    def test_run_end_resets_the_view(self):
        sites = make_sites(n=2)
        broker = DRLFederationBroker(2, rng=np.random.default_rng(0))
        broker.select_site(probe_job(), sites, 0, 0.0)
        assert broker._view is not None
        broker.on_run_end(sites, 1.0)
        assert broker._view is None
