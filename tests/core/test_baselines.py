"""Tests for repro.core.baselines."""

import numpy as np
import pytest

from repro.core.baselines import (
    AlwaysOnPolicy,
    FixedTimeoutPolicy,
    ImmediateSleepPolicy,
    LeastLoadedBroker,
    PackingBroker,
    RandomBroker,
    RoundRobinBroker,
)
from repro.sim.cluster import Cluster
from repro.sim.events import EventQueue
from repro.sim.job import Job
from repro.sim.power import PowerModel


def make_cluster(n=3, initially_on=True, policy=None):
    return Cluster(
        n, PowerModel(), EventQueue(), policy or AlwaysOnPolicy(),
        initially_on=initially_on,
    )


def job(jid, cpu=0.3, duration=100.0):
    return Job(jid, 0.0, duration, (cpu, 0.1, 0.1))


class TestRoundRobin:
    def test_cycles_through_servers(self):
        broker = RoundRobinBroker()
        cluster = make_cluster(3)
        picks = [broker.select_server(job(i), cluster, 0.0) for i in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]


class TestRandom:
    def test_in_range_and_covers(self):
        broker = RandomBroker(np.random.default_rng(0))
        cluster = make_cluster(4)
        picks = {broker.select_server(job(i), cluster, 0.0) for i in range(100)}
        assert picks == {0, 1, 2, 3}


class TestLeastLoaded:
    def test_picks_lowest_cpu_commitment(self):
        broker = LeastLoadedBroker()
        cluster = make_cluster(3)
        cluster[0].assign(job(1, cpu=0.5), 0.0)
        cluster[2].assign(job(2, cpu=0.2), 0.0)
        assert broker.select_server(job(3), cluster, 0.0) == 1

    def test_counts_queued_work(self):
        broker = LeastLoadedBroker()
        cluster = make_cluster(2)
        # Server 0: one running 0.3. Server 1: running 0.2 + queued 0.9.
        cluster[0].assign(job(1, cpu=0.3), 0.0)
        cluster[1].assign(job(2, cpu=0.2), 0.0)
        cluster[1].assign(job(3, cpu=0.9), 0.0)
        assert broker.select_server(job(4), cluster, 0.0) == 0


class TestPacking:
    def test_prefers_first_fit_awake(self):
        broker = PackingBroker()
        cluster = make_cluster(3)
        cluster[0].assign(job(1, cpu=0.9), 0.0)  # full-ish
        assert broker.select_server(job(2, cpu=0.3), cluster, 0.0) == 1

    def test_avoids_waking_when_awake_has_room(self):
        broker = PackingBroker()
        cluster = make_cluster(3, initially_on=False)
        cluster[0].assign(job(1, cpu=0.2), 0.0)  # server 0 boots
        cluster[0]._on_boot_complete(30.0)
        pick = broker.select_server(job(2, cpu=0.2), cluster, 30.0)
        assert pick == 0

    def test_wakes_a_server_when_all_awake_busy(self):
        broker = PackingBroker()
        cluster = make_cluster(2, initially_on=False)
        cluster[0].assign(job(1, cpu=0.9), 0.0)
        cluster[0]._on_boot_complete(30.0)
        cluster[0].assign(job(2, cpu=0.9), 30.0)  # queues: server 0 saturated
        pick = broker.select_server(job(3, cpu=0.5), cluster, 30.0)
        assert pick == 1  # sleeping server gets woken

    def test_all_asleep_picks_zero(self):
        broker = PackingBroker()
        cluster = make_cluster(2, initially_on=False)
        assert broker.select_server(job(1), cluster, 0.0) == 0


class TestPowerPolicies:
    def test_always_on_returns_infinity(self):
        cluster = make_cluster(1)
        assert AlwaysOnPolicy().on_idle(cluster[0], 0.0) == float("inf")

    def test_immediate_sleep_returns_zero(self):
        cluster = make_cluster(1)
        assert ImmediateSleepPolicy().on_idle(cluster[0], 0.0) == 0.0

    @pytest.mark.parametrize("timeout", [0.0, 30.0, 90.0])
    def test_fixed_timeout_constant(self, timeout):
        cluster = make_cluster(1)
        policy = FixedTimeoutPolicy(timeout)
        assert policy.on_idle(cluster[0], 0.0) == timeout
        assert policy.on_idle(cluster[0], 100.0) == timeout

    def test_fixed_negative_raises(self):
        with pytest.raises(ValueError):
            FixedTimeoutPolicy(-1.0)
