"""Integration: the DRL broker runs with the flat (strawman) Q-network.

The ablation bench swaps :class:`FlatQNetwork` into
:class:`DRLGlobalBroker`; this test pins the duck-type contract so the
swap cannot silently rot.
"""

import numpy as np

from repro.core.baselines import ImmediateSleepPolicy
from repro.core.config import GlobalTierConfig
from repro.core.global_tier import DRLGlobalBroker
from repro.core.qnetwork import FlatQNetwork
from repro.core.state import StateEncoder
from repro.sim.engine import build_simulation
from repro.sim.job import Job


def test_flat_qnetwork_drives_broker_end_to_end():
    encoder = StateEncoder(4, num_groups=2)
    config = GlobalTierConfig(
        num_groups=2, train_interval=4, batch_size=8, replay_capacity=500
    )
    broker = DRLGlobalBroker(
        encoder,
        config,
        qnetwork=FlatQNetwork(encoder, rng=np.random.default_rng(0)),
        rng=np.random.default_rng(0),
    )
    engine = build_simulation(4, broker, ImmediateSleepPolicy())
    jobs = [Job(i, i * 15.0, 40.0, (0.3, 0.1, 0.1)) for i in range(40)]
    result = engine.run(jobs)
    assert result.metrics.n_completed == 40
    assert len(broker.loss_history) > 0  # the flat net actually trained
    assert all(np.isfinite(loss) for loss in broker.loss_history)


def test_flat_clone_survives_runner_cloning():
    from repro.harness.runner import clone_global_broker
    from repro.core.config import ExperimentConfig

    config = ExperimentConfig(
        num_servers=4, global_tier=GlobalTierConfig(num_groups=2)
    )
    encoder = StateEncoder(4, num_groups=2)
    proto = DRLGlobalBroker(
        encoder,
        config.global_tier,
        qnetwork=FlatQNetwork(encoder, rng=np.random.default_rng(0)),
        rng=np.random.default_rng(0),
    )
    clone = clone_global_broker(proto, config)
    state = np.random.default_rng(1).uniform(size=encoder.state_dim)
    assert np.allclose(proto.qnet.q_values(state), clone.qnet.q_values(state))
