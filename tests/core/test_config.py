"""Tests for repro.core.config: defaults and validation."""

import pytest

from repro.core.config import (
    ExperimentConfig,
    GlobalTierConfig,
    LocalTierConfig,
    PredictorConfig,
)
from repro.sim.power import PowerModel


class TestPaperDefaults:
    def test_power_model_paper_values(self):
        config = ExperimentConfig()
        assert config.power_model.idle_power == 87.0  # P(0%)
        assert config.power_model.peak_power == 145.0  # P(100%)
        assert config.power_model.t_on == 30.0
        assert config.power_model.t_off == 30.0

    def test_global_tier_architecture_defaults(self):
        gt = GlobalTierConfig()
        assert gt.autoencoder_hidden == (30, 15)  # paper: 30 and 15 ELUs
        assert gt.subq_hidden == (128,)  # paper: 128 ELUs
        assert 2 <= gt.num_groups <= 4  # paper: K in [2, 4]
        assert gt.max_grad_norm == 10.0  # paper: clip norm 10

    def test_predictor_paper_defaults(self):
        pc = PredictorConfig()
        assert pc.lookback == 35  # paper: 35 look-back steps
        assert pc.hidden_units == 30  # paper: 30 hidden units

    def test_local_tier_includes_immediate_shutdown(self):
        lt = LocalTierConfig()
        assert 0.0 in lt.timeouts  # "including the immediate shutdown"

    def test_default_cluster_size(self):
        assert ExperimentConfig().num_servers == 30


class TestValidation:
    def test_servers_divisible_by_groups(self):
        ExperimentConfig(num_servers=30, global_tier=GlobalTierConfig(num_groups=3))
        with pytest.raises(ValueError):
            ExperimentConfig(num_servers=31, global_tier=GlobalTierConfig(num_groups=3))

    def test_zero_servers(self):
        with pytest.raises(ValueError):
            ExperimentConfig(num_servers=0)

    def test_frozen_configs(self):
        config = ExperimentConfig()
        with pytest.raises(AttributeError):
            config.num_servers = 10
        with pytest.raises(AttributeError):
            config.global_tier.beta = 1.0

    def test_custom_power_model_accepted(self):
        pm = PowerModel(idle_power=50.0, peak_power=200.0)
        config = ExperimentConfig(power_model=pm)
        assert config.power_model.peak_power == 200.0

    def test_nested_replace_pattern(self):
        from dataclasses import replace

        config = ExperimentConfig()
        tuned = replace(config, local_tier=replace(config.local_tier, w=0.9))
        assert tuned.local_tier.w == 0.9
        assert config.local_tier.w == 0.5  # original untouched
