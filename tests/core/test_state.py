"""Tests for repro.core.state."""

import numpy as np
import pytest

from repro.core.state import StateEncoder
from repro.sim.cluster import Cluster
from repro.sim.events import EventQueue
from repro.sim.interfaces import PowerPolicy
from repro.sim.job import Job
from repro.sim.power import PowerModel


class NeverSleep(PowerPolicy):
    def on_idle(self, server, now):
        return PowerPolicy.NEVER


def make_cluster(n, initially_on=True):
    return Cluster(
        n, PowerModel(), EventQueue(), NeverSleep(), initially_on=initially_on
    )


class TestGeometry:
    def test_paper_layout_dimensions(self):
        enc = StateEncoder(30, num_resources=3, num_groups=3,
                           include_power_state=False, include_queue_state=False)
        assert enc.group_size == 10
        assert enc.per_server_dim == 3
        assert enc.group_dim == 30
        assert enc.job_dim == 4
        assert enc.state_dim == 30 * 3 + 4

    def test_extended_features_grow_dims(self):
        enc = StateEncoder(6, num_groups=2)
        assert enc.per_server_dim == 5  # 3 resources + on bit + queue
        assert enc.state_dim == 6 * 5 + 4

    def test_indivisible_groups_raise(self):
        with pytest.raises(ValueError, match="divisible"):
            StateEncoder(10, num_groups=3)

    @pytest.mark.parametrize("kwargs", [
        {"num_servers": 0},
        {"num_servers": 4, "max_duration": 0.0},
        {"num_servers": 4, "queue_scale": 0.0},
    ])
    def test_invalid_args(self, kwargs):
        kwargs.setdefault("num_groups", 1)
        with pytest.raises(ValueError):
            StateEncoder(**kwargs)


class TestEncode:
    def test_encodes_utilization_and_job(self):
        enc = StateEncoder(2, num_groups=1, include_power_state=False,
                           include_queue_state=False)
        cluster = make_cluster(2)
        cluster[0].assign(Job(0, 0.0, 100.0, (0.5, 0.2, 0.1)), 0.0)
        job = Job(1, 0.0, 3600.0, (0.3, 0.3, 0.3))
        state = enc.encode(cluster, job)
        assert state.shape == (enc.state_dim,)
        assert np.allclose(state[:3], [0.5, 0.2, 0.1])  # server 0 block
        assert np.allclose(state[3:6], 0.0)  # server 1 block
        assert np.allclose(state[6:9], [0.3, 0.3, 0.3])  # job demands
        assert state[9] == pytest.approx(0.5)  # 3600 / 7200

    def test_power_state_bit(self):
        enc = StateEncoder(2, num_groups=1, include_queue_state=False)
        cluster = make_cluster(2, initially_on=False)
        state = enc.encode(cluster, Job(0, 0.0, 60.0, (0.1, 0.1, 0.1)))
        # layout per server: [cpu, mem, disk, on]
        assert state[3] == 0.0 and state[7] == 0.0
        on_cluster = make_cluster(2, initially_on=True)
        state_on = enc.encode(on_cluster, Job(0, 0.0, 60.0, (0.1, 0.1, 0.1)))
        assert state_on[3] == 1.0

    def test_queue_feature_saturates(self):
        enc = StateEncoder(1, num_groups=1, include_power_state=False, queue_scale=2.0)
        cluster = make_cluster(1)
        for i in range(5):  # one runs, four queue (0.9 cpu each)
            cluster[0].assign(Job(i, 0.0, 100.0, (0.9, 0.1, 0.1)), 0.0)
        state = enc.encode(cluster, Job(9, 0.0, 60.0, (0.1, 0.1, 0.1)))
        assert state[3] == 1.0  # min(4 / 2, 1)

    def test_duration_clipped_at_one(self):
        enc = StateEncoder(1, num_groups=1)
        cluster = make_cluster(1)
        state = enc.encode(cluster, Job(0, 0.0, 99999.0, (0.1, 0.1, 0.1)))
        assert state[-1] == 1.0

    def test_cluster_size_mismatch_raises(self):
        enc = StateEncoder(4, num_groups=2)
        with pytest.raises(ValueError, match="servers"):
            enc.encode(make_cluster(2), Job(0, 0.0, 60.0, (0.1, 0.1, 0.1)))


class TestSplit:
    def test_split_shapes(self):
        enc = StateEncoder(6, num_groups=3)
        states = np.arange(2 * enc.state_dim, dtype=float).reshape(2, -1)
        groups, jobs = enc.split(states)
        assert groups.shape == (3, 2, enc.group_dim)
        assert jobs.shape == (2, enc.job_dim)

    def test_split_preserves_layout(self):
        enc = StateEncoder(4, num_groups=2, include_power_state=False,
                           include_queue_state=False)
        state = np.arange(enc.state_dim, dtype=float)
        groups, jobs = enc.split(state[None, :])
        assert np.allclose(groups[0][0], state[:6])
        assert np.allclose(groups[1][0], state[6:12])
        assert np.allclose(jobs[0], state[12:])

    def test_split_wrong_width_raises(self):
        enc = StateEncoder(4, num_groups=2)
        with pytest.raises(ValueError):
            enc.split(np.zeros((1, 7)))


class TestActionMapping:
    def test_group_of_action(self):
        enc = StateEncoder(6, num_groups=3)  # group size 2
        assert [enc.group_of_action(a) for a in range(6)] == [0, 0, 1, 1, 2, 2]

    def test_local_and_global_roundtrip(self):
        enc = StateEncoder(6, num_groups=3)
        for action in range(6):
            group = enc.group_of_action(action)
            local = enc.local_action(action)
            assert enc.global_action(group, local) == action

    def test_out_of_range_raises(self):
        enc = StateEncoder(6, num_groups=3)
        with pytest.raises(ValueError):
            enc.group_of_action(6)
        with pytest.raises(ValueError):
            enc.global_action(3, 0)
        with pytest.raises(ValueError):
            enc.global_action(0, 2)
