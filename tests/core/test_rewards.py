"""Tests for repro.core.rewards."""

import pytest

from repro.core.rewards import (
    GlobalRewardWeights,
    global_reward_rate,
    local_reward_rate,
)


class TestGlobalReward:
    def test_weighted_combination(self):
        w = GlobalRewardWeights(w_power=0.001, w_vms=0.01, w_reliability=1.0)
        # 10 s sojourn: 13000 J (1300 W), 500 VM-seconds (50 VMs), 2 overload-s.
        rate = global_reward_rate(w, 13000.0, 500.0, 2.0, 10.0)
        assert rate == pytest.approx(-(0.001 * 1300 + 0.01 * 50 + 1.0 * 0.2))

    def test_always_non_positive_for_non_negative_inputs(self):
        w = GlobalRewardWeights()
        assert global_reward_rate(w, 100.0, 10.0, 0.0, 5.0) <= 0.0

    def test_zero_tau_raises(self):
        with pytest.raises(ValueError):
            global_reward_rate(GlobalRewardWeights(), 1.0, 1.0, 1.0, 0.0)

    def test_negative_weights_raise(self):
        with pytest.raises(ValueError):
            GlobalRewardWeights(w_power=-1.0)

    def test_zero_weights_allowed(self):
        w = GlobalRewardWeights(0.0, 0.0, 0.0)
        assert global_reward_rate(w, 100.0, 100.0, 100.0, 1.0) == 0.0


class TestLocalReward:
    def test_eqn5_shape(self):
        # r = -(w P/scale + (1-w) JQ): 87 W for 10 s, 5 job-seconds queued.
        rate = local_reward_rate(0.5, 870.0, 5.0, 10.0, power_scale=145.0)
        assert rate == pytest.approx(-(0.5 * 87.0 / 145.0 + 0.5 * 0.5))

    def test_w_one_pure_power(self):
        rate = local_reward_rate(1.0, 1450.0, 100.0, 10.0, power_scale=145.0)
        assert rate == pytest.approx(-1.0)

    def test_w_zero_pure_latency(self):
        rate = local_reward_rate(0.0, 1450.0, 100.0, 10.0, power_scale=145.0)
        assert rate == pytest.approx(-10.0)

    def test_invalid_w(self):
        with pytest.raises(ValueError):
            local_reward_rate(1.5, 1.0, 1.0, 1.0)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            local_reward_rate(0.5, 1.0, 1.0, 0.0)

    def test_invalid_power_scale(self):
        with pytest.raises(ValueError):
            local_reward_rate(0.5, 1.0, 1.0, 1.0, power_scale=0.0)

    def test_sleeping_beats_idling_when_queue_empty(self):
        # Same sojourn, no queueing: less energy => higher (less negative)
        # reward. This is the gradient the DPM learner climbs.
        idle = local_reward_rate(0.5, 87.0 * 100, 0.0, 100.0, power_scale=145.0)
        sleep = local_reward_rate(0.5, 145.0 * 30, 0.0, 100.0, power_scale=145.0)
        assert sleep > idle
