"""Bit-exactness of the batched Sub-Q fast path vs the per-group loop.

The vectorized ``predict``/``train_step`` must be *bit-identical* — not
merely close — to the reference ``predict_loop``/``train_step_loop``:
the fast path batches via numpy's stacked ``(K, batch, in) @ (in, out)``
matmul, which issues one identically-shaped GEMM per group, so every
floating-point operation matches the loop's. (Flattening to a single
``(K*batch, in)`` GEMM would *not* be bit-exact: BLAS selects different
kernels for different row counts, perturbing final ulps.) Assertions
therefore use ``array_equal``, never ``allclose``.
"""

import numpy as np
import pytest

from repro.core.qnetwork import HierarchicalQNetwork
from repro.core.state import StateEncoder


def make_net(num_servers=6, num_groups=3, seed=0, **enc_kwargs):
    enc_kwargs.setdefault("include_power_state", True)
    enc_kwargs.setdefault("include_queue_state", True)
    encoder = StateEncoder(num_servers, num_groups=num_groups, **enc_kwargs)
    return HierarchicalQNetwork(
        encoder,
        autoencoder_hidden=(8, 4),
        subq_hidden=(16,),
        rng=np.random.default_rng(seed),
    )


def random_states(net, n, rng):
    return rng.uniform(0.0, 1.0, size=(n, net.encoder.state_dim))


class TestPredictEquivalence:
    @pytest.mark.parametrize("batch", [1, 2, 7, 33])
    def test_batched_predict_bit_identical(self, batch, rng):
        net = make_net()
        states = random_states(net, batch, rng)
        assert np.array_equal(net.predict(states), net.predict_loop(states))

    @pytest.mark.parametrize(
        "num_servers,num_groups", [(4, 2), (8, 4), (30, 3), (5, 1)]
    )
    def test_across_geometries(self, num_servers, num_groups, rng):
        net = make_net(num_servers, num_groups)
        states = random_states(net, 5, rng)
        assert np.array_equal(net.predict(states), net.predict_loop(states))

    def test_q_values_single_state(self, rng):
        net = make_net(30, 3)
        state = random_states(net, 1, rng)[0]
        assert np.array_equal(net.q_values(state), net.predict_loop(state[None, :])[0])


class TestTrainStepEquivalence:
    @pytest.mark.parametrize("batch", [1, 5, 32])
    @pytest.mark.parametrize("huber", [None, 1.0])
    def test_params_bit_identical_after_step(self, batch, huber, rng):
        fast = make_net(6, 3, seed=7)
        loop = fast.clone()
        states = random_states(fast, batch, rng)
        actions = rng.integers(0, 6, size=batch)
        targets = rng.normal(size=batch)

        loss_fast = fast.train_step(
            states, actions, targets, fast.make_optimizer(lr=1e-3), huber_delta=huber
        )
        loss_loop = loop.train_step_loop(
            states, actions, targets, loop.make_optimizer(lr=1e-3), huber_delta=huber
        )
        assert loss_fast == loss_loop
        for p_fast, p_loop in zip(fast.parameters(), loop.parameters()):
            assert np.array_equal(p_fast.value, p_loop.value), p_fast.name
            assert np.array_equal(p_fast.grad, p_loop.grad), p_fast.name

    def test_empty_group_handled_identically(self, rng):
        # All actions land in group 0; groups 1 and 2 see no samples.
        fast = make_net(6, 3, seed=3)
        loop = fast.clone()
        states = random_states(fast, 6, rng)
        actions = rng.integers(0, 2, size=6)  # group 0 only
        targets = rng.normal(size=6)
        fast.train_step(states, actions, targets, fast.make_optimizer())
        loop.train_step_loop(states, actions, targets, loop.make_optimizer())
        for p_fast, p_loop in zip(fast.parameters(), loop.parameters()):
            assert np.array_equal(p_fast.value, p_loop.value), p_fast.name

    def test_many_steps_stay_identical(self, rng):
        # Divergence compounds: 20 optimizer steps must stay bit-equal.
        fast = make_net(8, 4, seed=11)
        loop = fast.clone()
        opt_fast = fast.make_optimizer(lr=3e-3)
        opt_loop = loop.make_optimizer(lr=3e-3)
        for _ in range(20):
            states = random_states(fast, 16, rng)
            actions = rng.integers(0, 8, size=16)
            targets = rng.normal(size=16)
            fast.train_step(states, actions, targets, opt_fast)
            loop.train_step_loop(states, actions, targets, opt_loop)
        states = random_states(fast, 4, rng)
        assert np.array_equal(fast.predict(states), loop.predict(states))
        for p_fast, p_loop in zip(fast.parameters(), loop.parameters()):
            assert np.array_equal(p_fast.value, p_loop.value), p_fast.name
