"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import (
    ExperimentConfig,
    GlobalTierConfig,
    LocalTierConfig,
    PredictorConfig,
)
from repro.sim.job import Job
from repro.workload.synthetic import SyntheticTraceConfig, generate_trace


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_jobs() -> list[Job]:
    """A handful of hand-written jobs for precise scenario tests."""
    return [
        Job(0, arrival_time=0.0, duration=100.0, resources=(0.5, 0.2, 0.1)),
        Job(1, arrival_time=10.0, duration=100.0, resources=(0.4, 0.2, 0.1)),
        Job(2, arrival_time=20.0, duration=100.0, resources=(0.4, 0.2, 0.1)),
        Job(3, arrival_time=400.0, duration=50.0, resources=(0.3, 0.1, 0.1)),
    ]


@pytest.fixture(scope="session")
def small_trace() -> list[Job]:
    """A 300-job synthetic trace light enough for a 4-server cluster."""
    config = SyntheticTraceConfig(
        n_jobs=300,
        horizon=300 / (100_000 / (7 * 86400.0) * (4 / 30)),
        duration_median=200.0,
    )
    return generate_trace(config, seed=7)


@pytest.fixture
def small_config() -> ExperimentConfig:
    """A 4-server experiment config sized for fast tests."""
    return ExperimentConfig(
        num_servers=4,
        global_tier=GlobalTierConfig(
            num_groups=2,
            replay_capacity=2000,
            train_interval=32,
            epsilon_decay=0.999,
        ),
        local_tier=LocalTierConfig(
            predictor=PredictorConfig(lookback=5, epochs=2),
            epsilon_decay=0.99,
        ),
        record_every=50,
    )
